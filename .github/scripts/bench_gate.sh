#!/usr/bin/env bash
# Bench-regression gate: compares the smoke-run `session_replay` kernel
# medians against the latest recorded rows in BENCH_replay.json and fails
# only on gross regressions (default tolerance: 3x).
#
# The baseline rows were recorded on a different machine than the CI
# runner, so raw nanosecond ratios would gate on runner speed, not on the
# code. The comparison is therefore **machine-normalised**: each kernel's
# smoke/baseline ratio is divided by the median ratio across all gated
# kernels (the runner's overall speed factor), and a kernel fails only
# when its normalised ratio exceeds the tolerance — i.e. when it regressed
# 3x *relative to its peers in the same run*. A uniformly slow runner
# passes; a single kernel blowing up does not. (A change that slows every
# kernel uniformly by 3x would also pass — that trade is deliberate: on
# shared CI hardware a global factor is indistinguishable from a slow
# runner, and the recorded BENCH_replay.json rows are the artefact that
# tracks absolute cost.)
#
# The gated units are the per-decision/per-solve *kernels* — the
# end-to-end replay units are too noisy for a 1-sample CI smoke run to
# judge.
#
# Usage: bench_gate.sh <baseline.json> <smoke.json> <baseline-phase> <smoke-phase> [tolerance]
set -euo pipefail

baseline_file="$1"
smoke_file="$2"
baseline_phase="$3"
smoke_phase="$4"
tolerance="${5:-3.0}"

median_of() {
  # median_of <file> <row name>: the median_ns of the named bench row.
  grep -F "\"name\": \"$2\"" "$1" | tail -n 1 | sed -E 's/.*"median_ns": ([0-9.eE+-]+).*/\1/'
}

# Entries are either a bare kernel name (compared against rows recorded
# under <baseline-phase>) or `<phase>:<kernel>` to pin the baseline to the
# PR phase that first recorded the unit — later PRs add kernels without
# re-recording the whole pr5 baseline.
kernels=(
  dvfs_decision/ladder_eval_17
  dvfs_decision/cached_decision
  solver_window/oracle_13x17_exact
  solver_window/hostile_12x17_anytime
  solver_window/rebuild_13x17
  solver_window/rebuild_13x17_sorted
  pr8:predict_kernel/single_masked_f64
  pr8:predict_kernel/single_masked_packed
  pr8:predict_kernel/batch_64_f64_reference
  pr8:predict_kernel/predict_many_64
  pr9:shared_memo/generation_hit_cycle16
  pr9:shared_memo/publish_4x4
  pr10:engine_floor/execute_commit_31_ledger
  pr10:engine_floor/execute_commit_31_reference
)

fail=0
names=()
ratios=()
for kernel in "${kernels[@]}"; do
  bphase="$baseline_phase"
  case "$kernel" in
    *:*) bphase="${kernel%%:*}" kernel="${kernel#*:}" ;;
  esac
  base=$(median_of "$baseline_file" "session_replay/$bphase/$kernel" || true)
  smoke=$(median_of "$smoke_file" "session_replay/$smoke_phase/$kernel" || true)
  if [ -z "$base" ]; then
    echo "::error::no '$bphase' baseline row for $kernel in $baseline_file"
    fail=1
    continue
  fi
  if [ -z "$smoke" ]; then
    echo "::error::smoke run produced no row for $kernel"
    fail=1
    continue
  fi
  names+=("$kernel")
  ratios+=("$(awk -v s="$smoke" -v b="$base" 'BEGIN { printf "%.6f", s / b }')")
done

if [ "${#ratios[@]}" -eq 0 ]; then
  echo "::error::no kernels could be compared"
  exit 1
fi

speed_factor=$(printf '%s\n' "${ratios[@]}" | sort -n | awk '
  { r[NR] = $1 }
  END {
    if (NR % 2) { print r[(NR + 1) / 2] }
    else { printf "%.6f", (r[NR / 2] + r[NR / 2 + 1]) / 2 }
  }')
echo "runner speed factor (median smoke/baseline ratio): $speed_factor"

for i in "${!names[@]}"; do
  kernel="${names[$i]}"
  ratio="${ratios[$i]}"
  if awk -v r="$ratio" -v m="$speed_factor" -v t="$tolerance" \
    'BEGIN { exit !(r > m * t) }'; then
    echo "::error::$kernel regressed: ${ratio}x its baseline vs the run's ${speed_factor}x speed factor (tolerance ${tolerance}x)"
    fail=1
  else
    echo "$kernel: ${ratio}x baseline (normalised tolerance ${tolerance}x) — ok"
  fi
done
exit "$fail"
