#!/usr/bin/env bash
# Runs one named test filter inside a test harness and fails when the filter
# matches zero tests. `cargo test` with a filter that matches nothing still
# exits 0, so a renamed lockdown test would silently drop out of CI without
# this guard; every run is therefore checked for a non-zero pass count.
#
# Usage: run_named.sh <harness> <filter> [extra cargo test args...]
set -euo pipefail

harness="$1"
filter="$2"
shift 2

if ! out=$(cargo test -q --test "$harness" "$filter" "$@" 2>&1); then
  echo "$out"
  exit 1
fi
echo "$out"
echo "$out" | grep -Eq 'test result: ok\. [1-9][0-9]* passed' \
  || { echo "::error::filter '$filter' matched no tests in $harness"; exit 1; }
