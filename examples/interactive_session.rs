//! Follow a single interaction session event by event: what the user did,
//! what PES predicted, how the Pending Frame Buffer evolved (the Fig. 9
//! view), and where mispredictions occurred.
//!
//! Run with `cargo run --release --example interactive_session [app]`.

use pes::acmp::Platform;
use pes::core::{PesConfig, PesScheduler};
use pes::predictor::{LearnerConfig, Trainer};
use pes::webrt::QosPolicy;
use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn main() {
    let app_name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "ebay".to_string());
    let catalog = AppCatalog::paper_suite();
    let Some(app) = catalog.find(&app_name) else {
        eprintln!(
            "unknown application {app_name:?}; available: {}",
            catalog
                .apps()
                .iter()
                .map(|a| a.name())
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    };

    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    println!("training predictor...");
    let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults());

    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 4);
    let report = pes.run_trace(&platform, &page, &trace, &qos);

    println!(
        "\nsession of {} — {} events over {:.0} s (touch user: {})\n",
        app.name(),
        trace.len(),
        trace.duration().as_secs_f64(),
        trace.is_touch_user()
    );
    println!(
        "{:<5} {:<12} {:>10} {:>10} {:>10} {:>6} {:>5}",
        "event", "type", "arrival", "latency", "target", "ok?", "PFB"
    );
    for (idx, ev) in trace.events().iter().enumerate() {
        let outcome = report
            .outcomes
            .iter()
            .find(|(id, _)| *id == ev.id())
            .map(|(_, o)| o);
        let pfb = report
            .pfb_trace
            .iter()
            .find(|(i, _)| *i == idx)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        if let Some(o) = outcome {
            println!(
                "{:<5} {:<12} {:>9.2}s {:>8.1}ms {:>8.1}ms {:>6} {:>5}",
                format!("E{idx}"),
                ev.event_type().to_string(),
                ev.arrival().as_secs_f64(),
                o.latency().as_millis_f64(),
                o.target.as_millis_f64(),
                if o.violated() { "MISS" } else { "ok" },
                pfb
            );
        }
    }
    println!(
        "\nsummary: {} violations, {:.1} mJ, prediction accuracy {:.1}%, {} mispredictions (avg waste {:.1} ms)",
        report.violations,
        report.total_energy.as_millijoules(),
        100.0 * report.prediction_accuracy(),
        report.mispredictions,
        report.average_waste_ms()
    );
}
