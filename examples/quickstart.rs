//! Quickstart: train the predictor, replay one user session of cnn.com under
//! PES and under the baselines, and print the headline comparison.
//!
//! Run with `cargo run --release --example quickstart`.

use pes::acmp::Platform;
use pes::core::{OracleScheduler, PesConfig, PesScheduler};
use pes::predictor::{LearnerConfig, Trainer};
use pes::schedulers::{Ebs, InteractiveGovernor};
use pes::sim::run_reactive;
use pes::webrt::QosPolicy;
use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn main() {
    let platform = Platform::exynos_5410();
    let qos = QosPolicy::paper_defaults();
    let catalog = AppCatalog::paper_suite();

    println!("training the event predictor on the 12 seen applications...");
    let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());

    let app = catalog.find("cnn").expect("cnn is in the suite");
    let page = app.build_page();
    let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
    println!(
        "replaying a {}-event, {:.0}-second session of {}\n",
        trace.len(),
        trace.duration().as_secs_f64(),
        app.name()
    );

    let interactive = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
    let ebs = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
    let pes = PesScheduler::new(learner, PesConfig::paper_defaults())
        .run_trace(&platform, &page, &trace, &qos);
    let oracle = OracleScheduler::new().run_trace(&platform, &page, &trace, &qos);

    println!(
        "{:<14} {:>12} {:>16} {:>14}",
        "policy", "energy (mJ)", "vs Interactive", "QoS violations"
    );
    let base = interactive.total_energy.as_millijoules();
    let row = |name: &str, energy: f64, violations: usize, events: usize| {
        println!(
            "{:<14} {:>12.1} {:>15.1}% {:>9} / {:<3}",
            name,
            energy,
            100.0 * energy / base,
            violations,
            events
        );
    };
    row(
        "Interactive",
        base,
        interactive.violations(),
        interactive.events(),
    );
    row(
        "EBS",
        ebs.total_energy.as_millijoules(),
        ebs.violations(),
        ebs.events(),
    );
    row(
        "PES",
        pes.total_energy.as_millijoules(),
        pes.violations,
        pes.events,
    );
    row(
        "Oracle",
        oracle.total_energy.as_millijoules(),
        oracle.violations,
        oracle.events,
    );

    println!(
        "\nPES prediction accuracy (online): {:.1}%  |  mispredictions: {}  |  avg prediction degree: {:.1}",
        100.0 * pes.prediction_accuracy(),
        pes.mispredictions,
        pes.average_prediction_degree()
    );
}
