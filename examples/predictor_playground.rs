//! Inspect the event predictor: per-application accuracy (Fig. 8), the effect
//! of DOM (LNES) masking, and a live multi-step prediction from a session
//! prefix.
//!
//! Run with `cargo run --release --example predictor_playground`.

use pes::predictor::{evaluate_accuracy, LearnerConfig, SessionState, Trainer};
use pes::workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

fn main() {
    let catalog = AppCatalog::paper_suite();
    println!("training the global event-sequence model...");
    let trainer = Trainer::new();
    let learner = trainer.train_learner(&catalog, LearnerConfig::paper_defaults());
    let learner_no_dom =
        trainer.train_learner(&catalog, LearnerConfig::paper_defaults().with_lnes(false));
    let generator = TraceGenerator::new();

    println!("\nper-application one-step prediction accuracy (evaluation traces):");
    println!(
        "{:<16} {:>6} {:>12} {:>16}",
        "app", "seen", "with DOM", "without DOM"
    );
    let mut seen_acc = Vec::new();
    let mut unseen_acc = Vec::new();
    for app in catalog.apps() {
        let page = app.build_page();
        let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 3);
        let with_dom = evaluate_accuracy(&learner, &page, &traces);
        let without_dom = evaluate_accuracy(&learner_no_dom, &page, &traces);
        println!(
            "{:<16} {:>6} {:>11.1}% {:>15.1}%",
            app.name(),
            app.is_seen(),
            100.0 * with_dom,
            100.0 * without_dom
        );
        if app.is_seen() {
            seen_acc.push(with_dom);
        } else {
            unseen_acc.push(with_dom);
        }
    }
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage accuracy: seen {:.1}%   unseen {:.1}%   (paper: 91.3% / 89.2%)",
        avg(&seen_acc),
        avg(&unseen_acc)
    );

    // Live multi-step prediction after a short session prefix.
    let app = catalog.find("amazon").unwrap();
    let page = app.build_page();
    let trace = generator.generate(app, &page, EVAL_SEED_BASE + 9);
    let mut state = SessionState::new(page.tree.clone());
    let prefix = trace.len().min(6);
    for ev in &trace.events()[..prefix] {
        state.observe(ev);
    }
    println!(
        "\nafter observing the first {prefix} events of an {} session, PES predicts:",
        app.name()
    );
    for (i, p) in learner.predict_sequence(&state).iter().enumerate() {
        println!(
            "  +{}: {:<12} confidence {:.2} (cumulative {:.2})",
            i + 1,
            p.event_type.to_string(),
            p.confidence,
            p.cumulative_confidence
        );
    }
}
