//! The Fig. 14 sensitivity study: sweep the prediction confidence threshold
//! and report PES energy and QoS-violation reduction relative to EBS.
//!
//! Run with `cargo run --release --example sensitivity_sweep [apps]`.

use pes::sim::{fig14_sensitivity, ExperimentContext};

fn main() {
    let apps: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("building experiment context (training predictor)...");
    let ctx = ExperimentContext::new(1);
    let thresholds = [0.3, 0.5, 0.7, 0.9, 1.0];
    println!("sweeping confidence thresholds {thresholds:?} over {apps} seen applications...\n");
    let points = fig14_sensitivity(&ctx, &thresholds, apps);
    println!(
        "{:>10} {:>22} {:>26}",
        "threshold", "energy vs EBS (lower=better)", "QoS-violation reduction"
    );
    for p in points {
        println!(
            "{:>9.0}% {:>21.1}% {:>25.1}%",
            100.0 * p.threshold,
            100.0 * p.energy_vs_ebs,
            100.0 * p.qos_violation_reduction
        );
    }
    println!("\nexpected shape (Fig. 14): benefits saturate once the threshold drops below ~70%.");
}
