//! Compare every scheduling policy across the full 18-application suite and
//! print the Fig. 11 / Fig. 12 style summary (energy normalised to the
//! Interactive governor, QoS violation rates) plus the Fig. 13 Pareto points.
//!
//! Run with `cargo run --release --example governor_comparison [traces_per_app]`.

use pes::sim::{fig13_pareto, full_comparison, ExperimentContext};

fn main() {
    let traces_per_app: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    println!("building experiment context (training predictor)...");
    let ctx = ExperimentContext::new(traces_per_app);
    println!("running all five policies over 18 applications x {traces_per_app} traces...\n");
    let comparisons = full_comparison(&ctx);

    println!(
        "{:<16} {:>6} {:>12} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "app", "seen", "Interactive", "EBS", "PES", "Oracle", "viol EBS", "viol PES", "viol Orc"
    );
    for c in &comparisons {
        println!(
            "{:<16} {:>6} {:>11.0}mJ {:>7.2} {:>7.2} {:>7.2} | {:>7.1}% {:>7.1}% {:>7.1}%",
            c.app,
            c.seen,
            c.energy_of("Interactive").unwrap_or(0.0),
            c.normalized_energy("EBS").unwrap_or(1.0),
            c.normalized_energy("PES").unwrap_or(1.0),
            c.normalized_energy("Oracle").unwrap_or(1.0),
            100.0 * c.violation_of("EBS").unwrap_or(0.0),
            100.0 * c.violation_of("PES").unwrap_or(0.0),
            100.0 * c.violation_of("Oracle").unwrap_or(0.0),
        );
    }

    println!("\nPareto points (seen-suite averages, Fig. 13):");
    for (policy, energy, violation) in fig13_pareto(&comparisons) {
        println!(
            "  {:<12} normalised energy {:>5.2}   QoS violation {:>5.1}%",
            policy,
            energy,
            100.0 * violation
        );
    }
}
