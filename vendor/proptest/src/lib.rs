//! A minimal, dependency-free stand-in for the subset of the `proptest` API
//! this workspace uses. The build environment has no crates.io access, so the
//! workspace vendors this shim instead of the real crate.
//!
//! Supported surface: the `proptest!` macro with `arg in strategy` bindings,
//! range strategies over the integer/float primitives, tuple strategies,
//! `proptest::collection::vec`, and `prop_assert!` / `prop_assert_eq!`.
//!
//! Each property runs [`CASES`] deterministic cases from a seed derived from
//! the test name, so failures are reproducible run-to-run. There is no
//! shrinking: a failing case panics with the generating seed in the message.

#![warn(missing_docs)]

/// Number of cases each property is exercised with.
pub const CASES: u32 = 96;

/// The deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates the RNG from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Derives a per-test seed from the test's name.
    pub fn seed_for(name: &str) -> u64 {
        // FNV-1a over the name; stable across runs and platforms.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Something that can generate values for a property test.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4)
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len_exclusive: usize,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len_exclusive: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.max_len_exclusive - self.min_len) as u64;
            let len = self.min_len + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestRng, CASES};
}

/// Asserts a condition inside a property, reporting the failing case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }` is
/// expanded into a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let seed = $crate::TestRng::seed_for(stringify!($name));
            for case in 0..$crate::CASES {
                let mut rng = $crate::TestRng::new(seed ^ (u64::from(case) << 32));
                $(
                    #[allow(unused_mut)]
                    let mut $arg = $crate::Strategy::generate(&($strategy), &mut rng);
                )*
                $body
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_are_respected(x in 3u64..10, y in -5i64..=5, f in 0.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_of_tuples_generates(v in collection::vec((0u64..100, 1u32..4), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 100);
                prop_assert!((1..4).contains(b));
            }
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(TestRng::seed_for("x"), TestRng::seed_for("x"));
        assert_ne!(TestRng::seed_for("x"), TestRng::seed_for("y"));
    }
}
