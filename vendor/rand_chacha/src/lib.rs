//! A vendored, dependency-free ChaCha8 random number generator implementing
//! this workspace's `rand` shim traits.
//!
//! The keystream is a faithful ChaCha8 implementation (RFC 8439 quarter
//! round, 8 double-rounds), seeded by expanding a 64-bit seed with
//! SplitMix64 into the 256-bit key. Streams are deterministic per seed but
//! not bit-compatible with the upstream `rand_chacha` crate; nothing in this
//! repository depends on upstream stream values.

#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    state: [u32; 16],
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        for _ in 0..4 {
            // One double round: a column round followed by a diagonal round.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buffer.iter_mut().zip(working.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let (counter, carry) = self.state[12].overflowing_add(1);
        self.state[12] = counter;
        self.state[13] = self.state[13].wrapping_add(u32::from(carry));
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 key expansion, the standard way to fan a 64-bit seed out
        // into a wider key deterministically.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for i in 0..4 {
            let word = next();
            state[4 + 2 * i] = word as u32;
            state[5 + 2 * i] = (word >> 32) as u32;
        }
        // Counter (12..14) starts at zero; nonce (14..16) from the seed too.
        let nonce = next();
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_looks_uniform_enough() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 100_000;
        let mean = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
