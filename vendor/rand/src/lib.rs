//! A minimal, dependency-free, offline stand-in for the subset of the `rand`
//! crate API this workspace uses (`Rng::gen_range`, `Rng::gen_bool`,
//! `SeedableRng::seed_from_u64` and `seq::SliceRandom::shuffle`).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! this shim instead of the real crate. Streams are deterministic for a given
//! seed but are *not* bit-compatible with upstream `rand`; every consumer in
//! this repository only relies on seeded determinism, never on upstream
//! stream values.

#![warn(missing_docs)]

/// The low-level source of randomness: a stream of `u32`/`u64` words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[lo, hi]` (inclusive), via rejection-free multiply-shift
/// with a widening multiply; bias is negligible for the span sizes used here
/// and, more importantly, the result is deterministic per seed.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: u64, hi: u64) -> u64 {
    debug_assert!(lo <= hi, "empty sample range");
    let span = hi.wrapping_sub(lo).wrapping_add(1);
    if span == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    let wide = u128::from(rng.next_u64()) * u128::from(span);
    lo + (wide >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                uniform_u64_inclusive(rng, self.start as u64, self.end as u64 - 1) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                uniform_u64_inclusive(rng, lo as u64, hi as u64) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Map to order-preserving unsigned space by flipping the sign bit.
                const FLIP: u128 = 1 << (<$u>::BITS - 1);
                let lo = (self.start as $u) as u128 ^ FLIP;
                let hi = (self.end as $u) as u128 ^ FLIP;
                let v = uniform_u64_inclusive(rng, lo as u64, (hi - 1) as u64);
                ((v as u128 ^ FLIP) as $u) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i32 => u32, i64 => u64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of RNGs from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sequence-related helpers (`shuffle`).
pub mod seq {
    use super::RngCore;

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64_inclusive(rng, 0, i as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Lcg(u64);

    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Lcg(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w: usize = rng.gen_range(0usize..3);
            assert!(w < 3);
            let x: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&x));
            let f: f64 = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = Lcg(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Lcg(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
