//! A minimal, dependency-free stand-in for the subset of the `criterion`
//! benchmark API this workspace uses. The build environment has no crates.io
//! access, so the workspace vendors this harness instead of the real crate.
//!
//! Supported surface: `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group` (+ `sample_size` / `bench_function` /
//! `finish`), `criterion_group!` (both the plain and the
//! `name/config/targets` forms) and `criterion_main!`.
//!
//! Each benchmark is warmed up, auto-calibrated to a per-sample batch size,
//! then timed for `sample_size` samples; mean/median/min are printed in
//! criterion-like form. When the `BENCH_JSON` environment variable names a
//! file, one JSON line per benchmark is appended to it — that is how the
//! repository records `BENCH_solver.json` / `BENCH_replay.json` baselines.
//! The `BENCH_SAMPLES` environment variable overrides every benchmark's
//! sample count (CI smoke-runs the harnesses with `BENCH_SAMPLES=1` so a
//! broken bench fails fast without burning minutes of measurement).

#![warn(missing_docs)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export for convenience parity with the real crate.
pub use std::hint::black_box;

/// The benchmark harness configuration and runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    group: Option<String>,
    /// Substring filter from the command line (`cargo bench -- <filter>`);
    /// benchmarks whose full name does not contain it are skipped.
    filter: Option<String>,
    /// `BENCH_SAMPLES` override; wins over `sample_size(..)` calls.
    forced_samples: Option<usize>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 50,
            group: None,
            filter: std::env::args()
                .skip(1)
                .find(|a| !a.starts_with('-') && a != "bench"),
            forced_samples: std::env::var("BENCH_SAMPLES")
                .ok()
                .and_then(|s| s.parse().ok())
                .filter(|&n| n >= 1),
        }
    }
}

/// One measured benchmark summary in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
struct Summary {
    mean_ns: f64,
    median_ns: f64,
    min_ns: f64,
    samples: usize,
    iters_per_sample: u64,
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_name = match &self.group {
            Some(group) => format!("{group}/{name}"),
            None => name.to_string(),
        };
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            sample_size: self.forced_samples.unwrap_or(self.sample_size),
            summary: None,
        };
        f(&mut bencher);
        let summary = bencher
            .summary
            .expect("benchmark closure must call Bencher::iter");
        report(&full_name, &summary);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: Criterion {
                sample_size: self.sample_size,
                group: Some(name.to_string()),
                filter: self.filter.clone(),
                forced_samples: self.forced_samples,
            },
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: Criterion,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(name, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the code to
/// measure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    summary: Option<Summary>,
}

/// Target wall-clock duration of one timed sample.
const TARGET_SAMPLE: Duration = Duration::from_millis(10);
/// Warm-up budget before calibration.
const WARMUP: Duration = Duration::from_millis(100);

impl Bencher {
    /// Measures `f`, running it enough times per sample to obtain a stable
    /// wall-clock reading.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration time.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < WARMUP && warmup_iters < 1_000_000 {
            black_box(f());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iters_per_sample = ((TARGET_SAMPLE.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median_ns = samples_ns[samples_ns.len() / 2];
        self.summary = Some(Summary {
            mean_ns,
            median_ns,
            min_ns: samples_ns[0],
            samples: samples_ns.len(),
            iters_per_sample,
        });
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, s: &Summary) {
    println!(
        "{name:<60} time: [{} {} {}]  ({} samples x {} iters)",
        human(s.min_ns),
        human(s.median_ns),
        human(s.mean_ns),
        s.samples,
        s.iters_per_sample
    );
    if let Ok(path) = std::env::var("BENCH_JSON") {
        if let Ok(mut file) = std::fs::OpenOptions::new().create(true).append(true).open(&path) {
            let _ = writeln!(
                file,
                "{{\"name\": \"{}\", \"mean_ns\": {:.1}, \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}",
                name.replace('"', "'"),
                s.mean_ns,
                s.median_ns,
                s.min_ns,
                s.samples
            );
        }
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark `main` entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_a_summary() {
        let mut c = Criterion::default().sample_size(3);
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("inner", |b| b.iter(|| black_box(0u64)));
        group.finish();
    }
}
