//! Parallel predictor training.
//!
//! `Trainer::train` builds one supervised dataset per seen application —
//! page construction, seeded trace generation and per-event feature
//! extraction — and only then runs the (inherently serial) SGD fit over the
//! concatenated samples. The per-app dataset builds are independent and
//! deterministic, exactly the shape [`crate::par_map`] fans out, yet
//! `ExperimentContext::new` used to pay for them serially on every figure
//! run. [`train_learner_parallel`] spreads the dataset builds over scoped
//! threads and feeds them to the trainer **in catalog order**, so the model
//! is byte-identical to the serial protocol (pinned by
//! `parallel_training_matches_serial` below).

use pes_predictor::{EventSequenceLearner, LearnerConfig, OneVsRestClassifier, Trainer};
use pes_workload::AppCatalog;

use crate::parallel::par_map;

/// Trains the global event-sequence classifier with per-app dataset builds
/// fanned out over [`par_map`] scoped threads. Identical output to
/// `trainer.train(catalog)`; only the wall clock changes.
pub fn train_parallel(trainer: &Trainer, catalog: &AppCatalog) -> OneVsRestClassifier {
    let apps: Vec<_> = catalog.seen_apps().collect();
    let datasets = par_map(apps.len(), |i| trainer.app_dataset(apps[i]));
    trainer.train_from_app_datasets(datasets)
}

/// [`train_parallel`] wrapped into a sequence learner, mirroring
/// `Trainer::train_learner`.
pub fn train_learner_parallel(
    trainer: &Trainer,
    catalog: &AppCatalog,
    config: LearnerConfig,
) -> EventSequenceLearner {
    EventSequenceLearner::new(train_parallel(trainer, catalog), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_predictor::TrainingConfig;

    #[test]
    fn parallel_training_matches_serial() {
        let catalog = AppCatalog::paper_suite();
        let trainer = Trainer::with_config(TrainingConfig {
            traces_per_app: 2,
            epochs: 8,
            ..Default::default()
        });
        let serial = trainer.train(&catalog);
        let parallel = train_parallel(&trainer, &catalog);
        assert_eq!(
            serial, parallel,
            "fanned-out dataset building must train a byte-identical model"
        );
        // The explicitly forced serial fan-out agrees too (no PES_THREADS
        // env mutation here: the test harness runs tests concurrently and
        // other tests read that variable).
        let apps: Vec<_> = catalog.seen_apps().collect();
        let forced_serial =
            trainer.train_from_app_datasets(crate::parallel::par_map_with(1, apps.len(), |i| {
                trainer.app_dataset(apps[i])
            }));
        assert_eq!(serial, forced_serial);
    }
}
