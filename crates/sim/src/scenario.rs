//! Shared immutable scenario artifacts for the experiment drivers.
//!
//! The figure suite replays every `(application, trace, scheduler)` tuple
//! independently; before this cache existed, each fan-out unit rebuilt its
//! application's page DOM and re-synthesised its seeded trace from scratch —
//! five times per `(application, trace)` pair in the headline comparison
//! alone. [`ScenarioCache`] builds each application's [`BuiltPage`] once and
//! each `(application, trace index)` trace once, and hands them out as
//! cheap `Arc` clones to every scheduler and worker thread. The artifacts
//! are deterministic functions of the catalog and the seed scheme
//! (`EVAL_SEED_BASE + trace index`, the same seeds the serial
//! `TraceGenerator::generate_many` path uses), so the cache is byte-for-byte
//! equivalent to regenerating per unit — enforced by the
//! `scenario_cache_matches_regenerated_artifacts` test in
//! [`crate::experiments`].

use std::sync::Arc;

use pes_dom::BuiltPage;
use pes_workload::{AppCatalog, Trace, TraceGenerator, EVAL_SEED_BASE};

use crate::parallel::par_map;

/// Once-built, immutably shared pages and evaluation traces for every
/// application in a catalog, indexed by catalog position.
///
/// # Examples
///
/// ```
/// use pes_sim::ScenarioCache;
/// use pes_workload::AppCatalog;
///
/// let catalog = AppCatalog::paper_suite();
/// let cache = ScenarioCache::build(&catalog, 2);
/// assert_eq!(cache.traces_per_app(), 2);
/// let page = cache.page(0);
/// let trace = cache.trace(0, 1);
/// assert_eq!(trace.app(), catalog.apps()[0].name());
/// assert!(!page.links.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioCache {
    pages: Vec<Arc<BuiltPage>>,
    traces: Vec<Vec<Arc<Trace>>>,
}

impl ScenarioCache {
    /// Builds the pages and `traces_per_app` evaluation traces for every
    /// application in the catalog, fanning the per-application work over
    /// scoped threads (building is deterministic per application, so the
    /// result is independent of the worker count).
    pub fn build(catalog: &AppCatalog, traces_per_app: usize) -> Self {
        let apps = catalog.apps();
        let traces_per_app = traces_per_app.max(1);
        let mut pages = Vec::with_capacity(apps.len());
        let mut traces = Vec::with_capacity(apps.len());
        let built = par_map(apps.len(), |app_idx| {
            let app = &apps[app_idx];
            let page = app.build_page();
            let app_traces: Vec<Arc<Trace>> = TraceGenerator::new()
                .generate_many(app, &page, EVAL_SEED_BASE, traces_per_app)
                .into_iter()
                .map(Arc::new)
                .collect();
            (Arc::new(page), app_traces)
        });
        for (page, app_traces) in built {
            pages.push(page);
            traces.push(app_traces);
        }
        ScenarioCache { pages, traces }
    }

    /// Number of applications covered.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether the cache covers no applications.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Number of evaluation traces held per application.
    pub fn traces_per_app(&self) -> usize {
        self.traces.first().map(|t| t.len()).unwrap_or(0)
    }

    /// The shared page of the application at `app_idx` (catalog order).
    pub fn page(&self, app_idx: usize) -> Arc<BuiltPage> {
        Arc::clone(&self.pages[app_idx])
    }

    /// The shared trace `trace_idx` of the application at `app_idx` (seed
    /// `EVAL_SEED_BASE + trace_idx`).
    pub fn trace(&self, app_idx: usize, trace_idx: usize) -> Arc<Trace> {
        Arc::clone(&self.traces[app_idx][trace_idx])
    }

    /// All shared traces of the application at `app_idx`.
    pub fn traces(&self, app_idx: usize) -> &[Arc<Trace>] {
        &self.traces[app_idx]
    }

    /// Borrowed form of [`ScenarioCache::page`] for callers that only need
    /// the page for the duration of one replay.
    pub fn page_ref(&self, app_idx: usize) -> &BuiltPage {
        &self.pages[app_idx]
    }

    /// Borrowed form of [`ScenarioCache::trace`].
    pub fn trace_ref(&self, app_idx: usize, trace_idx: usize) -> &Trace {
        &self.traces[app_idx][trace_idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_is_deterministic_and_shares_artifacts() {
        let catalog = AppCatalog::paper_suite();
        let a = ScenarioCache::build(&catalog, 2);
        let b = ScenarioCache::build(&catalog, 2);
        assert_eq!(a.len(), catalog.len());
        assert_eq!(a.traces_per_app(), 2);
        for app_idx in 0..a.len() {
            assert_eq!(*a.page(app_idx), *b.page(app_idx));
            for trace_idx in 0..2 {
                assert_eq!(*a.trace(app_idx, trace_idx), *b.trace(app_idx, trace_idx));
            }
            // Handing out a page twice shares one allocation.
            assert!(Arc::ptr_eq(&a.page(app_idx), &a.page(app_idx)));
        }
    }

    #[test]
    fn traces_use_the_serial_seed_scheme() {
        let catalog = AppCatalog::paper_suite();
        let cache = ScenarioCache::build(&catalog, 3);
        let app = &catalog.apps()[4];
        let page = app.build_page();
        let serial = TraceGenerator::new().generate_many(app, &page, EVAL_SEED_BASE, 3);
        for (trace_idx, expected) in serial.iter().enumerate() {
            assert_eq!(&*cache.trace(4, trace_idx), expected);
        }
    }
}
