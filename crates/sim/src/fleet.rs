//! Resilient streaming fleet driver: pulls generated sessions through the
//! PES engine with bounded memory and four deterministic, seeded resilience
//! mechanisms layered on the supervised fan-out of [`crate::parallel`]:
//!
//! 1. **Watchdog deadlines** — every replay runs under the per-replay
//!    [`WatchdogConfig`] budget enforced inside `pes_core::runtime`; a trip
//!    demotes the unit's serving tier one [`DegradationLevel`] and is
//!    reported in `RunReport::watchdog_trips`.
//! 2. **Circuit breakers** — each shard (`unit % shards`) keeps a sliding
//!    window over its recent *full-tier* unit outcomes (quarantines,
//!    watchdog trips, floor hits, violation spikes). When the bad count in
//!    the window reaches the trip threshold the breaker opens and the
//!    shard's units are routed to a reactive [`RoutedTier`] instead of the
//!    proactive optimizer; after a cooldown the breaker half-opens and lets
//!    a few probe units back onto the full tier, closing again only after
//!    enough clean probes.
//! 3. **Admission control / load shedding** — arrivals (with optional
//!    burst storms) land in a bounded queue; when the queue overflows, the
//!    configured [`ShedPolicy`] deterministically sheds the oldest or the
//!    lowest-priority sessions, so storms degrade throughput gracefully
//!    instead of growing memory.
//! 4. **Journaled checkpoint/resume** — after every batch the driver
//!    appends one checksummed, cumulative journal record (unit cursor,
//!    aggregate violations/energy, breaker snapshots). A killed run resumes
//!    from the last intact record by fast-forwarding the
//!    outcome-independent admission arithmetic and restoring the
//!    outcome-dependent aggregates, producing byte-identical aggregates to
//!    the uninterrupted run — torn tail lines included.
//!
//! On top of the four resilience mechanisms the driver shares solver work
//! across the fleet: every replay probes a read-only [`SolveGeneration`]
//! of window solves published by previous batches (each worker records its
//! own fresh solves into a private [`SolveShard`]; a deterministic merge
//! folds the shards in unit order between batches), and an optional
//! predicted-cost router ([`CostRouteConfig`]) keeps an integer EMA of
//! per-shard solve cost and routes hot shards to cheaper [`SolveEntry`]
//! tiers before their breakers ever trip.
//!
//! Everything is a deterministic function of ([`FleetSpec`],
//! [`FleetConfig`], context): session parameters derive statelessly from
//! the fleet seed via [`pes_core::splitmix`], traces are generated per unit
//! and dropped after the replay, and per-batch aggregation folds in unit
//! index order, so reruns — and resumed runs — are byte-identical
//! regardless of worker count.
//!
//! # Journal record format (`PESFLEETJ1` → `PESFLEETJ3`)
//!
//! The journal is line-oriented ASCII: one cumulative record per batch,
//! each a space-separated `key=value` token list ending in an FNV-1a-64
//! checksum of everything before it. New records always encode as the
//! current `PESFLEETJ3` format; the reader also accepts `J2` and `J1`
//! records (fields those versions lack restore as zeros), treats a
//! malformed *final* line as a torn tail, and returns a typed
//! [`FleetError::JournalVersion`] for an intact record whose
//! `PESFLEETJ*` magic this build does not read.
//!
//! ```text
//! PESFLEETJ3 batch=.. step=.. next_unit=.. shed=.. completed=.. retries=..
//!   violations=.. events=.. energy=<16-hex> wd=.. deg=E,A,G,R,F
//!   inj=c1,..,c8 pred=p0,..,p6 nodes=.. mh=.. mm=.. ent=g,a,e ema=h0,h1,..
//!   fail=idx:att:L;.. brk=S:bits:len:cd:ps:hist|.. #<16-hex checksum>
//! ```
//!
//! Field by field (all counters are *cumulative* since the run started):
//!
//! | Token | Since | Meaning |
//! |---|---|---|
//! | `batch=` | J1 | Batches executed (== records written so far). |
//! | `step=` | J1 | Admission steps consumed by the arrival process. |
//! | `next_unit=` | J1 | Next unit index to admit (the resume cursor). |
//! | `shed=` | J1 | Sessions shed by the [`ShedPolicy`]. |
//! | `completed=` | J1 | Replays completed (including retried units). |
//! | `retries=` | J1 | Supervised re-executions after a worker panic. |
//! | `violations=` | J1 | QoS violations across all completed replays. |
//! | `events=` | J1 | Events executed across all completed replays. |
//! | `energy=` | J1 | Total energy as big-endian hex of `f64::to_bits` — bit-exact, no decimal round-trip. |
//! | `wd=` | J1 | Watchdog deadline trips. |
//! | `deg=` | J1 | Five comma-separated [`DegradationLevel`] counts: Exact, Anytime, Greedy, Reactive, OndemandFloor. |
//! | `inj=` | J1 | Eight comma-separated [`FaultCounts`] fields: prediction flips, confidence corruptions, demand drifts, starved solves, masked configs, delayed vsyncs, duplicated events, dropped events. |
//! | `pred=` | J2 | Per-event-class histogram of batched opening predictions (one count per [`EventType`] class). |
//! | `nodes=` | J3 | Solver nodes explored fleet-wide. |
//! | `mh=` / `mm=` | J3 | Per-replay solve-memo ring hits / misses. (Shared-generation hit counters are deliberately **not** journaled: a resumed run rebuilds the generation cold, so they are the one non-resume-stable aggregate.) |
//! | `ent=` | J3 | Routed-entry histogram: units forced to Greedy, Anytime, Exact by predicted-cost routing. |
//! | `ema=` | J3 | Per-shard cost-routing EMA accumulators as hex (`-` when routing is off). |
//! | `fail=` | J1 | Quarantine roster, `index:attempts:level-letter` triples joined by `;` (`-` when empty). |
//! | `brk=` | J1 | One breaker snapshot per shard joined by `\|`: `state-letter:window-bits-hex:window-len:cooldown-left:probe-successes:transition-history` (history `-` when empty). |
//! | `#` | J1 | FNV-1a-64 checksum (hex) of the full payload before ` #`. |

use std::collections::VecDeque;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{BufRead, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use pes_core::{
    splitmix, DegradationLevel, DegradationTrace, FaultCounts, PesConfig, PesScheduler, RunReport,
    SolveEntry, SolveGeneration, SolveShard, WatchdogConfig,
};
use pes_dom::{EventType, EventTypeSet};
use pes_predictor::SessionState;
use pes_schedulers::RoutedTier;
use pes_workload::TraceGenerator;

use crate::experiments::ExperimentContext;
use crate::parallel::{par_map_supervised_with, parallelism, FleetReport, UnitFailure};

/// Number of event classes in the predicted-opening histogram (one slot
/// per [`EventType`]).
pub const EVENT_CLASSES: usize = EventType::ALL.len();

// ---------------------------------------------------------------------------
// Specs and configuration
// ---------------------------------------------------------------------------

/// What the fleet replays: a stream of `sessions` generated browsing
/// sessions, arriving at a steady rate with optional periodic burst storms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSpec {
    /// Total sessions to stream through the engine.
    pub sessions: usize,
    /// Fleet seed; every per-session parameter derives from it statelessly.
    pub seed: u64,
    /// Sessions arriving per driver step (clamped to at least 1).
    pub arrivals_per_step: usize,
    /// Every `storm_every`-th step also delivers a burst (`0` disables).
    pub storm_every: usize,
    /// Extra sessions delivered by each storm step.
    pub storm_arrivals: usize,
    /// Truncate each generated session to this many events (`0` keeps the
    /// full trace) — the knob that bounds per-unit replay cost at fleet
    /// scale.
    pub max_events_per_session: usize,
    /// Repeated-config sweep: when non-zero, unit `u` replays the scenario
    /// of unit `u % scenario_cycle`, so the stream cycles through
    /// `scenario_cycle` distinct session configurations instead of fully
    /// decorrelated ones (`0` keeps every unit unique). This is how config
    /// sweeps express "replay the same sessions many times" — and what
    /// gives the shared solve memo cross-replay reuse to answer.
    pub scenario_cycle: usize,
}

impl Default for FleetSpec {
    fn default() -> Self {
        FleetSpec {
            sessions: 64,
            seed: 0x5EED_F1EE7,
            arrivals_per_step: 8,
            storm_every: 0,
            storm_arrivals: 0,
            max_events_per_session: 0,
            scenario_cycle: 0,
        }
    }
}

impl FleetSpec {
    /// The unit whose stateless scenario `unit` replays — `unit` itself
    /// unless a [`FleetSpec::scenario_cycle`] folds the stream onto a
    /// repeated sweep.
    pub fn scenario_unit(&self, unit: usize) -> usize {
        if self.scenario_cycle > 0 {
            unit % self.scenario_cycle
        } else {
            unit
        }
    }
}

/// Which queued sessions the admission controller sheds first when the
/// bounded queue overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShedPolicy {
    /// Drop the session that has waited longest (head of the queue).
    OldestFirst,
    /// Drop the lowest-priority session (oldest among ties).
    LowestPriorityFirst,
}

/// Circuit-breaker thresholds shared by every shard breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding-window length over recent full-tier outcomes (clamped to
    /// `1..=64`; the window is stored as bits of a `u64`).
    pub window: usize,
    /// Bad outcomes in the window that open the breaker.
    pub trip_threshold: usize,
    /// Batches an open breaker waits before half-opening.
    pub cooldown_batches: usize,
    /// Probe units a half-open breaker admits to the full tier per batch.
    pub probes: usize,
    /// Consecutive clean probes that close the breaker again.
    pub close_after: usize,
    /// Where an open breaker routes its shard's units.
    pub open_tier: RoutedTier,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_threshold: 8,
            cooldown_batches: 2,
            probes: 2,
            close_after: 3,
            open_tier: RoutedTier::Reactive,
        }
    }
}

/// Predicted-cost routing thresholds: a per-shard integer EMA of observed
/// solve cost classifies shards hot/normal/cold, and each admitted
/// full-tier unit enters the optimizer at the matching [`SolveEntry`] tier
/// (hot → `Greedy`, normal → `Anytime`, cold → `Exact`). All-integer so
/// the state journals exactly and [`FleetConfig`] stays `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostRouteConfig {
    /// Route by predicted cost (`false` serves every full-tier unit at the
    /// exact entry, exactly the pre-routing behaviour).
    pub enabled: bool,
    /// EMA smoothing as a right shift: `ema += (sample - ema) >> shift`
    /// per observed outcome. Larger shifts react slower.
    pub ema_shift: u32,
    /// EMA at or above this many nodes classifies the shard hot (greedy
    /// entry).
    pub hot_nodes: u64,
    /// EMA at or below this many nodes classifies the shard cold (exact
    /// entry). Fresh shards start at 0, i.e. cold.
    pub cold_nodes: u64,
}

impl Default for CostRouteConfig {
    fn default() -> Self {
        CostRouteConfig {
            enabled: false,
            ema_shift: 2,
            hot_nodes: 20_000,
            cold_nodes: 2_000,
        }
    }
}

impl CostRouteConfig {
    /// The [`SolveEntry`] tier a shard with the given cost EMA is served
    /// at. Disabled routing — and a fresh (zero) EMA — both yield `Exact`.
    pub fn classify(&self, ema: u64) -> SolveEntry {
        if !self.enabled || ema <= self.cold_nodes {
            SolveEntry::Exact
        } else if ema >= self.hot_nodes {
            SolveEntry::Greedy
        } else {
            SolveEntry::Anytime
        }
    }
}

/// How the driver runs the stream: batching, queueing, shedding, retry and
/// resilience thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetConfig {
    /// Sessions admitted (and fanned out) per driver step.
    pub batch_size: usize,
    /// Bounded admission queue capacity; overflow is shed.
    pub queue_capacity: usize,
    /// Which sessions to shed on overflow.
    pub shed: ShedPolicy,
    /// Bounded retries per unit before quarantine (see
    /// [`crate::parallel::par_map_supervised`]).
    pub retries: usize,
    /// Worker threads for the per-batch fan-out (`0` uses
    /// [`parallelism`]; the result is identical either way).
    pub threads: usize,
    /// Shard count; each unit belongs to shard `unit % shards` and shares
    /// that shard's circuit breaker.
    pub shards: usize,
    /// Shared breaker thresholds.
    pub breaker: BreakerConfig,
    /// Per-replay watchdog deadlines ([`WatchdogConfig::disabled`] turns
    /// enforcement off).
    pub watchdog: WatchdogConfig,
    /// A completed unit with at least this many QoS violations counts as a
    /// bad breaker outcome (`0` disables the spike signal).
    pub violation_spike: usize,
    /// Serve the fleet on the batched + packed prediction plane: every
    /// tier's replays run their prediction rounds on the class-major f32
    /// matrix (`PesConfig::with_packed_prediction`), and each batch drain
    /// runs **one** `predict_many` matrix pass over the admitted sessions'
    /// opening states, aggregated into
    /// [`FleetRunReport::predicted_openings`].
    pub packed_prediction: bool,
    /// Share window solves across the fleet: each replay probes the
    /// read-only solve generation published by previous batches and
    /// records its fresh solves into a private [`SolveShard`] that the
    /// deterministic inter-batch merge folds in unit order. Aggregates are
    /// bit-identical with this on or off (a generation hit mirrors the
    /// cold solve it dodges); only wall-clock and the shared-hit counters
    /// change.
    pub shared_memo: bool,
    /// Entry cap of the published solve generation; the merge keeps the
    /// newest entries when the fold exceeds it.
    pub generation_cap: usize,
    /// Predicted-cost routing of full-tier units across [`SolveEntry`]
    /// tiers (off by default; see [`CostRouteConfig`]).
    pub cost_routing: CostRouteConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            batch_size: 16,
            queue_capacity: 64,
            shed: ShedPolicy::OldestFirst,
            retries: 1,
            threads: 0,
            shards: 4,
            breaker: BreakerConfig::default(),
            watchdog: WatchdogConfig::disabled(),
            violation_spike: 0,
            packed_prediction: false,
            shared_memo: true,
            generation_cap: 512,
            cost_routing: CostRouteConfig::default(),
        }
    }
}

/// Derives the stateless per-session parameters of `unit` under `seed`:
/// `(scenario hash, app index, trace seed, priority in 0..4)`. The hash is
/// one [`splitmix`] of `seed ^ unit`, so adjacent units are fully
/// decorrelated yet reproducible from the journal cursor alone.
pub fn unit_scenario(seed: u64, apps: usize, unit: usize) -> (u64, usize, u64, u8) {
    let h = splitmix(seed ^ unit as u64);
    let app_idx = (h % apps.max(1) as u64) as usize;
    let trace_seed = splitmix(h);
    let priority = ((h >> 32) % 4) as u8;
    (h, app_idx, trace_seed, priority)
}

// ---------------------------------------------------------------------------
// Circuit breaker
// ---------------------------------------------------------------------------

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakerState {
    /// Healthy: units run the full proactive tier and feed the window.
    Closed,
    /// Tripped: units are routed to the breaker's reactive tier.
    Open,
    /// Cooling down: a few probe units run the full tier per batch.
    HalfOpen,
}

impl BreakerState {
    /// One-letter code used by the journal (`C`/`O`/`H`).
    pub fn letter(self) -> char {
        match self {
            BreakerState::Closed => 'C',
            BreakerState::Open => 'O',
            BreakerState::HalfOpen => 'H',
        }
    }

    fn from_letter(c: char) -> Option<BreakerState> {
        match c {
            'C' => Some(BreakerState::Closed),
            'O' => Some(BreakerState::Open),
            'H' => Some(BreakerState::HalfOpen),
            _ => None,
        }
    }
}

/// A per-shard circuit breaker: a pure, deterministic state machine over
/// full-tier unit outcomes. Bad outcomes while closed fill a sliding bit
/// window; reaching the trip threshold opens the breaker; `end_batch`
/// cooldown ticks half-open it; clean probes close it (a bad probe snaps it
/// back open). Routed-tier outcomes never feed the window — a shard serving
/// at the floor cannot poison its own recovery signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    window: usize,
    trip_threshold: usize,
    cooldown_batches: usize,
    close_after: usize,
    state: BreakerState,
    bits: u64,
    len: usize,
    cooldown_left: usize,
    probe_successes: usize,
    history: Vec<BreakerState>,
}

impl CircuitBreaker {
    /// A closed breaker with the given thresholds (window clamped to
    /// `1..=64`, thresholds to at least 1).
    pub fn new(config: &BreakerConfig) -> Self {
        CircuitBreaker {
            window: config.window.clamp(1, 64),
            trip_threshold: config.trip_threshold.max(1),
            cooldown_batches: config.cooldown_batches.max(1),
            close_after: config.close_after.max(1),
            state: BreakerState::Closed,
            bits: 0,
            len: 0,
            cooldown_left: 0,
            probe_successes: 0,
            history: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Bad outcomes currently in the window.
    pub fn bad_in_window(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Every state transition so far, oldest first (the initial `Closed`
    /// is implicit and not recorded).
    pub fn history(&self) -> &[BreakerState] {
        &self.history
    }

    /// The transition history as journal letters (`"OHC..."`, empty when
    /// the breaker never tripped).
    pub fn history_letters(&self) -> String {
        self.history.iter().map(|s| s.letter()).collect()
    }

    /// Times the breaker opened (including re-opens from a bad probe).
    pub fn opens(&self) -> usize {
        self.history
            .iter()
            .filter(|&&s| s == BreakerState::Open)
            .count()
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.cooldown_left = self.cooldown_batches;
        self.probe_successes = 0;
        self.history.push(BreakerState::Open);
    }

    /// Feeds one full-tier outcome while closed (no-op in any other state).
    pub fn record(&mut self, bad: bool) {
        if self.state != BreakerState::Closed {
            return;
        }
        let mask = if self.window == 64 {
            u64::MAX
        } else {
            (1u64 << self.window) - 1
        };
        self.bits = ((self.bits << 1) | u64::from(bad)) & mask;
        self.len = (self.len + 1).min(self.window);
        if self.bad_in_window() >= self.trip_threshold {
            self.trip();
        }
    }

    /// Feeds one probe outcome while half-open (no-op in any other state):
    /// a bad probe re-opens, `close_after` clean probes close the breaker
    /// and clear its window.
    pub fn record_probe(&mut self, bad: bool) {
        if self.state != BreakerState::HalfOpen {
            return;
        }
        if bad {
            self.trip();
        } else {
            self.probe_successes += 1;
            if self.probe_successes >= self.close_after {
                self.state = BreakerState::Closed;
                self.bits = 0;
                self.len = 0;
                self.probe_successes = 0;
                self.history.push(BreakerState::Closed);
            }
        }
    }

    /// Batch-boundary tick: an open breaker counts down its cooldown and
    /// half-opens when it expires.
    pub fn end_batch(&mut self) {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.state = BreakerState::HalfOpen;
                self.probe_successes = 0;
                self.history.push(BreakerState::HalfOpen);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reports and errors
// ---------------------------------------------------------------------------

/// Aggregate outcome of a fleet run, deterministic for a given
/// ([`FleetSpec`], [`FleetConfig`], context) — and byte-identical whether
/// the run was uninterrupted or killed and resumed from its journal.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRunReport {
    /// Sessions the spec asked for.
    pub sessions: usize,
    /// Sessions that completed a replay (possibly after retries).
    pub completed: usize,
    /// Sessions shed by admission control (never executed).
    pub shed: usize,
    /// Shed sessions by priority class (index = priority `0..4`).
    pub shed_by_priority: [usize; 4],
    /// Quarantined sessions (executed, persistently failing), in unit
    /// order; each carries the [`DegradationLevel`] it was routed at.
    pub failures: Vec<UnitFailure>,
    /// Retry attempts beyond each unit's first try.
    pub retries: usize,
    /// Driver steps taken.
    pub steps: u64,
    /// Batches executed (== journal records written).
    pub batches: usize,
    /// Peak admission-queue length after shedding (bounded by
    /// `queue_capacity`).
    pub peak_queue: usize,
    /// QoS violations summed over completed replays (unit order).
    pub violations: usize,
    /// Events replayed by completed units.
    pub events: usize,
    /// Total energy of completed replays in microjoules, folded in unit
    /// order (compare via [`FleetRunReport::energy_bits`]).
    pub energy_uj: f64,
    /// Degradation ladder summed over completed replays.
    pub degradation: DegradationTrace,
    /// Fault injections summed over completed replays.
    pub injections: FaultCounts,
    /// Watchdog deadline trips summed over completed replays.
    pub watchdog_trips: usize,
    /// Per-shard breaker transition histories as journal letters.
    pub breaker_histories: Vec<String>,
    /// Per-shard final breaker states.
    pub breaker_finals: Vec<BreakerState>,
    /// Histogram (by [`EventType::class_index`]) of the opening events the
    /// packed plane predicted for completed units — one batched
    /// `predict_many` pass per drain when
    /// [`FleetConfig::packed_prediction`] is on; all zeros otherwise.
    pub predicted_openings: [usize; EVENT_CLASSES],
    /// Units admitted to the full proactive tier, by the [`SolveEntry`]
    /// they entered the optimizer at (`[exact, anytime, greedy]`). Probes
    /// count as exact; with routing off every full-tier unit is exact.
    pub routed_entries: [usize; 3],
    /// Branch-and-bound nodes expanded over completed replays.
    pub solver_nodes: usize,
    /// Per-replay memo-ring hits summed over completed replays.
    pub memo_hits: usize,
    /// Per-replay memo-ring misses summed over completed replays —
    /// identical with the shared memo on or off (a generation hit still
    /// counts as a ring miss, mirroring the cold solve it dodged).
    pub memo_misses: usize,
    /// Ring misses answered by the shared cross-replay solve generation.
    /// All zeros when [`FleetConfig::shared_memo`] is off. **Not**
    /// resume-stable (a resumed run rebuilds the generation cold), so this
    /// is report-only and never journaled.
    pub shared_hits: usize,
    /// Ring misses that probed the shared generation (hit or not).
    /// Report-only, like [`FleetRunReport::shared_hits`].
    pub shared_lookups: usize,
}

impl FleetRunReport {
    /// The exact bit pattern of the energy aggregate — the byte-identity
    /// handle the resume tests compare.
    pub fn energy_bits(&self) -> u64 {
        self.energy_uj.to_bits()
    }

    /// Fraction of requested sessions that were quarantined.
    pub fn quarantine_rate(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.failures.len() as f64 / self.sessions as f64
        }
    }

    /// Times any shard breaker opened.
    pub fn breaker_opens(&self) -> usize {
        self.breaker_histories
            .iter()
            .map(|h| h.chars().filter(|&c| c == 'O').count())
            .sum()
    }

    /// Whether every admitted session completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// Per-replay memo-ring hit rate over all optimizer invocations.
    pub fn memo_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            self.memo_hits as f64 / total as f64
        }
    }

    /// Cross-replay hit rate: the fraction of optimizer invocations
    /// answered by *any* cache — the per-replay ring or the shared
    /// generation. With the shared memo off this equals
    /// [`FleetRunReport::memo_hit_rate`].
    pub fn combined_hit_rate(&self) -> f64 {
        let total = self.memo_hits + self.memo_misses;
        if total == 0 {
            0.0
        } else {
            (self.memo_hits + self.shared_hits) as f64 / total as f64
        }
    }

    /// Fraction of shared-generation probes that hit.
    pub fn shared_hit_rate(&self) -> f64 {
        if self.shared_lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / self.shared_lookups as f64
        }
    }
}

/// Errors of the journaled fleet paths: journal IO, corrupt records, or a
/// journal that does not match the spec/config it is resumed under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// Reading or writing the journal failed.
    Io(String),
    /// A journal record failed to parse or checksum (beyond a torn tail).
    Corrupt(String),
    /// The journal's admission cursor disagrees with the spec/config it is
    /// being resumed under.
    SpecMismatch(String),
    /// A record carries a journal-format magic this build does not read
    /// (e.g. a journal written by a newer build). Distinct from
    /// [`FleetError::Corrupt`] so the reader never mistakes a healthy
    /// future-format journal for a torn tail and silently restarts over
    /// it.
    JournalVersion {
        /// The magic found on the record.
        found: String,
        /// The magics this build reads, newest first.
        supported: String,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Io(msg) => write!(f, "fleet journal IO error: {msg}"),
            FleetError::Corrupt(msg) => write!(f, "fleet journal corrupt: {msg}"),
            FleetError::SpecMismatch(msg) => write!(f, "fleet journal mismatch: {msg}"),
            FleetError::JournalVersion { found, supported } => write!(
                f,
                "fleet journal version {found:?} unsupported (this build reads {supported})"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

impl From<std::io::Error> for FleetError {
    fn from(e: std::io::Error) -> Self {
        FleetError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Driver internals
// ---------------------------------------------------------------------------

/// How an admitted unit was routed for its batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitRoute {
    /// Full proactive tier at the given optimizer entry (exact unless the
    /// cost router classified the shard hotter); outcome feeds the shard
    /// window.
    Full(SolveEntry),
    /// Full tier (exact entry) as a half-open probe; outcome feeds the
    /// probe counter.
    Probe,
    /// Forced to a reactive tier by an open breaker; outcome is ignored by
    /// the breaker.
    Routed(RoutedTier),
}

#[derive(Debug, Clone, Copy)]
struct Ticket {
    unit: usize,
    route: UnitRoute,
}

/// The compact per-unit summary kept after a replay (the full `RunReport`,
/// with its per-event vectors, is dropped inside the worker — that is what
/// keeps fleet memory bounded by the batch size).
#[derive(Debug, Clone, PartialEq)]
struct UnitOutcome {
    events: usize,
    violations: usize,
    energy_uj: f64,
    degradation: DegradationTrace,
    injections: FaultCounts,
    watchdog_trips: usize,
    final_tier: DegradationLevel,
    solver_nodes: usize,
    memo_hits: usize,
    memo_misses: usize,
    /// Ring misses answered by the shared generation (report-only; see
    /// [`FleetRunReport::shared_hits`]).
    shared_hits: usize,
    /// Ring misses that probed the shared generation.
    shared_lookups: usize,
    /// The opening event the batch drain's `predict_many` pass predicted
    /// for this unit (`None` when the packed plane is off).
    predicted_opening: Option<EventType>,
}

impl UnitOutcome {
    fn from_report(report: &RunReport) -> Self {
        UnitOutcome {
            events: report.events,
            violations: report.violations,
            energy_uj: report.total_energy.as_microjoules(),
            degradation: report.degradation,
            injections: report.fault_injections,
            watchdog_trips: report.watchdog_trips,
            final_tier: report.final_tier,
            solver_nodes: report.solver_nodes,
            memo_hits: report.solver_cache_hits,
            memo_misses: report.solver_cache_misses,
            shared_hits: 0,
            shared_lookups: 0,
            predicted_opening: None,
        }
    }

    fn clean() -> Self {
        UnitOutcome {
            events: 0,
            violations: 0,
            energy_uj: 0.0,
            degradation: DegradationTrace::default(),
            injections: FaultCounts::default(),
            watchdog_trips: 0,
            final_tier: DegradationLevel::Exact,
            solver_nodes: 0,
            memo_hits: 0,
            memo_misses: 0,
            shared_hits: 0,
            shared_lookups: 0,
            predicted_opening: None,
        }
    }
}

/// The flat node cost a watchdog trip adds to a unit's routing sample: a
/// trip means the replay blew its deadline budget, so the router treats it
/// like an extra anytime-cap's worth of expansion even when the demoted
/// tiers kept the raw node count low.
const WATCHDOG_TRIP_COST_NODES: u64 = 4_096;

/// The cost sample one completed full-tier outcome feeds the shard's EMA:
/// nodes expanded plus a flat penalty per watchdog trip, discounted by the
/// replay's memo hit rate in x256 fixed point (a well-cached shard is
/// cheaper to serve exactly than its raw node count suggests).
fn cost_sample(outcome: &UnitOutcome) -> u64 {
    let base =
        outcome.solver_nodes as u64 + WATCHDOG_TRIP_COST_NODES * outcome.watchdog_trips as u64;
    let probes = (outcome.memo_hits + outcome.memo_misses) as u64;
    if probes == 0 {
        return base;
    }
    let hit_fp = 256 * outcome.memo_hits as u64 / probes;
    base * (256 - hit_fp) / 256
}

/// One EMA step: `ema += (sample - ema) >> shift`, in the
/// subtraction-free integer form that never underflows.
fn ema_update(ema: u64, sample: u64, shift: u32) -> u64 {
    let shift = shift.min(63);
    ema - (ema >> shift) + (sample >> shift)
}

/// The [`DegradationLevel`] an open breaker's routed tier maps to.
fn forced_level(tier: RoutedTier) -> DegradationLevel {
    match tier {
        RoutedTier::Reactive => DegradationLevel::Reactive,
        RoutedTier::OndemandFloor => DegradationLevel::OndemandFloor,
    }
}

/// The tier a route entered the engine at — attached to quarantine records
/// so failures say how degraded the unit already was when it still failed.
fn route_level(route: UnitRoute) -> DegradationLevel {
    match route {
        UnitRoute::Full(SolveEntry::Exact) | UnitRoute::Probe => DegradationLevel::Exact,
        UnitRoute::Full(SolveEntry::Anytime) => DegradationLevel::Anytime,
        UnitRoute::Full(SolveEntry::Greedy) => DegradationLevel::Greedy,
        UnitRoute::Routed(tier) => forced_level(tier),
    }
}

/// Slot of a [`SolveEntry`] in the `[exact, anytime, greedy]` histograms.
fn entry_index(entry: SolveEntry) -> usize {
    match entry {
        SolveEntry::Exact => 0,
        SolveEntry::Anytime => 1,
        SolveEntry::Greedy => 2,
    }
}

fn is_bad(outcome: Option<&UnitOutcome>, violation_spike: usize) -> bool {
    match outcome {
        None => true,
        Some(o) => {
            o.watchdog_trips > 0
                || o.degradation.ondemand_floor > 0
                || (violation_spike > 0 && o.violations >= violation_spike)
        }
    }
}

/// Sheds queue entries down to `capacity` under `policy`, folding the shed
/// units into the counters. Deterministic: `OldestFirst` pops the head,
/// `LowestPriorityFirst` removes the first (oldest) minimum-priority entry.
fn shed_to_capacity(
    queue: &mut VecDeque<(usize, u8)>,
    capacity: usize,
    policy: ShedPolicy,
    shed: &mut usize,
    shed_by_priority: &mut [usize; 4],
) {
    while queue.len() > capacity {
        let victim = match policy {
            ShedPolicy::OldestFirst => queue.pop_front(),
            ShedPolicy::LowestPriorityFirst => {
                let mut min_at = 0usize;
                for (i, &(_, p)) in queue.iter().enumerate() {
                    if p < queue[min_at].1 {
                        min_at = i;
                    }
                }
                queue.remove(min_at)
            }
        };
        if let Some((_, priority)) = victim {
            *shed += 1;
            shed_by_priority[priority as usize & 3] += 1;
        }
    }
}

/// Restored cumulative state parsed from the last intact journal record.
#[derive(Debug, Clone, PartialEq)]
struct Checkpoint {
    batches: usize,
    step: u64,
    next_unit: usize,
    shed: usize,
    completed: usize,
    retries: usize,
    violations: usize,
    events: usize,
    energy_bits: u64,
    watchdog_trips: usize,
    degradation: DegradationTrace,
    injections: FaultCounts,
    predicted_openings: [usize; EVENT_CLASSES],
    routed_entries: [usize; 3],
    solver_nodes: usize,
    memo_hits: usize,
    memo_misses: usize,
    /// Per-shard cost-routing EMAs at the checkpoint (empty when the
    /// journal predates routing; the driver then starts them at zero).
    ema: Vec<u64>,
    failures: Vec<UnitFailure>,
    breakers: Vec<CircuitBreaker>,
}

/// One streaming fleet drive. `exec` runs one admitted batch and returns
/// its supervised report; the real runner replays PES, the admission dry
/// run substitutes instant clean outcomes. All arithmetic outside `exec`
/// (arrivals, storms, shedding, admission, breaker feeding, aggregation
/// order) is identical across both, which is what lets the proptests
/// exercise the full driver loop cheaply.
fn drive<E>(
    spec: &FleetSpec,
    config: &FleetConfig,
    mut journal: Option<&mut JournalWriter>,
    checkpoint: Option<Checkpoint>,
    mut exec: E,
) -> Result<FleetRunReport, FleetError>
where
    E: FnMut(&[Ticket]) -> FleetReport<UnitOutcome>,
{
    let shards = config.shards.max(1);
    let batch_size = config.batch_size.max(1);
    let capacity = config.queue_capacity.max(1);
    let arrivals_per_step = spec.arrivals_per_step.max(1);

    let mut breakers: Vec<CircuitBreaker> = (0..shards)
        .map(|_| CircuitBreaker::new(&config.breaker))
        .collect();
    let mut cost_ema: Vec<u64> = vec![0; shards];
    let mut queue: VecDeque<(usize, u8)> = VecDeque::new();
    let mut next_unit = 0usize;
    let mut step = 0u64;
    let mut batches = 0usize;
    let mut report = FleetRunReport {
        sessions: spec.sessions,
        completed: 0,
        shed: 0,
        shed_by_priority: [0; 4],
        failures: Vec::new(),
        retries: 0,
        steps: 0,
        batches: 0,
        peak_queue: 0,
        violations: 0,
        events: 0,
        energy_uj: 0.0,
        degradation: DegradationTrace::default(),
        injections: FaultCounts::default(),
        watchdog_trips: 0,
        breaker_histories: Vec::new(),
        breaker_finals: Vec::new(),
        predicted_openings: [0; EVENT_CLASSES],
        routed_entries: [0; 3],
        solver_nodes: 0,
        memo_hits: 0,
        memo_misses: 0,
        shared_hits: 0,
        shared_lookups: 0,
    };

    // Fast-forward: replay the outcome-independent admission arithmetic for
    // the journaled batches (arrivals, storms, shedding and admission
    // depend only on the step index and queue contents, never on unit
    // outcomes), then restore the outcome-dependent cumulative state.
    let resuming = checkpoint.is_some();
    if let Some(cp) = checkpoint {
        while batches < cp.batches && (next_unit < spec.sessions || !queue.is_empty()) {
            step += 1;
            let mut arrivals = arrivals_per_step;
            if spec.storm_every > 0 && step.is_multiple_of(spec.storm_every as u64) {
                arrivals += spec.storm_arrivals;
            }
            for _ in 0..arrivals {
                if next_unit >= spec.sessions {
                    break;
                }
                let (_, _, _, priority) =
                    unit_scenario(spec.seed, 1, spec.scenario_unit(next_unit));
                queue.push_back((next_unit, priority));
                next_unit += 1;
            }
            shed_to_capacity(
                &mut queue,
                capacity,
                config.shed,
                &mut report.shed,
                &mut report.shed_by_priority,
            );
            report.peak_queue = report.peak_queue.max(queue.len());
            let take = batch_size.min(queue.len());
            queue.drain(..take);
            batches += 1;
        }
        if batches != cp.batches
            || step != cp.step
            || next_unit != cp.next_unit
            || report.shed != cp.shed
        {
            return Err(FleetError::SpecMismatch(format!(
                "fast-forward reached batch {batches} step {step} unit {next_unit} shed {}, \
                 journal says batch {} step {} unit {} shed {}",
                report.shed, cp.batches, cp.step, cp.next_unit, cp.shed
            )));
        }
        if cp.breakers.len() != shards {
            return Err(FleetError::SpecMismatch(format!(
                "journal has {} breaker shards, config has {shards}",
                cp.breakers.len()
            )));
        }
        report.completed = cp.completed;
        report.retries = cp.retries;
        report.violations = cp.violations;
        report.events = cp.events;
        report.energy_uj = f64::from_bits(cp.energy_bits);
        report.watchdog_trips = cp.watchdog_trips;
        report.degradation = cp.degradation;
        report.injections = cp.injections;
        report.predicted_openings = cp.predicted_openings;
        report.routed_entries = cp.routed_entries;
        report.solver_nodes = cp.solver_nodes;
        report.memo_hits = cp.memo_hits;
        report.memo_misses = cp.memo_misses;
        report.failures = cp.failures;
        breakers = cp.breakers;
        if !cp.ema.is_empty() {
            if cp.ema.len() != shards {
                return Err(FleetError::SpecMismatch(format!(
                    "journal has {} routing EMAs, config has {shards} shards",
                    cp.ema.len()
                )));
            }
            cost_ema = cp.ema;
        }
    }

    while next_unit < spec.sessions || !queue.is_empty() {
        step += 1;

        // 1. Arrivals (steady rate plus periodic burst storms).
        let mut arrivals = arrivals_per_step;
        if spec.storm_every > 0 && step.is_multiple_of(spec.storm_every as u64) {
            arrivals += spec.storm_arrivals;
        }
        for _ in 0..arrivals {
            if next_unit >= spec.sessions {
                break;
            }
            let (_, _, _, priority) = unit_scenario(spec.seed, 1, spec.scenario_unit(next_unit));
            queue.push_back((next_unit, priority));
            next_unit += 1;
        }

        // 2. Load shedding down to the bounded queue capacity.
        shed_to_capacity(
            &mut queue,
            capacity,
            config.shed,
            &mut report.shed,
            &mut report.shed_by_priority,
        );
        report.peak_queue = report.peak_queue.max(queue.len());

        // 3. Admission + breaker routing (half-open shards admit `probes`
        //    full-tier probe units per batch, the rest stay routed). A
        //    closed shard's units enter the optimizer at the entry tier
        //    the cost router classifies the shard at.
        let take = batch_size.min(queue.len());
        let mut probes_used = vec![0usize; shards];
        let tickets: Vec<Ticket> = queue
            .drain(..take)
            .map(|(unit, _priority)| {
                let shard = unit % shards;
                let route = match breakers[shard].state() {
                    BreakerState::Closed => {
                        UnitRoute::Full(config.cost_routing.classify(cost_ema[shard]))
                    }
                    BreakerState::Open => UnitRoute::Routed(config.breaker.open_tier),
                    BreakerState::HalfOpen => {
                        if probes_used[shard] < config.breaker.probes.max(1) {
                            probes_used[shard] += 1;
                            UnitRoute::Probe
                        } else {
                            UnitRoute::Routed(config.breaker.open_tier)
                        }
                    }
                };
                Ticket { unit, route }
            })
            .collect();
        if tickets.is_empty() {
            continue;
        }

        // 4. Supervised fan-out of the batch.
        let batch = exec(&tickets);

        // 5. Outcome classification feeds the shard breakers — and the
        //    cost router's EMAs — in unit index order (full-tier and probe
        //    outcomes only), then the batch boundary ticks every cooldown.
        for (i, ticket) in tickets.iter().enumerate() {
            let bad = is_bad(batch.results[i].as_ref(), config.violation_spike);
            let shard = ticket.unit % shards;
            let breaker = &mut breakers[shard];
            match ticket.route {
                UnitRoute::Full(entry) => {
                    breaker.record(bad);
                    report.routed_entries[entry_index(entry)] += 1;
                }
                UnitRoute::Probe => {
                    breaker.record_probe(bad);
                    report.routed_entries[entry_index(SolveEntry::Exact)] += 1;
                }
                UnitRoute::Routed(_) => {}
            }
            if config.cost_routing.enabled
                && matches!(ticket.route, UnitRoute::Full(_) | UnitRoute::Probe)
            {
                if let Some(outcome) = batch.results[i].as_ref() {
                    cost_ema[shard] = ema_update(
                        cost_ema[shard],
                        cost_sample(outcome),
                        config.cost_routing.ema_shift,
                    );
                }
            }
        }
        for breaker in &mut breakers {
            breaker.end_batch();
        }

        // 6. Aggregation in unit index order (deterministic float fold).
        for outcome in batch.results.iter().flatten() {
            report.completed += 1;
            report.violations += outcome.violations;
            report.events += outcome.events;
            report.energy_uj += outcome.energy_uj;
            report.watchdog_trips += outcome.watchdog_trips;
            report.degradation.merge(&outcome.degradation);
            report.injections.merge(&outcome.injections);
            report.solver_nodes += outcome.solver_nodes;
            report.memo_hits += outcome.memo_hits;
            report.memo_misses += outcome.memo_misses;
            report.shared_hits += outcome.shared_hits;
            report.shared_lookups += outcome.shared_lookups;
            if let Some(opening) = outcome.predicted_opening {
                report.predicted_openings[opening.class_index()] += 1;
            }
        }
        report.retries += batch.total_retries();
        for failure in &batch.failures {
            let ticket = tickets[failure.index];
            report.failures.push(UnitFailure {
                index: ticket.unit,
                attempts: failure.attempts,
                last_level: Some(route_level(ticket.route)),
                message: failure.message.clone(),
            });
        }
        batches += 1;

        // 7. Journal the cumulative record for this batch.
        if let Some(writer) = journal.as_deref_mut() {
            let record = JournalRecord {
                batches,
                step,
                next_unit,
                shed: report.shed,
                completed: report.completed,
                retries: report.retries,
                violations: report.violations,
                events: report.events,
                energy_bits: report.energy_uj.to_bits(),
                watchdog_trips: report.watchdog_trips,
                degradation: report.degradation,
                injections: report.injections,
                predicted_openings: report.predicted_openings,
                routed_entries: report.routed_entries,
                solver_nodes: report.solver_nodes,
                memo_hits: report.memo_hits,
                memo_misses: report.memo_misses,
                ema: cost_ema.clone(),
                failures: report.failures.clone(),
                breakers: breakers.clone(),
            };
            writer.append(&record)?;
        }
    }

    report.steps = step;
    report.batches = batches;
    report.peak_queue = report.peak_queue.min(capacity);
    report.breaker_histories = breakers.iter().map(|b| b.history_letters()).collect();
    report.breaker_finals = breakers.iter().map(|b| b.state()).collect();
    // A resumed empty tail (journal already covered every batch) must still
    // report the full-run step count; the fast-forward left `step` correct.
    let _ = resuming;
    Ok(report)
}

/// The real batch executor: generates each admitted session's trace from
/// its stateless seed, replays it under the route's serving tier on the
/// shared engine with a per-unit reseeded fault plane, and keeps only the
/// compact [`UnitOutcome`]. One pre-built scheduler per tier is shared by
/// every unit, so the fan-out never clones the learner per session.
struct BatchRunner<'a> {
    ctx: &'a ExperimentContext,
    spec: &'a FleetSpec,
    threads: usize,
    retries: usize,
    /// Run the batched opening-prediction pass per drain and serve every
    /// tier's prediction rounds on the packed f32 plane.
    packed: bool,
    /// Probe the shared solve generation per replay and publish the
    /// workers' shards between batches.
    shared_memo: bool,
    generation_cap: usize,
    /// The read-only cross-replay solve cache every worker of the next
    /// batch probes; republished (never mutated in place) after each
    /// batch's deterministic shard merge.
    generation: Arc<SolveGeneration>,
    full: PesScheduler,
    full_anytime: PesScheduler,
    full_greedy: PesScheduler,
    reactive: PesScheduler,
    floor: PesScheduler,
}

impl<'a> BatchRunner<'a> {
    fn new(ctx: &'a ExperimentContext, spec: &'a FleetSpec, config: &FleetConfig) -> Self {
        let base = || {
            PesConfig::paper_defaults()
                .with_watchdog(config.watchdog)
                .with_packed_prediction(config.packed_prediction)
        };
        BatchRunner {
            ctx,
            spec,
            threads: if config.threads == 0 {
                parallelism()
            } else {
                config.threads
            },
            retries: config.retries,
            packed: config.packed_prediction,
            shared_memo: config.shared_memo,
            generation_cap: config.generation_cap.max(1),
            generation: Arc::new(SolveGeneration::empty()),
            full: PesScheduler::new(ctx.learner.clone(), base()),
            full_anytime: PesScheduler::new(
                ctx.learner.clone(),
                base().with_forced_tier(DegradationLevel::Anytime),
            ),
            full_greedy: PesScheduler::new(
                ctx.learner.clone(),
                base().with_forced_tier(DegradationLevel::Greedy),
            ),
            reactive: PesScheduler::new(
                ctx.learner.clone(),
                base().with_forced_tier(DegradationLevel::Reactive),
            ),
            floor: PesScheduler::new(
                ctx.learner.clone(),
                base().with_forced_tier(DegradationLevel::OndemandFloor),
            ),
        }
    }

    /// One `predict_many` matrix pass over the whole batch's opening
    /// session states: each admitted unit contributes one lane-padded
    /// feature row and its LNES mask, and the packed plane scores them
    /// all against the resident class-major weight matrix. Deterministic
    /// and outcome-independent (it depends only on the tickets), which is
    /// what lets the journal restore the aggregate on resume.
    fn predict_openings(&self, tickets: &[Ticket]) -> Vec<Option<EventType>> {
        let packed = self.ctx.learner.packed();
        let apps = self.ctx.catalog.apps().len();
        let mut features = Vec::new();
        let mut rows: Vec<f32> = Vec::with_capacity(tickets.len() * packed.padded_dim());
        let mut masks: Vec<EventTypeSet> = Vec::with_capacity(tickets.len());
        for ticket in tickets {
            let (_, app_idx, _, _) =
                unit_scenario(self.spec.seed, apps, self.spec.scenario_unit(ticket.unit));
            let page = self.ctx.scenarios.page_ref(app_idx);
            let mut state = SessionState::new(page.tree.clone());
            state.features_into(&mut features);
            packed.pad_features_append(&features, &mut rows);
            masks.push(state.allowed_types());
        }
        let mut decisions = Vec::with_capacity(tickets.len());
        packed.predict_many(&rows, &masks, &mut decisions);
        decisions.into_iter().map(|(e, _)| Some(e)).collect()
    }

    /// Runs one admitted batch. `&mut self` only for the generation
    /// handoff: the fan-out itself borrows the runner immutably, and the
    /// merged generation is republished after the workers have joined —
    /// the batch in flight always reads the one frozen at its start.
    fn run(&mut self, tickets: &[Ticket]) -> FleetReport<UnitOutcome> {
        let apps = self.ctx.catalog.apps().len();
        let openings = if self.packed {
            self.predict_openings(tickets)
        } else {
            vec![None; tickets.len()]
        };
        let generation = Arc::clone(&self.generation);
        let raw = par_map_supervised_with(self.threads, tickets.len(), self.retries, |i| {
            let ticket = tickets[i];
            let (h, app_idx, trace_seed, _) =
                unit_scenario(self.spec.seed, apps, self.spec.scenario_unit(ticket.unit));
            let app = &self.ctx.catalog.apps()[app_idx];
            let page = self.ctx.scenarios.page_ref(app_idx);
            let mut trace = TraceGenerator::new().generate(app, page, trace_seed);
            let cap = self.spec.max_events_per_session;
            if cap > 0 && trace.len() > cap {
                trace = pes_workload::Trace::from_events(
                    app.name(),
                    trace_seed,
                    trace.events()[..cap].to_vec(),
                );
            }
            let scheduler = match ticket.route {
                UnitRoute::Full(SolveEntry::Exact) | UnitRoute::Probe => &self.full,
                UnitRoute::Full(SolveEntry::Anytime) => &self.full_anytime,
                UnitRoute::Full(SolveEntry::Greedy) => &self.full_greedy,
                UnitRoute::Routed(RoutedTier::Reactive) => &self.reactive,
                UnitRoute::Routed(RoutedTier::OndemandFloor) => &self.floor,
            };
            let faults = self.ctx.faults.reseeded(h);
            if self.shared_memo {
                let mut shard = SolveShard::new();
                let run = scheduler.run_trace_with_shared_memo(
                    &self.ctx.platform,
                    &self.ctx.power_plane,
                    page,
                    &trace,
                    &self.ctx.qos,
                    &faults,
                    &generation,
                    &mut shard,
                );
                let mut outcome = UnitOutcome::from_report(&run);
                outcome.shared_hits = shard.shared_hits();
                outcome.shared_lookups = shard.shared_lookups();
                (outcome, Some(shard))
            } else {
                let run = scheduler.run_trace_with_plane_and_faults(
                    &self.ctx.platform,
                    &self.ctx.power_plane,
                    page,
                    &trace,
                    &self.ctx.qos,
                    &faults,
                );
                (UnitOutcome::from_report(&run), None)
            }
        });
        // Strip the workers' write shards in unit index order and fold
        // them into the next batch's generation (first occurrence of a
        // key wins, so the merge is independent of worker count).
        let mut shards: Vec<SolveShard> = Vec::new();
        let mut batch = FleetReport {
            results: Vec::with_capacity(raw.results.len()),
            failures: raw.failures,
            attempts: raw.attempts,
        };
        for slot in raw.results {
            match slot {
                Some((outcome, shard)) => {
                    if let Some(shard) = shard {
                        shards.push(shard);
                    }
                    batch.results.push(Some(outcome));
                }
                None => batch.results.push(None),
            }
        }
        if shards.iter().any(|s| !s.is_empty()) {
            self.generation = Arc::new(SolveGeneration::publish(
                &self.generation,
                &shards,
                self.generation_cap,
            ));
        }
        for (slot, opening) in batch.results.iter_mut().zip(openings) {
            if let Some(outcome) = slot {
                outcome.predicted_opening = opening;
            }
        }
        batch
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// Streams `spec.sessions` generated sessions through the engine under the
/// fleet's resilience mechanisms, without a journal.
pub fn run_fleet(
    ctx: &ExperimentContext,
    spec: &FleetSpec,
    config: &FleetConfig,
) -> FleetRunReport {
    let mut runner = BatchRunner::new(ctx, spec, config);
    match drive(spec, config, None, None, |tickets| runner.run(tickets)) {
        Ok(report) => report,
        // Unreachable: the journal-free drive has no IO to fail.
        Err(e) => unreachable!("journal-free fleet drive errored: {e}"),
    }
}

/// [`run_fleet`] writing one checksummed cumulative journal record per
/// batch to `path` (truncating any previous journal there).
pub fn run_fleet_journaled(
    ctx: &ExperimentContext,
    spec: &FleetSpec,
    config: &FleetConfig,
    path: &Path,
) -> Result<FleetRunReport, FleetError> {
    let mut writer = JournalWriter::create(path)?;
    let mut runner = BatchRunner::new(ctx, spec, config);
    drive(spec, config, Some(&mut writer), None, |tickets| {
        runner.run(tickets)
    })
}

/// Resumes a killed journaled run: reads the journal at `path` (tolerating
/// a torn final line), fast-forwards the admission cursor, restores the
/// aggregates and breaker states of the last intact record, runs the
/// remaining batches and appends their records. The resulting report is
/// byte-identical to the uninterrupted run's. A missing or empty journal
/// simply runs from the start.
pub fn resume_fleet(
    ctx: &ExperimentContext,
    spec: &FleetSpec,
    config: &FleetConfig,
    path: &Path,
) -> Result<FleetRunReport, FleetError> {
    let checkpoint = read_checkpoint(path, &config.breaker)?;
    let mut writer =
        JournalWriter::open_append(path, checkpoint.as_ref().map_or(0, |c| c.batches))?;
    let mut runner = BatchRunner::new(ctx, spec, config);
    drive(spec, config, Some(&mut writer), checkpoint, |tickets| {
        runner.run(tickets)
    })
}

/// Runs the full driver loop — arrivals, storms, shedding, admission,
/// breaker routing and batch accounting — with an instant clean executor
/// instead of PES replays. The admission arithmetic is exactly the real
/// path's, so the property tests use this to show the controller always
/// terminates and never deadlocks, at any spec/config.
pub fn fleet_admission_dry_run(spec: &FleetSpec, config: &FleetConfig) -> FleetRunReport {
    let exec = |tickets: &[Ticket]| FleetReport {
        results: tickets.iter().map(|_| Some(UnitOutcome::clean())).collect(),
        failures: Vec::new(),
        attempts: vec![1; tickets.len()],
    };
    match drive(spec, config, None, None, exec) {
        Ok(report) => report,
        // Unreachable: the journal-free drive has no IO to fail.
        Err(e) => unreachable!("dry-run fleet drive errored: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Journal encoding
// ---------------------------------------------------------------------------

/// The current journal format. `J3` added the solver aggregates
/// (`nodes=`/`mh=`/`mm=`), the routed-entry histogram (`ent=`) and the
/// per-shard cost-routing EMAs (`ema=`); `J2` added the `pred=` histogram
/// of batched opening predictions. New records always encode as `J3`; the
/// parser still reads `J2` and `J1` records (their missing fields restore
/// as zeros). The shared-memo hit counters are deliberately **not**
/// journaled: a resumed run rebuilds the generation cold, so they are the
/// one aggregate that is not resume-stable.
const JOURNAL_MAGIC: &str = "PESFLEETJ3";
/// Previous format: `pred=` histogram, no solver/routing fields.
const JOURNAL_MAGIC_V2: &str = "PESFLEETJ2";
/// Original format: no `pred=` histogram either.
const JOURNAL_MAGIC_V1: &str = "PESFLEETJ1";

/// The journal-format version a record's magic announces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum JournalVersion {
    V1,
    V2,
    V3,
}

#[derive(Debug, Clone, PartialEq)]
struct JournalRecord {
    batches: usize,
    step: u64,
    next_unit: usize,
    shed: usize,
    completed: usize,
    retries: usize,
    violations: usize,
    events: usize,
    energy_bits: u64,
    watchdog_trips: usize,
    degradation: DegradationTrace,
    injections: FaultCounts,
    predicted_openings: [usize; EVENT_CLASSES],
    routed_entries: [usize; 3],
    solver_nodes: usize,
    memo_hits: usize,
    memo_misses: usize,
    ema: Vec<u64>,
    failures: Vec<UnitFailure>,
    breakers: Vec<CircuitBreaker>,
}

fn level_letter(level: DegradationLevel) -> char {
    match level {
        DegradationLevel::Exact => 'E',
        DegradationLevel::Anytime => 'A',
        DegradationLevel::Greedy => 'G',
        DegradationLevel::Reactive => 'R',
        DegradationLevel::OndemandFloor => 'F',
    }
}

fn level_from_letter(c: char) -> Option<DegradationLevel> {
    match c {
        'E' => Some(DegradationLevel::Exact),
        'A' => Some(DegradationLevel::Anytime),
        'G' => Some(DegradationLevel::Greedy),
        'R' => Some(DegradationLevel::Reactive),
        'F' => Some(DegradationLevel::OndemandFloor),
        _ => None,
    }
}

/// FNV-1a 64 over the record payload: cheap, dependency-free, and enough
/// to reject torn or bit-flipped tail lines.
fn fnv1a(payload: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in payload.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn encode_record(record: &JournalRecord) -> String {
    let deg = &record.degradation;
    let inj = &record.injections;
    let fail = if record.failures.is_empty() {
        "-".to_string()
    } else {
        record
            .failures
            .iter()
            .map(|f| {
                format!(
                    "{}:{}:{}",
                    f.index,
                    f.attempts,
                    f.last_level.map_or('E', level_letter)
                )
            })
            .collect::<Vec<_>>()
            .join(";")
    };
    let brk = record
        .breakers
        .iter()
        .map(|b| {
            let hist = b.history_letters();
            format!(
                "{}:{:x}:{}:{}:{}:{}",
                b.state.letter(),
                b.bits,
                b.len,
                b.cooldown_left,
                b.probe_successes,
                if hist.is_empty() {
                    "-".to_string()
                } else {
                    hist
                }
            )
        })
        .collect::<Vec<_>>()
        .join("|");
    let pred = record
        .predicted_openings
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let ent = record
        .routed_entries
        .iter()
        .map(|c| c.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let ema = if record.ema.is_empty() {
        "-".to_string()
    } else {
        record
            .ema
            .iter()
            .map(|e| format!("{e:x}"))
            .collect::<Vec<_>>()
            .join(",")
    };
    let payload = format!(
        "{JOURNAL_MAGIC} batch={} step={} next_unit={} shed={} completed={} retries={} \
         violations={} events={} energy={:016x} wd={} deg={},{},{},{},{} \
         inj={},{},{},{},{},{},{},{} pred={pred} nodes={} mh={} mm={} ent={ent} ema={ema} \
         fail={fail} brk={brk}",
        record.batches,
        record.step,
        record.next_unit,
        record.shed,
        record.completed,
        record.retries,
        record.violations,
        record.events,
        record.energy_bits,
        record.watchdog_trips,
        deg.exact,
        deg.anytime,
        deg.greedy,
        deg.reactive,
        deg.ondemand_floor,
        inj.prediction_flips,
        inj.confidence_corruptions,
        inj.demand_drifts,
        inj.starved_solves,
        inj.masked_configs,
        inj.delayed_vsyncs,
        inj.duplicated_events,
        inj.dropped_events,
        record.solver_nodes,
        record.memo_hits,
        record.memo_misses,
    );
    let checksum = fnv1a(&payload);
    format!("{payload} #{checksum:016x}")
}

fn kv<'a>(token: Option<&'a str>, key: &str) -> Result<&'a str, FleetError> {
    let token = token.ok_or_else(|| FleetError::Corrupt(format!("missing field {key}")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| FleetError::Corrupt(format!("expected {key}=..., got {token:?}")))
}

fn parse_usize(value: &str, key: &str) -> Result<usize, FleetError> {
    value
        .parse()
        .map_err(|_| FleetError::Corrupt(format!("bad {key} value {value:?}")))
}

fn parse_counts<const N: usize>(value: &str, key: &str) -> Result<[usize; N], FleetError> {
    let mut out = [0usize; N];
    let mut parts = value.split(',');
    for slot in &mut out {
        let part = parts
            .next()
            .ok_or_else(|| FleetError::Corrupt(format!("{key} needs {N} counts")))?;
        *slot = parse_usize(part, key)?;
    }
    if parts.next().is_some() {
        return Err(FleetError::Corrupt(format!(
            "{key} has more than {N} counts"
        )));
    }
    Ok(out)
}

/// Parses one journal line. Returns `Corrupt` for anything malformed —
/// the reader treats a corrupt *final* line as a torn tail and ignores it
/// — and `JournalVersion` (never swallowed as a torn tail) for an intact
/// record whose magic this build does not read. `J2`/`J1` records parse
/// with their missing fields restored as zeros.
fn parse_record(line: &str, breaker_config: &BreakerConfig) -> Result<JournalRecord, FleetError> {
    let (payload, checksum) = line
        .rsplit_once(" #")
        .ok_or_else(|| FleetError::Corrupt("no checksum".into()))?;
    let expected = u64::from_str_radix(checksum, 16)
        .map_err(|_| FleetError::Corrupt(format!("bad checksum field {checksum:?}")))?;
    if fnv1a(payload) != expected {
        return Err(FleetError::Corrupt("checksum mismatch".into()));
    }
    let mut tokens = payload.split_whitespace();
    let version = match tokens.next() {
        Some(JOURNAL_MAGIC) => JournalVersion::V3,
        Some(JOURNAL_MAGIC_V2) => JournalVersion::V2,
        Some(JOURNAL_MAGIC_V1) => JournalVersion::V1,
        Some(other) if other.starts_with("PESFLEETJ") => {
            return Err(FleetError::JournalVersion {
                found: other.to_string(),
                supported: format!("{JOURNAL_MAGIC}/{JOURNAL_MAGIC_V2}/{JOURNAL_MAGIC_V1}"),
            })
        }
        other => return Err(FleetError::Corrupt(format!("bad magic {other:?}"))),
    };
    let batches = parse_usize(kv(tokens.next(), "batch")?, "batch")?;
    let step = kv(tokens.next(), "step")?
        .parse::<u64>()
        .map_err(|_| FleetError::Corrupt("bad step".into()))?;
    let next_unit = parse_usize(kv(tokens.next(), "next_unit")?, "next_unit")?;
    let shed = parse_usize(kv(tokens.next(), "shed")?, "shed")?;
    let completed = parse_usize(kv(tokens.next(), "completed")?, "completed")?;
    let retries = parse_usize(kv(tokens.next(), "retries")?, "retries")?;
    let violations = parse_usize(kv(tokens.next(), "violations")?, "violations")?;
    let events = parse_usize(kv(tokens.next(), "events")?, "events")?;
    let energy_bits = u64::from_str_radix(kv(tokens.next(), "energy")?, 16)
        .map_err(|_| FleetError::Corrupt("bad energy bits".into()))?;
    let watchdog_trips = parse_usize(kv(tokens.next(), "wd")?, "wd")?;
    let [exact, anytime, greedy, reactive, ondemand_floor] =
        parse_counts::<5>(kv(tokens.next(), "deg")?, "deg")?;
    let degradation = DegradationTrace {
        exact,
        anytime,
        greedy,
        reactive,
        ondemand_floor,
    };
    let [flips, corr, drifts, starved, masked, vsyncs, dups, drops] =
        parse_counts::<8>(kv(tokens.next(), "inj")?, "inj")?;
    let injections = FaultCounts {
        prediction_flips: flips,
        confidence_corruptions: corr,
        demand_drifts: drifts,
        starved_solves: starved,
        masked_configs: masked,
        delayed_vsyncs: vsyncs,
        duplicated_events: dups,
        dropped_events: drops,
    };
    let predicted_openings = if version >= JournalVersion::V2 {
        parse_counts::<EVENT_CLASSES>(kv(tokens.next(), "pred")?, "pred")?
    } else {
        [0; EVENT_CLASSES]
    };
    let (routed_entries, solver_nodes, memo_hits, memo_misses, ema) =
        if version >= JournalVersion::V3 {
            let solver_nodes = parse_usize(kv(tokens.next(), "nodes")?, "nodes")?;
            let memo_hits = parse_usize(kv(tokens.next(), "mh")?, "mh")?;
            let memo_misses = parse_usize(kv(tokens.next(), "mm")?, "mm")?;
            let routed_entries = parse_counts::<3>(kv(tokens.next(), "ent")?, "ent")?;
            let ema_field = kv(tokens.next(), "ema")?;
            let mut ema = Vec::new();
            if ema_field != "-" {
                for part in ema_field.split(',') {
                    ema.push(
                        u64::from_str_radix(part, 16)
                            .map_err(|_| FleetError::Corrupt(format!("bad ema value {part:?}")))?,
                    );
                }
            }
            (routed_entries, solver_nodes, memo_hits, memo_misses, ema)
        } else {
            ([0; 3], 0, 0, 0, Vec::new())
        };
    let fail_field = kv(tokens.next(), "fail")?;
    let mut failures = Vec::new();
    if fail_field != "-" {
        for entry in fail_field.split(';') {
            let mut parts = entry.split(':');
            let index = parse_usize(
                parts
                    .next()
                    .ok_or_else(|| FleetError::Corrupt("empty fail entry".into()))?,
                "fail.index",
            )?;
            let attempts = parse_usize(
                parts
                    .next()
                    .ok_or_else(|| FleetError::Corrupt("fail entry missing attempts".into()))?,
                "fail.attempts",
            )?;
            let level = parts
                .next()
                .and_then(|s| s.chars().next())
                .and_then(level_from_letter)
                .ok_or_else(|| FleetError::Corrupt("fail entry missing level".into()))?;
            failures.push(UnitFailure {
                index,
                attempts,
                last_level: Some(level),
                message: "quarantined before resume (journaled)".to_string(),
            });
        }
    }
    let brk_field = kv(tokens.next(), "brk")?;
    let mut breakers = Vec::new();
    for entry in brk_field.split('|') {
        let mut parts = entry.split(':');
        let state = parts
            .next()
            .and_then(|s| s.chars().next())
            .and_then(BreakerState::from_letter)
            .ok_or_else(|| FleetError::Corrupt("bad breaker state".into()))?;
        let bits = parts
            .next()
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| FleetError::Corrupt("bad breaker window bits".into()))?;
        let len = parse_usize(
            parts
                .next()
                .ok_or_else(|| FleetError::Corrupt("breaker missing len".into()))?,
            "brk.len",
        )?;
        let cooldown_left = parse_usize(
            parts
                .next()
                .ok_or_else(|| FleetError::Corrupt("breaker missing cooldown".into()))?,
            "brk.cooldown",
        )?;
        let probe_successes = parse_usize(
            parts
                .next()
                .ok_or_else(|| FleetError::Corrupt("breaker missing probes".into()))?,
            "brk.probes",
        )?;
        let hist_field = parts
            .next()
            .ok_or_else(|| FleetError::Corrupt("breaker missing history".into()))?;
        let mut history = Vec::new();
        if hist_field != "-" {
            for c in hist_field.chars() {
                history.push(
                    BreakerState::from_letter(c)
                        .ok_or_else(|| FleetError::Corrupt(format!("bad history letter {c:?}")))?,
                );
            }
        }
        let mut breaker = CircuitBreaker::new(breaker_config);
        breaker.state = state;
        breaker.bits = bits;
        breaker.len = len;
        breaker.cooldown_left = cooldown_left;
        breaker.probe_successes = probe_successes;
        breaker.history = history;
        breakers.push(breaker);
    }
    Ok(JournalRecord {
        batches,
        step,
        next_unit,
        shed,
        completed,
        retries,
        violations,
        events,
        energy_bits,
        watchdog_trips,
        degradation,
        injections,
        predicted_openings,
        routed_entries,
        solver_nodes,
        memo_hits,
        memo_misses,
        ema,
        failures,
        breakers,
    })
}

/// Appends one encoded record per batch to the journal file, flushing
/// after every line so a kill loses at most the line being written.
#[derive(Debug)]
struct JournalWriter {
    file: std::fs::File,
    path: PathBuf,
}

impl JournalWriter {
    fn create(path: &Path) -> Result<Self, FleetError> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Opens for append after a resume, first truncating any torn tail so
    /// the file holds exactly `intact` intact records.
    fn open_append(path: &Path, intact: usize) -> Result<Self, FleetError> {
        let mut kept = String::new();
        if path.exists() {
            let reader = BufReader::new(std::fs::File::open(path)?);
            for (i, line) in reader.lines().enumerate() {
                if i >= intact {
                    break;
                }
                kept.push_str(&line?);
                kept.push('\n');
            }
        }
        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)?;
        file.write_all(kept.as_bytes())?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
        })
    }

    fn append_record(&mut self, line: &str) -> Result<(), FleetError> {
        self.file.write_all(line.as_bytes())?;
        self.file.write_all(b"\n")?;
        self.file
            .flush()
            .map_err(|e| FleetError::Io(format!("{}: {e}", self.path.display())))
    }

    fn append(&mut self, record: &JournalRecord) -> Result<(), FleetError> {
        self.append_record(&encode_record(record))
    }
}

/// Reads the journal at `path`, returning the checkpoint of the last
/// intact record. A missing or empty journal yields `None` (run from the
/// start). A torn or corrupt *final* line is tolerated and dropped; a
/// corrupt line followed by intact ones means real corruption and errors.
fn read_checkpoint(
    path: &Path,
    breaker_config: &BreakerConfig,
) -> Result<Option<Checkpoint>, FleetError> {
    if !path.exists() {
        return Ok(None);
    }
    let reader = BufReader::new(std::fs::File::open(path)?);
    let lines: Vec<String> = reader.lines().collect::<Result<_, _>>()?;
    let mut last: Option<JournalRecord> = None;
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line, breaker_config) {
            Ok(record) => last = Some(record),
            Err(FleetError::Corrupt(_)) if i + 1 == lines.len() => {
                // Torn tail from the kill: ignore, resume from the
                // previous intact record. Version errors never qualify —
                // an intact checksummed record from an unknown build must
                // surface, not be silently restarted over.
                break;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(last.map(|r| Checkpoint {
        batches: r.batches,
        step: r.step,
        next_unit: r.next_unit,
        shed: r.shed,
        completed: r.completed,
        retries: r.retries,
        violations: r.violations,
        events: r.events,
        energy_bits: r.energy_bits,
        watchdog_trips: r.watchdog_trips,
        degradation: r.degradation,
        injections: r.injections,
        predicted_openings: r.predicted_openings,
        routed_entries: r.routed_entries,
        solver_nodes: r.solver_nodes,
        memo_hits: r.memo_hits,
        memo_misses: r.memo_misses,
        ema: r.ema,
        failures: r.failures,
        breakers: r.breakers,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker_config() -> BreakerConfig {
        BreakerConfig {
            window: 8,
            trip_threshold: 3,
            cooldown_batches: 2,
            probes: 2,
            close_after: 2,
            open_tier: RoutedTier::Reactive,
        }
    }

    #[test]
    fn breaker_walks_open_half_open_closed() {
        let mut b = CircuitBreaker::new(&breaker_config());
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(true);
        b.record(false);
        b.record(true);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record(true); // third bad in window: trips
        assert_eq!(b.state(), BreakerState::Open);
        // Recording while open is inert.
        b.record(false);
        assert_eq!(b.state(), BreakerState::Open);
        b.end_batch();
        assert_eq!(b.state(), BreakerState::Open, "cooldown not yet expired");
        b.end_batch();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_probe(false);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_probe(false); // close_after = 2 clean probes
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.bad_in_window(), 0, "window cleared on close");
        assert_eq!(b.history_letters(), "OHC");
        assert_eq!(b.opens(), 1);
    }

    #[test]
    fn a_bad_probe_reopens_the_breaker() {
        let mut b = CircuitBreaker::new(&breaker_config());
        for _ in 0..3 {
            b.record(true);
        }
        b.end_batch();
        b.end_batch();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_probe(false);
        b.record_probe(true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.history_letters(), "OHO");
        // Clean probe progress was reset by the reopen.
        b.end_batch();
        b.end_batch();
        b.record_probe(false);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_probe(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn shed_policies_pick_deterministic_victims() {
        let mut queue: VecDeque<(usize, u8)> =
            VecDeque::from(vec![(0, 2), (1, 0), (2, 3), (3, 0), (4, 1)]);
        let mut shed = 0;
        let mut by_priority = [0usize; 4];
        shed_to_capacity(
            &mut queue,
            3,
            ShedPolicy::OldestFirst,
            &mut shed,
            &mut by_priority,
        );
        assert_eq!(queue, VecDeque::from(vec![(2, 3), (3, 0), (4, 1)]));
        assert_eq!((shed, by_priority), (2, [1, 0, 1, 0]));

        let mut queue: VecDeque<(usize, u8)> =
            VecDeque::from(vec![(0, 2), (1, 0), (2, 3), (3, 0), (4, 1)]);
        let mut shed = 0;
        let mut by_priority = [0usize; 4];
        shed_to_capacity(
            &mut queue,
            3,
            ShedPolicy::LowestPriorityFirst,
            &mut shed,
            &mut by_priority,
        );
        // Sheds the oldest priority-0 entries (units 1 then 3).
        assert_eq!(queue, VecDeque::from(vec![(0, 2), (2, 3), (4, 1)]));
        assert_eq!((shed, by_priority), (2, [2, 0, 0, 0]));
    }

    #[test]
    fn unit_scenario_is_stateless_and_decorrelated() {
        let (h0, app0, seed0, p0) = unit_scenario(42, 18, 0);
        let (h0b, app0b, seed0b, p0b) = unit_scenario(42, 18, 0);
        assert_eq!((h0, app0, seed0, p0), (h0b, app0b, seed0b, p0b));
        let (h1, _, seed1, _) = unit_scenario(42, 18, 1);
        assert_ne!(h0, h1);
        assert_ne!(seed0, seed1);
        assert!(p0 < 4);
    }

    #[test]
    fn journal_record_round_trips_through_encode_and_parse() {
        let mut breaker = CircuitBreaker::new(&breaker_config());
        for _ in 0..3 {
            breaker.record(true);
        }
        breaker.end_batch();
        let record = JournalRecord {
            batches: 7,
            step: 9,
            next_unit: 112,
            shed: 5,
            completed: 99,
            retries: 3,
            violations: 41,
            events: 12_345,
            energy_bits: 1.234e9f64.to_bits(),
            watchdog_trips: 6,
            degradation: DegradationTrace {
                exact: 10,
                anytime: 4,
                greedy: 3,
                reactive: 2,
                ondemand_floor: 1,
            },
            injections: FaultCounts {
                prediction_flips: 1,
                confidence_corruptions: 2,
                demand_drifts: 3,
                starved_solves: 4,
                masked_configs: 5,
                delayed_vsyncs: 6,
                duplicated_events: 7,
                dropped_events: 8,
            },
            predicted_openings: [9, 8, 7, 6, 5, 4, 3],
            routed_entries: [70, 20, 9],
            solver_nodes: 123_456,
            memo_hits: 321,
            memo_misses: 654,
            ema: vec![0x1234, 0, 0xdead_beef],
            failures: vec![UnitFailure {
                index: 17,
                attempts: 2,
                last_level: Some(DegradationLevel::Reactive),
                message: "quarantined before resume (journaled)".to_string(),
            }],
            breakers: vec![breaker, CircuitBreaker::new(&breaker_config())],
        };
        let line = encode_record(&record);
        let parsed = parse_record(&line, &breaker_config()).expect("round trip");
        assert_eq!(parsed, record);
    }

    #[test]
    fn journal_parser_rejects_tampered_lines() {
        let record = JournalRecord {
            batches: 1,
            step: 1,
            next_unit: 8,
            shed: 0,
            completed: 8,
            retries: 0,
            violations: 2,
            events: 100,
            energy_bits: 7.5f64.to_bits(),
            watchdog_trips: 0,
            degradation: DegradationTrace::default(),
            injections: FaultCounts::default(),
            predicted_openings: [0; EVENT_CLASSES],
            routed_entries: [8, 0, 0],
            solver_nodes: 999,
            memo_hits: 10,
            memo_misses: 20,
            ema: vec![0; 4],
            failures: Vec::new(),
            breakers: vec![CircuitBreaker::new(&breaker_config())],
        };
        let line = encode_record(&record);
        assert!(parse_record(&line, &breaker_config()).is_ok());
        let tampered = line.replace("violations=2", "violations=0");
        assert!(matches!(
            parse_record(&tampered, &breaker_config()),
            Err(FleetError::Corrupt(_))
        ));
        let torn = &line[..line.len() / 2];
        assert!(parse_record(torn, &breaker_config()).is_err());
    }

    #[test]
    fn dry_run_admission_terminates_and_bounds_the_queue() {
        let spec = FleetSpec {
            sessions: 1_000,
            seed: 7,
            arrivals_per_step: 9,
            storm_every: 5,
            storm_arrivals: 40,
            max_events_per_session: 0,
            scenario_cycle: 0,
        };
        let config = FleetConfig {
            batch_size: 8,
            queue_capacity: 24,
            shed: ShedPolicy::LowestPriorityFirst,
            ..FleetConfig::default()
        };
        let report = fleet_admission_dry_run(&spec, &config);
        assert_eq!(report.sessions, 1_000);
        assert_eq!(
            report.completed + report.shed,
            1_000,
            "every session is either served or deliberately shed"
        );
        assert!(report.shed > 0, "storms overflow the bounded queue");
        assert!(report.peak_queue <= config.queue_capacity);
        // Low-priority shedding sacrifices priority-0 sessions first.
        assert!(report.shed_by_priority[0] >= report.shed_by_priority[3]);
        let again = fleet_admission_dry_run(&spec, &config);
        assert_eq!(report, again, "dry run is deterministic");
    }

    #[test]
    fn dry_run_without_storms_sheds_nothing() {
        let spec = FleetSpec {
            sessions: 200,
            seed: 3,
            arrivals_per_step: 4,
            storm_every: 0,
            storm_arrivals: 0,
            max_events_per_session: 0,
            scenario_cycle: 0,
        };
        let config = FleetConfig {
            batch_size: 4,
            queue_capacity: 16,
            ..FleetConfig::default()
        };
        let report = fleet_admission_dry_run(&spec, &config);
        assert_eq!(report.completed, 200);
        assert_eq!(report.shed, 0);
        assert!(report.is_clean());
        assert_eq!(report.quarantine_rate(), 0.0);
        assert!(
            report.breaker_histories.iter().all(|h| h.is_empty()),
            "clean outcomes never trip a breaker"
        );
    }

    #[test]
    fn checkpoint_reader_tolerates_a_torn_tail_only() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pes_fleet_torn_{}.journal", std::process::id()));
        let record = |batches: usize| JournalRecord {
            batches,
            step: batches as u64,
            next_unit: batches * 8,
            shed: 0,
            completed: batches * 8,
            retries: 0,
            violations: batches,
            events: batches * 100,
            energy_bits: (batches as f64).to_bits(),
            watchdog_trips: 0,
            degradation: DegradationTrace::default(),
            injections: FaultCounts::default(),
            predicted_openings: [0; EVENT_CLASSES],
            routed_entries: [batches * 8, 0, 0],
            solver_nodes: batches * 1_000,
            memo_hits: batches * 5,
            memo_misses: batches * 7,
            ema: vec![batches as u64; 4],
            failures: Vec::new(),
            breakers: vec![CircuitBreaker::new(&breaker_config())],
        };
        let l1 = encode_record(&record(1));
        let l2 = encode_record(&record(2));
        let torn = &l2[..l2.len() - 10];
        std::fs::write(&path, format!("{l1}\n{torn}\n")).expect("write journal");
        let cp = read_checkpoint(&path, &breaker_config()).expect("torn tail tolerated");
        let cp = cp.expect("first record intact");
        assert_eq!(cp.batches, 1);
        // A corrupt line *followed by* an intact one is real corruption.
        std::fs::write(&path, format!("{torn}\n{l1}\n")).expect("write journal");
        assert!(matches!(
            read_checkpoint(&path, &breaker_config()),
            Err(FleetError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    fn checksummed(payload: &str) -> String {
        format!("{payload} #{:016x}", fnv1a(payload))
    }

    #[test]
    fn old_journal_versions_parse_with_zeroed_new_fields() {
        let energy = 7.5f64.to_bits();
        let j2 = checksummed(&format!(
            "PESFLEETJ2 batch=3 step=4 next_unit=24 shed=1 completed=23 retries=2 \
             violations=5 events=400 energy={energy:016x} wd=1 deg=20,1,1,1,0 \
             inj=0,0,0,0,0,0,0,0 pred=9,8,7,6,5,4,3 fail=- brk=C:0:0:0:0:-"
        ));
        let parsed = parse_record(&j2, &breaker_config()).expect("J2 record still parses");
        assert_eq!(parsed.batches, 3);
        assert_eq!(parsed.predicted_openings, [9, 8, 7, 6, 5, 4, 3]);
        assert_eq!(parsed.routed_entries, [0; 3]);
        assert_eq!(
            (parsed.solver_nodes, parsed.memo_hits, parsed.memo_misses),
            (0, 0, 0)
        );
        assert!(parsed.ema.is_empty(), "J2 has no routing EMAs");

        let j1 = checksummed(&format!(
            "PESFLEETJ1 batch=2 step=2 next_unit=16 shed=0 completed=16 retries=0 \
             violations=3 events=200 energy={energy:016x} wd=0 deg=16,0,0,0,0 \
             inj=0,0,0,0,0,0,0,0 fail=- brk=C:0:0:0:0:-"
        ));
        let parsed = parse_record(&j1, &breaker_config()).expect("J1 record still parses");
        assert_eq!(parsed.batches, 2);
        assert_eq!(parsed.predicted_openings, [0; EVENT_CLASSES]);
        assert_eq!(parsed.routed_entries, [0; 3]);
        assert!(parsed.ema.is_empty());
    }

    #[test]
    fn unknown_journal_magic_is_a_version_error_not_a_torn_tail() {
        let record = JournalRecord {
            batches: 1,
            step: 1,
            next_unit: 8,
            shed: 0,
            completed: 8,
            retries: 0,
            violations: 0,
            events: 80,
            energy_bits: 1.0f64.to_bits(),
            watchdog_trips: 0,
            degradation: DegradationTrace::default(),
            injections: FaultCounts::default(),
            predicted_openings: [0; EVENT_CLASSES],
            routed_entries: [8, 0, 0],
            solver_nodes: 100,
            memo_hits: 1,
            memo_misses: 2,
            ema: vec![0; 4],
            failures: Vec::new(),
            breakers: vec![CircuitBreaker::new(&breaker_config())],
        };
        let line = encode_record(&record);
        let (payload, _) = line.rsplit_once(" #").expect("checksummed");
        let future = checksummed(&payload.replace("PESFLEETJ3", "PESFLEETJ9"));
        match parse_record(&future, &breaker_config()) {
            Err(FleetError::JournalVersion { found, supported }) => {
                assert_eq!(found, "PESFLEETJ9");
                assert!(supported.contains("PESFLEETJ3"));
                assert!(supported.contains("PESFLEETJ1"));
            }
            other => panic!("expected JournalVersion error, got {other:?}"),
        }
        // Even as the *final* line a version error surfaces — the reader
        // must never mistake a healthy future-format journal for a torn
        // tail and silently restart over it.
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pes_fleet_future_{}.journal", std::process::id()));
        std::fs::write(&path, format!("{future}\n")).expect("write journal");
        assert!(matches!(
            read_checkpoint(&path, &breaker_config()),
            Err(FleetError::JournalVersion { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cost_router_classifies_by_thresholds_and_ema_converges() {
        let routing = CostRouteConfig {
            enabled: true,
            ema_shift: 2,
            hot_nodes: 20_000,
            cold_nodes: 2_000,
        };
        assert_eq!(routing.classify(0), SolveEntry::Exact);
        assert_eq!(routing.classify(2_000), SolveEntry::Exact);
        assert_eq!(routing.classify(2_001), SolveEntry::Anytime);
        assert_eq!(routing.classify(19_999), SolveEntry::Anytime);
        assert_eq!(routing.classify(20_000), SolveEntry::Greedy);
        let disabled = CostRouteConfig::default();
        assert_eq!(disabled.classify(u64::MAX), SolveEntry::Exact);

        // A constant sample stream converges the EMA onto the sample.
        let mut ema = 0u64;
        for _ in 0..64 {
            ema = ema_update(ema, 40_000, 2);
        }
        assert!(
            (39_000..=40_000).contains(&ema),
            "EMA should converge near the sample: {ema}"
        );

        // The memo discount: a fully-cached replay costs nothing.
        let mut outcome = UnitOutcome::clean();
        outcome.solver_nodes = 10_000;
        outcome.memo_hits = 50;
        outcome.memo_misses = 0;
        assert_eq!(cost_sample(&outcome), 0);
        outcome.memo_hits = 0;
        outcome.memo_misses = 50;
        assert_eq!(cost_sample(&outcome), 10_000);
        outcome.watchdog_trips = 2;
        assert_eq!(cost_sample(&outcome), 10_000 + 2 * WATCHDOG_TRIP_COST_NODES);
    }
}
