//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Sec. 4 and Sec. 6). The `figures` binary in `pes-bench`
//! formats the structures returned here into the text tables recorded in
//! EXPERIMENTS.md.

use pes_acmp::units::TimeUs;
use pes_acmp::{CpuDemand, DvfsModel, Platform};
use pes_core::{OracleScheduler, PesConfig, PesScheduler};
use pes_dom::EventType;
use pes_predictor::{evaluate_accuracy, EventSequenceLearner, LearnerConfig, Trainer};
use pes_schedulers::{Ebs, InteractiveGovernor, OndemandGovernor};
use pes_webrt::{EventId, QosPolicy, WebEvent};
use pes_workload::{AppCatalog, Trace, TraceGenerator, EVAL_SEED_BASE};

use crate::classify::{classify_events, distribution, ClassDistribution};
use crate::reactive::run_reactive;

/// Shared state for all experiments: the platform, the QoS policy, the
/// application catalog and the (once-)trained predictor.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The hardware platform (Exynos 5410 by default).
    pub platform: Platform,
    /// The QoS policy (paper defaults).
    pub qos: QosPolicy,
    /// The application catalog (12 seen + 6 unseen apps).
    pub catalog: AppCatalog,
    /// The trained event-sequence learner.
    pub learner: EventSequenceLearner,
    /// Evaluation traces generated per application.
    pub traces_per_app: usize,
}

impl ExperimentContext {
    /// Builds the default experiment context: Exynos 5410, paper QoS targets,
    /// the 18-app suite, and a predictor trained with the default protocol.
    /// `traces_per_app` controls evaluation cost (the paper uses 3).
    pub fn new(traces_per_app: usize) -> Self {
        let catalog = AppCatalog::paper_suite();
        let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
        ExperimentContext {
            platform: Platform::exynos_5410(),
            qos: QosPolicy::paper_defaults(),
            catalog,
            learner,
            traces_per_app: traces_per_app.max(1),
        }
    }

    /// Switches the hardware model to the NVIDIA TX2 (Sec. 6.5 "other
    /// devices").
    pub fn on_tx2(mut self) -> Self {
        self.platform = Platform::tx2_parker();
        self
    }

    fn eval_traces(&self, app: &pes_workload::AppProfile) -> (pes_dom::BuiltPage, Vec<Trace>) {
        let page = app.build_page();
        let traces =
            TraceGenerator::new().generate_many(app, &page, EVAL_SEED_BASE, self.traces_per_app);
        (page, traces)
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — representative four-event case study
// ---------------------------------------------------------------------------

/// One scheduled event in the Fig. 2 style timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Event label (E1..E4).
    pub label: String,
    /// When the input was triggered.
    pub triggered_at: TimeUs,
    /// When execution started.
    pub started_at: TimeUs,
    /// When the frame was displayed.
    pub displayed_at: TimeUs,
    /// The event's deadline.
    pub deadline: TimeUs,
    /// Whether the QoS target was violated.
    pub violated: bool,
}

/// The Fig. 2 case study: the same four-event sequence under the OS governor,
/// EBS and the Oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// Per-policy timelines, keyed by policy name.
    pub timelines: Vec<(String, Vec<TimelineEntry>)>,
    /// Per-policy total energy in millijoules.
    pub energy_mj: Vec<(String, f64)>,
}

/// Builds the cnn.com-like four-event interaction snapshot of Fig. 2: a load
/// with slack, a heavy tap, a tap that suffers interference, and a move.
pub fn fig2_trace() -> Trace {
    use pes_acmp::units::CpuCycles;
    let demand = |mem_ms: u64, mcycles: u64| {
        CpuDemand::new(TimeUs::from_millis(mem_ms), CpuCycles::new(mcycles * 1_000_000))
    };
    let events = vec![
        // E1: page load, plenty of slack under its 3 s target.
        WebEvent::new(EventId::new(0), EventType::Load, None, TimeUs::ZERO, demand(200, 2_000)),
        // E2: heavy tap triggered while E1's slack is still being enjoyed.
        WebEvent::new(
            EventId::new(1),
            EventType::Click,
            None,
            TimeUs::from_millis(2_600),
            demand(15, 1_400),
        ),
        // E3: a tap that only misses because E2 interferes with it.
        WebEvent::new(
            EventId::new(2),
            EventType::Click,
            None,
            TimeUs::from_millis(3_000),
            demand(10, 400),
        ),
        // E4: a light move event delayed behind E3.
        WebEvent::new(
            EventId::new(3),
            EventType::Scroll,
            None,
            TimeUs::from_millis(3_400),
            demand(2, 25),
        ),
    ];
    Trace::from_events("cnn (fig2 snapshot)", 0, events)
}

/// Runs the Fig. 2 comparison.
pub fn fig2_case_study(ctx: &ExperimentContext) -> CaseStudy {
    let trace = fig2_trace();
    let qos = ctx.qos;
    let mut timelines = Vec::new();
    let mut energy = Vec::new();

    let labels = ["E1", "E2", "E3", "E4"];
    let reactive_entry = |name: &str, report: &crate::reactive::ReactiveReport| {
        let entries = report
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| TimelineEntry {
                label: labels[i].to_string(),
                triggered_at: r.outcome.triggered_at,
                started_at: r.outcome.triggered_at + r.queue_delay,
                displayed_at: r.outcome.displayed_at,
                deadline: r.outcome.triggered_at + r.outcome.target,
                violated: r.outcome.violated(),
            })
            .collect();
        (name.to_string(), entries, report.total_energy.as_millijoules())
    };

    let os_report = run_reactive(&ctx.platform, &trace, &mut InteractiveGovernor::new(), &qos);
    let (n, t, e) = reactive_entry("OS (Interactive)", &os_report);
    timelines.push((n.clone(), t));
    energy.push((n, e));

    let ebs_report = run_reactive(&ctx.platform, &trace, &mut Ebs::new(&ctx.platform), &qos);
    let (n, t, e) = reactive_entry("EBS", &ebs_report);
    timelines.push((n.clone(), t));
    energy.push((n, e));

    // The oracle replays the same events with full knowledge. It needs a page
    // only for its session state; an empty page suffices for a hand-built
    // trace with document-level events.
    let page = pes_dom::PageBuilder::new(360).nav_bar(2).text_block(2_000).build();
    let oracle_report = OracleScheduler::new().run_trace(&ctx.platform, &page, &trace, &qos);
    let entries = oracle_report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, (_, o))| TimelineEntry {
            label: labels[i].to_string(),
            triggered_at: o.triggered_at,
            started_at: o.triggered_at,
            displayed_at: o.displayed_at,
            deadline: o.triggered_at + o.target,
            violated: o.violated(),
        })
        .collect();
    timelines.push(("Oracle".to_string(), entries));
    energy.push(("Oracle".to_string(), oracle_report.total_energy.as_millijoules()));

    CaseStudy {
        timelines,
        energy_mj: energy,
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — event-type distribution under EBS
// ---------------------------------------------------------------------------

/// Per-application event-type distribution (Fig. 3).
pub fn fig3_event_types(ctx: &ExperimentContext) -> Vec<(String, ClassDistribution)> {
    let dvfs = DvfsModel::new(&ctx.platform);
    let mut out = Vec::new();
    for app in ctx.catalog.seen_apps() {
        let (page, traces) = ctx.eval_traces(app);
        let _ = &page;
        let mut classes = Vec::new();
        for trace in &traces {
            let report = run_reactive(&ctx.platform, trace, &mut Ebs::new(&ctx.platform), &ctx.qos);
            classes.extend(classify_events(&report, trace.events(), &dvfs, &ctx.qos));
        }
        out.push((app.name().to_string(), distribution(&classes)));
    }
    out
}

// ---------------------------------------------------------------------------
// Fig. 8 — prediction accuracy; Sec. 6.5 DOM ablation
// ---------------------------------------------------------------------------

/// Per-application predictor accuracy (Fig. 8). Set `use_lnes` to `false`
/// for the Sec. 6.5 "predictor design" ablation (no DOM analysis).
pub fn fig8_accuracy(ctx: &ExperimentContext, use_lnes: bool) -> Vec<(String, bool, f64)> {
    let mut learner = ctx.learner.clone();
    learner.set_config(LearnerConfig::paper_defaults().with_lnes(use_lnes));
    let generator = TraceGenerator::new();
    ctx.catalog
        .apps()
        .iter()
        .map(|app| {
            let page = app.build_page();
            let traces =
                generator.generate_many(app, &page, EVAL_SEED_BASE, ctx.traces_per_app.max(2));
            (
                app.name().to_string(),
                app.is_seen(),
                evaluate_accuracy(&learner, &page, &traces),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 9 / Fig. 10 — PFB occupancy and misprediction waste
// ---------------------------------------------------------------------------

/// The PFB occupancy series for one application (Fig. 9 uses ebay).
pub fn fig9_pfb_trace(ctx: &ExperimentContext, app_name: &str) -> Vec<(usize, usize)> {
    let Some(app) = ctx.catalog.find(app_name) else {
        return Vec::new();
    };
    let (page, traces) = ctx.eval_traces(app);
    let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    traces
        .first()
        .map(|trace| pes.run_trace(&ctx.platform, &page, trace, &ctx.qos).pfb_trace)
        .unwrap_or_default()
}

/// Per-application average misprediction waste in milliseconds (Fig. 10),
/// plus the waste-energy fraction (the Sec. 6.3 1.8 %–2.2 % number).
pub fn fig10_waste(ctx: &ExperimentContext) -> Vec<(String, bool, f64, f64)> {
    let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    ctx.catalog
        .apps()
        .iter()
        .map(|app| {
            let (page, traces) = ctx.eval_traces(app);
            let mut waste_ms = Vec::new();
            let mut waste_fraction = Vec::new();
            for trace in &traces {
                let report = pes.run_trace(&ctx.platform, &page, trace, &ctx.qos);
                waste_ms.push(report.average_waste_ms());
                waste_fraction.push(report.waste_energy_fraction());
            }
            let avg = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
            (
                app.name().to_string(),
                app.is_seen(),
                avg(&waste_ms),
                avg(&waste_fraction),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11 / Fig. 12 / Fig. 13 — energy, QoS violation and Pareto comparison
// ---------------------------------------------------------------------------

/// Per-application comparison of all scheduling policies.
#[derive(Debug, Clone, PartialEq)]
pub struct AppComparison {
    /// Application name.
    pub app: String,
    /// Whether the app is in the seen suite.
    pub seen: bool,
    /// `(policy, energy in mJ, violation rate)` per policy.
    pub policies: Vec<(String, f64, f64)>,
}

impl AppComparison {
    /// Energy of a policy normalised to `Interactive` (Fig. 11).
    pub fn normalized_energy(&self, policy: &str) -> Option<f64> {
        let interactive = self.energy_of("Interactive")?;
        Some(self.energy_of(policy)? / interactive)
    }

    /// Absolute energy of a policy in millijoules.
    pub fn energy_of(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|(p, _, _)| p == policy)
            .map(|(_, e, _)| *e)
    }

    /// Violation rate of a policy.
    pub fn violation_of(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|(p, _, _)| p == policy)
            .map(|(_, _, v)| *v)
    }
}

/// Runs Interactive, Ondemand, EBS, PES and Oracle over every application in
/// the catalog; the result backs Fig. 11, Fig. 12 and Fig. 13.
pub fn full_comparison(ctx: &ExperimentContext) -> Vec<AppComparison> {
    full_comparison_with_config(ctx, PesConfig::paper_defaults())
}

/// Same as [`full_comparison`] but with an explicit PES configuration (used
/// by the Fig. 14 sensitivity sweep and the ablations).
pub fn full_comparison_with_config(
    ctx: &ExperimentContext,
    pes_config: PesConfig,
) -> Vec<AppComparison> {
    let pes = PesScheduler::new(ctx.learner.clone(), pes_config);
    let oracle = OracleScheduler::new();
    ctx.catalog
        .apps()
        .iter()
        .map(|app| {
            let (page, traces) = ctx.eval_traces(app);
            let mut totals: Vec<(String, f64, f64, usize)> = Vec::new();
            let mut add = |policy: &str, energy_mj: f64, violations: usize, events: usize| {
                match totals.iter_mut().find(|(p, ..)| p == policy) {
                    Some(entry) => {
                        entry.1 += energy_mj;
                        entry.2 += violations as f64;
                        entry.3 += events;
                    }
                    None => totals.push((policy.to_string(), energy_mj, violations as f64, events)),
                }
            };
            for trace in &traces {
                let interactive = run_reactive(
                    &ctx.platform,
                    trace,
                    &mut InteractiveGovernor::new(),
                    &ctx.qos,
                );
                add("Interactive", interactive.total_energy.as_millijoules(), interactive.violations(), trace.len());
                let ondemand =
                    run_reactive(&ctx.platform, trace, &mut OndemandGovernor::new(), &ctx.qos);
                add("Ondemand", ondemand.total_energy.as_millijoules(), ondemand.violations(), trace.len());
                let ebs = run_reactive(&ctx.platform, trace, &mut Ebs::new(&ctx.platform), &ctx.qos);
                add("EBS", ebs.total_energy.as_millijoules(), ebs.violations(), trace.len());
                let pes_report = pes.run_trace(&ctx.platform, &page, trace, &ctx.qos);
                add("PES", pes_report.total_energy.as_millijoules(), pes_report.violations, trace.len());
                let oracle_report = oracle.run_trace(&ctx.platform, &page, trace, &ctx.qos);
                add("Oracle", oracle_report.total_energy.as_millijoules(), oracle_report.violations, trace.len());
            }
            AppComparison {
                app: app.name().to_string(),
                seen: app.is_seen(),
                policies: totals
                    .into_iter()
                    .map(|(p, e, v, n)| (p, e, if n == 0 { 0.0 } else { v / n as f64 }))
                    .collect(),
            }
        })
        .collect()
}

/// Suite-level averages used by Fig. 13: `(policy, normalised energy,
/// violation rate)`, averaged over the seen applications.
pub fn fig13_pareto(comparisons: &[AppComparison]) -> Vec<(String, f64, f64)> {
    let policies = ["Interactive", "Ondemand", "EBS", "PES", "Oracle"];
    policies
        .iter()
        .map(|policy| {
            let seen: Vec<&AppComparison> = comparisons.iter().filter(|c| c.seen).collect();
            let energy = seen
                .iter()
                .filter_map(|c| c.normalized_energy(policy))
                .sum::<f64>()
                / seen.len().max(1) as f64;
            let violation = seen
                .iter()
                .filter_map(|c| c.violation_of(policy))
                .sum::<f64>()
                / seen.len().max(1) as f64;
            (policy.to_string(), energy, violation)
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 14 — sensitivity to the confidence threshold
// ---------------------------------------------------------------------------

/// One point of the Fig. 14 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// The confidence threshold.
    pub threshold: f64,
    /// PES energy normalised to EBS (lower is better).
    pub energy_vs_ebs: f64,
    /// Reduction of QoS violations relative to EBS (higher is better).
    pub qos_violation_reduction: f64,
}

/// Sweeps the prediction confidence threshold (Fig. 14). To bound runtime the
/// sweep uses the first `apps` seen applications.
pub fn fig14_sensitivity(
    ctx: &ExperimentContext,
    thresholds: &[f64],
    apps: usize,
) -> Vec<SensitivityPoint> {
    let subset: Vec<&pes_workload::AppProfile> = ctx.catalog.seen_apps().take(apps.max(1)).collect();
    thresholds
        .iter()
        .map(|&threshold| {
            let pes = PesScheduler::new(
                ctx.learner.clone(),
                PesConfig::paper_defaults().with_confidence_threshold(threshold),
            );
            let mut pes_energy = 0.0;
            let mut ebs_energy = 0.0;
            let mut pes_violations = 0usize;
            let mut ebs_violations = 0usize;
            for app in &subset {
                let (page, traces) = ctx.eval_traces(app);
                for trace in &traces {
                    let e = run_reactive(&ctx.platform, trace, &mut Ebs::new(&ctx.platform), &ctx.qos);
                    ebs_energy += e.total_energy.as_millijoules();
                    ebs_violations += e.violations();
                    let p = pes.run_trace(&ctx.platform, &page, trace, &ctx.qos);
                    pes_energy += p.total_energy.as_millijoules();
                    pes_violations += p.violations;
                }
            }
            SensitivityPoint {
                threshold,
                energy_vs_ebs: if ebs_energy > 0.0 { pes_energy / ebs_energy } else { 1.0 },
                qos_violation_reduction: if ebs_violations > 0 {
                    1.0 - pes_violations as f64 / ebs_violations as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ctx() -> ExperimentContext {
        let catalog = AppCatalog::paper_suite();
        let learner = Trainer::with_config(pes_predictor::TrainingConfig {
            traces_per_app: 2,
            epochs: 15,
            ..Default::default()
        })
        .train_learner(&catalog, LearnerConfig::paper_defaults());
        ExperimentContext {
            platform: Platform::exynos_5410(),
            qos: QosPolicy::paper_defaults(),
            catalog,
            learner,
            traces_per_app: 1,
        }
    }

    #[test]
    fn fig2_case_study_reproduces_the_motivation() {
        let ctx = tiny_ctx();
        let study = fig2_case_study(&ctx);
        assert_eq!(study.timelines.len(), 3);
        let violated = |name: &str| {
            study
                .timelines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.iter().filter(|e| e.violated).count())
                .unwrap()
        };
        // The reactive schedulers miss deadlines on this sequence; the Oracle
        // does not.
        assert!(violated("EBS") >= 1);
        assert_eq!(violated("Oracle"), 0);
        assert!(violated("OS (Interactive)") >= violated("Oracle"));
    }

    #[test]
    fn fig8_dom_ablation_does_not_improve_accuracy() {
        let ctx = tiny_ctx();
        let with_dom = fig8_accuracy(&ctx, true);
        let without_dom = fig8_accuracy(&ctx, false);
        let avg = |v: &[(String, bool, f64)]| {
            v.iter().map(|(_, _, a)| *a).sum::<f64>() / v.len() as f64
        };
        assert_eq!(with_dom.len(), 18);
        assert!(avg(&with_dom) + 1e-9 >= avg(&without_dom));
    }

    #[test]
    fn fig11_ordering_holds_for_a_single_app() {
        let mut ctx = tiny_ctx();
        // Restrict to one app by rebuilding a single-app catalog view: just
        // use the full catalog but a single trace; runtime stays small.
        ctx.traces_per_app = 1;
        let comparisons = full_comparison(&ctx);
        assert_eq!(comparisons.len(), 18);
        let pareto = fig13_pareto(&comparisons);
        let get = |name: &str| pareto.iter().find(|(p, _, _)| p == name).unwrap().clone();
        let (_, interactive_e, _) = get("Interactive");
        let (_, pes_e, pes_v) = get("PES");
        let (_, ebs_e, ebs_v) = get("EBS");
        let (_, oracle_e, oracle_v) = get("Oracle");
        assert!((interactive_e - 1.0).abs() < 1e-9);
        assert!(pes_e < 1.0, "PES should save energy vs Interactive: {pes_e}");
        assert!(pes_e < ebs_e, "PES should save energy vs EBS");
        assert!(oracle_e <= pes_e * 1.02, "Oracle should be at least as good");
        assert!(pes_v < ebs_v, "PES should reduce QoS violations vs EBS");
        assert!(oracle_v <= pes_v + 1e-9);
    }
}
