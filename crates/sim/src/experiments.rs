//! Experiment drivers: one function per table/figure of the paper's
//! evaluation (Sec. 4 and Sec. 6). The `figures` binary in `pes-bench`
//! formats the structures returned here into the text tables recorded in
//! EXPERIMENTS.md.
//!
//! Every session replay in the suite is deterministic and independent —
//! schedulers share no mutable state and every unit reads only immutable
//! shared artifacts — so the heavy drivers fan their
//! `(application, trace, scheduler)` tuples out over [`crate::par_map`]
//! scoped threads and fold the per-unit results back **in serial order**.
//! The output is byte-identical to the old nested `for` loops
//! (`PES_THREADS=1` forces that serial path); only the wall clock changes.
//!
//! The pages and seeded traces the units replay come from the
//! [`ScenarioCache`]: built once per context, shared via `Arc` across all
//! schedulers and worker threads, and byte-identical to regenerating them
//! per unit (enforced by `scenario_cache_matches_regenerated_artifacts` and
//! `parallel_fan_out_is_deterministic` below).

use std::sync::Arc;

use std::fmt;

use pes_acmp::units::TimeUs;
use pes_acmp::{CpuDemand, DvfsLadder, DvfsModel, Platform};
use pes_core::{
    DegradationTrace, FaultCounts, FaultPlane, OracleScheduler, PesConfig, PesScheduler,
};
use pes_dom::EventType;
use pes_predictor::{
    evaluate_accuracy, evaluate_accuracy_batched, EventSequenceLearner, LearnerConfig, Trainer,
};
use pes_schedulers::{Ebs, InteractiveGovernor, OndemandGovernor};
use pes_webrt::{EventId, QosPolicy, WebEvent};
use pes_workload::{AppCatalog, Trace};

use crate::classify::{classify_events, distribution, ClassDistribution};
use crate::parallel::{par_map, par_map_supervised, UnitFailure};
use crate::reactive::run_reactive_with_plane;
use crate::scenario::ScenarioCache;

/// Shared state for all experiments: the platform, its once-built DVFS
/// power plane, the QoS policy, the application catalog, the (once-)trained
/// predictor and the once-built scenario artifacts every driver replays.
#[derive(Debug, Clone)]
pub struct ExperimentContext {
    /// The hardware platform (Exynos 5410 by default).
    pub platform: Platform,
    /// The platform's DVFS power plane (17-rung ladder plus frozen
    /// per-configuration powers), built once and shared by every execution
    /// engine, scheduler context and energy meter the drivers spawn. Must be
    /// rebuilt whenever `platform` changes (see
    /// [`ExperimentContext::on_tx2`]).
    pub power_plane: Arc<DvfsLadder>,
    /// The QoS policy (paper defaults).
    pub qos: QosPolicy,
    /// The application catalog (12 seen + 6 unseen apps).
    pub catalog: AppCatalog,
    /// The trained event-sequence learner.
    pub learner: EventSequenceLearner,
    /// Evaluation traces used per application.
    pub traces_per_app: usize,
    /// Shared immutable pages and evaluation traces, indexed by catalog
    /// position. Holds `max(traces_per_app, 2)` traces per application (the
    /// Fig. 8 accuracy driver needs at least two).
    pub scenarios: ScenarioCache,
    /// The fault-injection plane the context's replays run under.
    /// [`FaultPlane::none`] (the default) keeps every driver bit-identical
    /// to the unfaulted suite; the chaos tier swaps in seeded schedules via
    /// [`ExperimentContext::with_faults`].
    pub faults: FaultPlane,
}

impl ExperimentContext {
    /// Builds the default experiment context: Exynos 5410, paper QoS targets,
    /// the 18-app suite, and a predictor trained with the default protocol.
    /// `traces_per_app` controls evaluation cost (the paper uses 3). The
    /// per-app training datasets are built in parallel (byte-identical to
    /// the serial protocol, see `crate::training`), so figure-suite startup
    /// no longer regenerates every training trace on one core.
    pub fn new(traces_per_app: usize) -> Self {
        let catalog = AppCatalog::paper_suite();
        let learner = crate::training::train_learner_parallel(
            &Trainer::new(),
            &catalog,
            LearnerConfig::paper_defaults(),
        );
        let traces_per_app = traces_per_app.max(1);
        let scenarios = ScenarioCache::build(&catalog, traces_per_app.max(2));
        let platform = Platform::exynos_5410();
        let power_plane = Arc::new(DvfsLadder::for_platform(&platform));
        ExperimentContext {
            platform,
            power_plane,
            qos: QosPolicy::paper_defaults(),
            catalog,
            learner,
            traces_per_app,
            scenarios,
            faults: FaultPlane::none(),
        }
    }

    /// Returns a copy replaying under the given fault-injection plane
    /// (chaos tier); [`FaultPlane::none`] restores the clean suite.
    pub fn with_faults(mut self, faults: FaultPlane) -> Self {
        self.faults = faults;
        self
    }

    /// Switches the hardware model to the NVIDIA TX2 (Sec. 6.5 "other
    /// devices"), rebuilding the power plane for it. The scenario artifacts
    /// depend only on the applications, not the platform, so they are
    /// reused as-is.
    pub fn on_tx2(mut self) -> Self {
        self.platform = Platform::tx2_parker();
        self.power_plane = Arc::new(DvfsLadder::for_platform(&self.platform));
        self
    }

    /// The catalog index of an application, by name.
    pub fn app_index(&self, name: &str) -> Option<usize> {
        self.catalog.apps().iter().position(|a| a.name() == name)
    }

    /// Replays one shared `(application, trace)` scenario under PES with
    /// `config` and returns the full [`pes_core::RunReport`] — including the
    /// solve-memoisation counters (`solver_cache_hits` / `_misses` /
    /// `_revalidations`), which is how the end-to-end tests assert the
    /// shape-keyed memo ring actually engages on realistic traces instead
    /// of assuming it.
    pub fn pes_replay(
        &self,
        app_name: &str,
        trace_idx: usize,
        config: PesConfig,
    ) -> Option<pes_core::RunReport> {
        let app_idx = self.app_index(app_name)?;
        if trace_idx >= self.scenarios.traces_per_app() {
            return None;
        }
        let pes = PesScheduler::new(self.learner.clone(), config);
        Some(pes.run_trace_with_plane_and_faults(
            &self.platform,
            &self.power_plane,
            self.scenarios.page_ref(app_idx),
            self.scenarios.trace_ref(app_idx, trace_idx),
            &self.qos,
            &self.faults,
        ))
    }
}

// ---------------------------------------------------------------------------
// Fig. 2 — representative four-event case study
// ---------------------------------------------------------------------------

/// One scheduled event in the Fig. 2 style timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEntry {
    /// Event label (E1..E4).
    pub label: String,
    /// When the input was triggered.
    pub triggered_at: TimeUs,
    /// When execution started.
    pub started_at: TimeUs,
    /// When the frame was displayed.
    pub displayed_at: TimeUs,
    /// The event's deadline.
    pub deadline: TimeUs,
    /// Whether the QoS target was violated.
    pub violated: bool,
}

/// The Fig. 2 case study: the same four-event sequence under the OS governor,
/// EBS and the Oracle.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseStudy {
    /// Per-policy timelines, keyed by policy name.
    pub timelines: Vec<(String, Vec<TimelineEntry>)>,
    /// Per-policy total energy in millijoules.
    pub energy_mj: Vec<(String, f64)>,
}

/// Builds the cnn.com-like four-event interaction snapshot of Fig. 2: a load
/// with slack, a heavy tap, a tap that suffers interference, and a move.
pub fn fig2_trace() -> Trace {
    use pes_acmp::units::CpuCycles;
    let demand = |mem_ms: u64, mcycles: u64| {
        CpuDemand::new(
            TimeUs::from_millis(mem_ms),
            CpuCycles::new(mcycles * 1_000_000),
        )
    };
    let events = vec![
        // E1: page load, plenty of slack under its 3 s target.
        WebEvent::new(
            EventId::new(0),
            EventType::Load,
            None,
            TimeUs::ZERO,
            demand(200, 2_000),
        ),
        // E2: heavy tap triggered while E1's slack is still being enjoyed.
        WebEvent::new(
            EventId::new(1),
            EventType::Click,
            None,
            TimeUs::from_millis(2_600),
            demand(15, 1_400),
        ),
        // E3: a tap that only misses because E2 interferes with it.
        WebEvent::new(
            EventId::new(2),
            EventType::Click,
            None,
            TimeUs::from_millis(3_000),
            demand(10, 400),
        ),
        // E4: a light move event delayed behind E3.
        WebEvent::new(
            EventId::new(3),
            EventType::Scroll,
            None,
            TimeUs::from_millis(3_400),
            demand(2, 25),
        ),
    ];
    Trace::from_events("cnn (fig2 snapshot)", 0, events)
}

/// Runs the Fig. 2 comparison.
pub fn fig2_case_study(ctx: &ExperimentContext) -> CaseStudy {
    let trace = fig2_trace();
    let qos = ctx.qos;
    let mut timelines = Vec::new();
    let mut energy = Vec::new();

    let labels = ["E1", "E2", "E3", "E4"];
    let reactive_entry = |name: &str, report: &crate::reactive::ReactiveReport| {
        let entries = report
            .records
            .iter()
            .enumerate()
            .map(|(i, r)| TimelineEntry {
                label: labels[i].to_string(),
                triggered_at: r.outcome.triggered_at,
                started_at: r.outcome.triggered_at + r.queue_delay,
                displayed_at: r.outcome.displayed_at,
                deadline: r.outcome.triggered_at + r.outcome.target,
                violated: r.outcome.violated(),
            })
            .collect();
        (
            name.to_string(),
            entries,
            report.total_energy.as_millijoules(),
        )
    };

    let os_report = run_reactive_with_plane(
        &ctx.platform,
        &ctx.power_plane,
        &trace,
        &mut InteractiveGovernor::new(),
        &qos,
    );
    let (n, t, e) = reactive_entry("OS (Interactive)", &os_report);
    timelines.push((n.clone(), t));
    energy.push((n, e));

    let ebs_report = run_reactive_with_plane(
        &ctx.platform,
        &ctx.power_plane,
        &trace,
        &mut Ebs::new(&ctx.platform),
        &qos,
    );
    let (n, t, e) = reactive_entry("EBS", &ebs_report);
    timelines.push((n.clone(), t));
    energy.push((n, e));

    // The oracle replays the same events with full knowledge. It needs a page
    // only for its session state; an empty page suffices for a hand-built
    // trace with document-level events.
    let page = pes_dom::PageBuilder::new(360)
        .nav_bar(2)
        .text_block(2_000)
        .build();
    let oracle_report = OracleScheduler::new().run_trace_with_plane(
        &ctx.platform,
        &ctx.power_plane,
        &page,
        &trace,
        &qos,
    );
    let entries = oracle_report
        .outcomes
        .iter()
        .enumerate()
        .map(|(i, (_, o))| TimelineEntry {
            label: labels[i].to_string(),
            triggered_at: o.triggered_at,
            started_at: o.triggered_at,
            displayed_at: o.displayed_at,
            deadline: o.triggered_at + o.target,
            violated: o.violated(),
        })
        .collect();
    timelines.push(("Oracle".to_string(), entries));
    energy.push((
        "Oracle".to_string(),
        oracle_report.total_energy.as_millijoules(),
    ));

    CaseStudy {
        timelines,
        energy_mj: energy,
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — event-type distribution under EBS
// ---------------------------------------------------------------------------

/// The catalog indices of the seen applications, in catalog order.
fn seen_indices(ctx: &ExperimentContext) -> Vec<usize> {
    ctx.catalog
        .apps()
        .iter()
        .enumerate()
        .filter(|(_, app)| app.is_seen())
        .map(|(i, _)| i)
        .collect()
}

/// Per-application event-type distribution (Fig. 3). One fan-out unit per
/// `(application, trace)` pair, each replaying its shared trace under EBS.
pub fn fig3_event_types(ctx: &ExperimentContext) -> Vec<(String, ClassDistribution)> {
    let dvfs = DvfsModel::with_ladder(&ctx.platform, Arc::clone(&ctx.power_plane));
    let seen = seen_indices(ctx);
    let traces = ctx.traces_per_app;
    let per_trace: Vec<Vec<crate::EventClass>> = par_map(seen.len() * traces, |unit| {
        let trace = ctx.scenarios.trace_ref(seen[unit / traces], unit % traces);
        let report = run_reactive_with_plane(
            &ctx.platform,
            &ctx.power_plane,
            trace,
            &mut Ebs::new(&ctx.platform),
            &ctx.qos,
        );
        classify_events(&report, trace.events(), &dvfs, &ctx.qos)
    });
    seen.iter()
        .enumerate()
        .map(|(row, &app_idx)| {
            let mut classes = Vec::new();
            for trace_classes in &per_trace[row * traces..(row + 1) * traces] {
                classes.extend(trace_classes.iter().cloned());
            }
            (
                ctx.catalog.apps()[app_idx].name().to_string(),
                distribution(&classes),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 8 — prediction accuracy; Sec. 6.5 DOM ablation
// ---------------------------------------------------------------------------

/// Per-application predictor accuracy (Fig. 8). Set `use_lnes` to `false`
/// for the Sec. 6.5 "predictor design" ablation (no DOM analysis). One
/// fan-out unit per application.
pub fn fig8_accuracy(ctx: &ExperimentContext, use_lnes: bool) -> Vec<(String, bool, f64)> {
    let mut learner = ctx.learner.clone();
    learner.set_config(LearnerConfig::paper_defaults().with_lnes(use_lnes));
    let apps = ctx.catalog.apps();
    let traces = ctx.traces_per_app.max(2);
    par_map(apps.len(), |app_idx| {
        let app = &apps[app_idx];
        (
            app.name().to_string(),
            app.is_seen(),
            evaluate_accuracy(
                &learner,
                ctx.scenarios.page_ref(app_idx),
                &ctx.scenarios.traces(app_idx)[..traces],
            ),
        )
    })
}

/// [`fig8_accuracy`] over the packed plane's one-matrix-pass
/// `predict_many`: every live trace of an application is advanced in
/// lockstep and each step scores the whole batch with a single packed
/// sweep. Decisions are bit-identical to the packed single-session path,
/// so this agrees with the scalar figure whenever the f32 re-layout
/// preserves the f64 argmax.
pub fn fig8_accuracy_batched(ctx: &ExperimentContext, use_lnes: bool) -> Vec<(String, bool, f64)> {
    let mut learner = ctx.learner.clone();
    learner.set_config(
        LearnerConfig::paper_defaults()
            .with_lnes(use_lnes)
            .with_packed(true),
    );
    let apps = ctx.catalog.apps();
    let traces = ctx.traces_per_app.max(2);
    par_map(apps.len(), |app_idx| {
        let app = &apps[app_idx];
        (
            app.name().to_string(),
            app.is_seen(),
            evaluate_accuracy_batched(
                &learner,
                ctx.scenarios.page_ref(app_idx),
                &ctx.scenarios.traces(app_idx)[..traces],
            ),
        )
    })
}

// ---------------------------------------------------------------------------
// Fig. 9 / Fig. 10 — PFB occupancy and misprediction waste
// ---------------------------------------------------------------------------

/// The PFB occupancy series for one application (Fig. 9 uses ebay).
pub fn fig9_pfb_trace(ctx: &ExperimentContext, app_name: &str) -> Vec<(usize, usize)> {
    let Some(app_idx) = ctx.app_index(app_name) else {
        return Vec::new();
    };
    let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    let page = ctx.scenarios.page_ref(app_idx);
    let trace = ctx.scenarios.trace_ref(app_idx, 0);
    pes.run_trace_with_plane(&ctx.platform, &ctx.power_plane, page, trace, &ctx.qos)
        .pfb_trace
}

/// Per-application average misprediction waste in milliseconds (Fig. 10),
/// plus the waste-energy fraction (the Sec. 6.3 1.8 %–2.2 % number). One
/// fan-out unit per `(application, trace)` pair.
pub fn fig10_waste(ctx: &ExperimentContext) -> Vec<(String, bool, f64, f64)> {
    let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    let apps = ctx.catalog.apps();
    let traces = ctx.traces_per_app;
    let per_trace: Vec<(f64, f64)> = par_map(apps.len() * traces, |unit| {
        let page = ctx.scenarios.page_ref(unit / traces);
        let trace = ctx.scenarios.trace_ref(unit / traces, unit % traces);
        let report =
            pes.run_trace_with_plane(&ctx.platform, &ctx.power_plane, page, trace, &ctx.qos);
        (report.average_waste_ms(), report.waste_energy_fraction())
    });
    let avg = |v: &[f64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    apps.iter()
        .enumerate()
        .map(|(app_idx, app)| {
            let slice = &per_trace[app_idx * traces..(app_idx + 1) * traces];
            let waste_ms: Vec<f64> = slice.iter().map(|(ms, _)| *ms).collect();
            let waste_fraction: Vec<f64> = slice.iter().map(|(_, frac)| *frac).collect();
            (
                app.name().to_string(),
                app.is_seen(),
                avg(&waste_ms),
                avg(&waste_fraction),
            )
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11 / Fig. 12 / Fig. 13 — energy, QoS violation and Pareto comparison
// ---------------------------------------------------------------------------

/// Per-application comparison of all scheduling policies.
#[derive(Debug, Clone, PartialEq)]
pub struct AppComparison {
    /// Application name.
    pub app: String,
    /// Whether the app is in the seen suite.
    pub seen: bool,
    /// `(policy, energy in mJ, violation rate)` per policy.
    pub policies: Vec<(String, f64, f64)>,
}

impl AppComparison {
    /// Energy of a policy normalised to `Interactive` (Fig. 11).
    pub fn normalized_energy(&self, policy: &str) -> Option<f64> {
        let interactive = self.energy_of("Interactive")?;
        Some(self.energy_of(policy)? / interactive)
    }

    /// Absolute energy of a policy in millijoules.
    pub fn energy_of(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|(p, _, _)| p == policy)
            .map(|(_, e, _)| *e)
    }

    /// Violation rate of a policy.
    pub fn violation_of(&self, policy: &str) -> Option<f64> {
        self.policies
            .iter()
            .find(|(p, _, _)| p == policy)
            .map(|(_, _, v)| *v)
    }
}

/// Runs Interactive, Ondemand, EBS, PES and Oracle over every application in
/// the catalog; the result backs Fig. 11, Fig. 12 and Fig. 13.
pub fn full_comparison(ctx: &ExperimentContext) -> Vec<AppComparison> {
    full_comparison_with_config(ctx, PesConfig::paper_defaults())
}

/// The policy names of the headline comparison, in presentation order.
const COMPARISON_POLICIES: [&str; 5] = ["Interactive", "Ondemand", "EBS", "PES", "Oracle"];

/// Same as [`full_comparison`] but with an explicit PES configuration (used
/// by the Fig. 14 sensitivity sweep and the ablations).
///
/// This is the heaviest driver of the suite: `18 apps × N traces × 5
/// schedulers` independent replays. It fans one unit of work per
/// `(application, trace, scheduler)` tuple over scoped threads — each unit
/// replays the shared immutable page and trace of its `(application, trace)`
/// pair from the [`ScenarioCache`], so the fan-out is deterministic — and
/// folds the per-unit `(energy, violations, events)` triples back in the
/// serial loop's order, keeping the result byte-identical to the serial
/// driver (and to the regenerate-per-unit driver this replaced; see
/// `parallel_fan_out_is_deterministic`).
pub fn full_comparison_with_config(
    ctx: &ExperimentContext,
    pes_config: PesConfig,
) -> Vec<AppComparison> {
    let pes = PesScheduler::new(ctx.learner.clone(), pes_config);
    let oracle = OracleScheduler::new();
    let apps = ctx.catalog.apps();
    let traces = ctx.traces_per_app;
    let policies = COMPARISON_POLICIES.len();
    let per_unit: Vec<(f64, usize, usize)> = par_map(apps.len() * traces * policies, |unit| {
        let app_idx = unit / (traces * policies);
        let trace_idx = (unit / policies) % traces;
        let policy = COMPARISON_POLICIES[unit % policies];
        let page = ctx.scenarios.page_ref(app_idx);
        let trace = ctx.scenarios.trace_ref(app_idx, trace_idx);
        let events = trace.len();
        match policy {
            "Interactive" => {
                let r = run_reactive_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    trace,
                    &mut InteractiveGovernor::new(),
                    &ctx.qos,
                );
                (r.total_energy.as_millijoules(), r.violations(), events)
            }
            "Ondemand" => {
                let r = run_reactive_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    trace,
                    &mut OndemandGovernor::new(),
                    &ctx.qos,
                );
                (r.total_energy.as_millijoules(), r.violations(), events)
            }
            "EBS" => {
                let r = run_reactive_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    trace,
                    &mut Ebs::new(&ctx.platform),
                    &ctx.qos,
                );
                (r.total_energy.as_millijoules(), r.violations(), events)
            }
            "PES" => {
                let r = pes.run_trace_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    page,
                    trace,
                    &ctx.qos,
                );
                (r.total_energy.as_millijoules(), r.violations, events)
            }
            _ => {
                let r = oracle.run_trace_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    page,
                    trace,
                    &ctx.qos,
                );
                (r.total_energy.as_millijoules(), r.violations, events)
            }
        }
    });
    apps.iter()
        .enumerate()
        .map(|(app_idx, app)| {
            let mut totals: Vec<(String, f64, f64, usize)> = COMPARISON_POLICIES
                .iter()
                .map(|p| (p.to_string(), 0.0, 0.0, 0))
                .collect();
            // Accumulate trace-major, policy-minor: the exact float-addition
            // order of the old serial nested loops.
            for trace_idx in 0..traces {
                for (policy_idx, entry) in totals.iter_mut().enumerate() {
                    let (energy_mj, violations, events) =
                        per_unit[(app_idx * traces + trace_idx) * policies + policy_idx];
                    entry.1 += energy_mj;
                    entry.2 += violations as f64;
                    entry.3 += events;
                }
            }
            AppComparison {
                app: app.name().to_string(),
                seen: app.is_seen(),
                policies: totals
                    .into_iter()
                    .map(|(p, e, v, n)| (p, e, if n == 0 { 0.0 } else { v / n as f64 }))
                    .collect(),
            }
        })
        .collect()
}

/// Suite-level averages used by Fig. 13: `(policy, normalised energy,
/// violation rate)`, averaged over the seen applications.
pub fn fig13_pareto(comparisons: &[AppComparison]) -> Vec<(String, f64, f64)> {
    let policies = ["Interactive", "Ondemand", "EBS", "PES", "Oracle"];
    policies
        .iter()
        .map(|policy| {
            let seen: Vec<&AppComparison> = comparisons.iter().filter(|c| c.seen).collect();
            let energy = seen
                .iter()
                .filter_map(|c| c.normalized_energy(policy))
                .sum::<f64>()
                / seen.len().max(1) as f64;
            let violation = seen
                .iter()
                .filter_map(|c| c.violation_of(policy))
                .sum::<f64>()
                / seen.len().max(1) as f64;
            (policy.to_string(), energy, violation)
        })
        .collect()
}

/// A pareto/comparison lookup named a scheduler the result set does not
/// contain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingPolicyError {
    /// The scheduler name that was looked up.
    pub policy: String,
    /// The scheduler names the result set actually holds.
    pub available: Vec<String>,
}

impl fmt::Display for MissingPolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scheduler {:?} is not in the pareto set (available: {})",
            self.policy,
            self.available.join(", ")
        )
    }
}

impl std::error::Error for MissingPolicyError {}

/// The `(policy, normalised energy, violation rate)` entry of one scheduler
/// in a [`fig13_pareto`] result.
///
/// # Errors
///
/// Returns a [`MissingPolicyError`] naming the missing scheduler (and the
/// ones present) instead of aborting the caller with a bare `unwrap`.
pub fn pareto_entry<'a>(
    pareto: &'a [(String, f64, f64)],
    policy: &str,
) -> Result<&'a (String, f64, f64), MissingPolicyError> {
    pareto
        .iter()
        .find(|(p, _, _)| p == policy)
        .ok_or_else(|| MissingPolicyError {
            policy: policy.to_string(),
            available: pareto.iter().map(|(p, _, _)| p.clone()).collect(),
        })
}

// ---------------------------------------------------------------------------
// Chaos tier — supervised fleet sweep under a fault plane
// ---------------------------------------------------------------------------

/// Aggregate outcome of a [`chaos_fleet`] sweep: fleet health plus the
/// merged degradation ladder and injection counters of every completed
/// replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosFleetReport {
    /// Fleet units attempted (`apps × traces_per_app`).
    pub units: usize,
    /// Units that completed (possibly after retries).
    pub completed: usize,
    /// Quarantined units, in index order.
    pub failures: Vec<UnitFailure>,
    /// The degradation ladder summed over completed replays.
    pub degradation: DegradationTrace,
    /// Fault injections summed over completed replays.
    pub injections: FaultCounts,
    /// QoS violations summed over completed replays.
    pub violations: usize,
    /// Events replayed by completed units.
    pub events: usize,
}

impl ChaosFleetReport {
    /// Whether every unit completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Replays every `(application, trace)` scenario under PES on the context's
/// fault plane, supervised: each unit gets a per-unit
/// [`FaultPlane::reseeded`] stream (decorrelated but reproducible), runs
/// inside `catch_unwind` with `retries` bounded retries, and persistent
/// failures are quarantined into the report instead of aborting the sweep —
/// the robustness substrate the fleet-scale replay service sits on.
pub fn chaos_fleet(ctx: &ExperimentContext, retries: usize) -> ChaosFleetReport {
    let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
    let traces = ctx.traces_per_app;
    let units = ctx.catalog.apps().len() * traces;
    let fleet = par_map_supervised(units, retries, |unit| {
        let app_idx = unit / traces;
        let trace_idx = unit % traces;
        let unit_faults = ctx.faults.reseeded(unit as u64);
        pes.run_trace_with_plane_and_faults(
            &ctx.platform,
            &ctx.power_plane,
            ctx.scenarios.page_ref(app_idx),
            ctx.scenarios.trace_ref(app_idx, trace_idx),
            &ctx.qos,
            &unit_faults,
        )
    });
    let mut report = ChaosFleetReport {
        units,
        completed: fleet.completed(),
        failures: Vec::new(),
        degradation: DegradationTrace::default(),
        injections: FaultCounts::default(),
        violations: 0,
        events: 0,
    };
    for run in fleet.results.iter().flatten() {
        report.degradation.merge(&run.degradation);
        report.injections.merge(&run.fault_injections);
        report.violations += run.violations;
        report.events += run.events;
    }
    report.failures = fleet.failures;
    report
}

// ---------------------------------------------------------------------------
// Fig. 14 — sensitivity to the confidence threshold
// ---------------------------------------------------------------------------

/// One point of the Fig. 14 sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityPoint {
    /// The confidence threshold.
    pub threshold: f64,
    /// PES energy normalised to EBS (lower is better).
    pub energy_vs_ebs: f64,
    /// Reduction of QoS violations relative to EBS (higher is better).
    pub qos_violation_reduction: f64,
}

/// Sweeps the prediction confidence threshold (Fig. 14). To bound runtime the
/// sweep uses the first `apps` seen applications. Each threshold fans one
/// unit per `(application, trace)` pair (EBS + PES replay) over scoped
/// threads and folds the sums in serial order.
pub fn fig14_sensitivity(
    ctx: &ExperimentContext,
    thresholds: &[f64],
    apps: usize,
) -> Vec<SensitivityPoint> {
    let subset: Vec<usize> = seen_indices(ctx).into_iter().take(apps.max(1)).collect();
    let traces = ctx.traces_per_app;
    thresholds
        .iter()
        .map(|&threshold| {
            let pes = PesScheduler::new(
                ctx.learner.clone(),
                PesConfig::paper_defaults().with_confidence_threshold(threshold),
            );
            let per_unit: Vec<(f64, usize, f64, usize)> = par_map(subset.len() * traces, |unit| {
                let app_idx = subset[unit / traces];
                let page = ctx.scenarios.page_ref(app_idx);
                let trace = ctx.scenarios.trace_ref(app_idx, unit % traces);
                let e = run_reactive_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    trace,
                    &mut Ebs::new(&ctx.platform),
                    &ctx.qos,
                );
                let p = pes.run_trace_with_plane(
                    &ctx.platform,
                    &ctx.power_plane,
                    page,
                    trace,
                    &ctx.qos,
                );
                (
                    e.total_energy.as_millijoules(),
                    e.violations(),
                    p.total_energy.as_millijoules(),
                    p.violations,
                )
            });
            let mut pes_energy = 0.0;
            let mut ebs_energy = 0.0;
            let mut pes_violations = 0usize;
            let mut ebs_violations = 0usize;
            for (ebs_e, ebs_v, pes_e, pes_v) in per_unit {
                ebs_energy += ebs_e;
                ebs_violations += ebs_v;
                pes_energy += pes_e;
                pes_violations += pes_v;
            }
            SensitivityPoint {
                threshold,
                energy_vs_ebs: if ebs_energy > 0.0 {
                    pes_energy / ebs_energy
                } else {
                    1.0
                },
                qos_violation_reduction: if ebs_violations > 0 {
                    1.0 - pes_violations as f64 / ebs_violations as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactive::run_reactive;
    use pes_workload::{TraceGenerator, EVAL_SEED_BASE};

    fn tiny_ctx() -> ExperimentContext {
        let catalog = AppCatalog::paper_suite();
        let learner = Trainer::with_config(pes_predictor::TrainingConfig {
            traces_per_app: 2,
            epochs: 15,
            ..Default::default()
        })
        .train_learner(&catalog, LearnerConfig::paper_defaults());
        let scenarios = ScenarioCache::build(&catalog, 2);
        let platform = Platform::exynos_5410();
        let power_plane = Arc::new(DvfsLadder::for_platform(&platform));
        ExperimentContext {
            platform,
            power_plane,
            qos: QosPolicy::paper_defaults(),
            catalog,
            learner,
            traces_per_app: 1,
            scenarios,
            faults: FaultPlane::none(),
        }
    }

    #[test]
    fn fig2_case_study_reproduces_the_motivation() {
        let ctx = tiny_ctx();
        let study = fig2_case_study(&ctx);
        assert_eq!(study.timelines.len(), 3);
        let violated = |name: &str| {
            study
                .timelines
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, t)| t.iter().filter(|e| e.violated).count())
                .unwrap()
        };
        // The reactive schedulers miss deadlines on this sequence; the Oracle
        // does not.
        assert!(violated("EBS") >= 1);
        assert_eq!(violated("Oracle"), 0);
        assert!(violated("OS (Interactive)") >= violated("Oracle"));
    }

    #[test]
    fn fig8_dom_ablation_does_not_improve_accuracy() {
        let ctx = tiny_ctx();
        let with_dom = fig8_accuracy(&ctx, true);
        let without_dom = fig8_accuracy(&ctx, false);
        let avg =
            |v: &[(String, bool, f64)]| v.iter().map(|(_, _, a)| *a).sum::<f64>() / v.len() as f64;
        assert_eq!(with_dom.len(), 18);
        assert!(avg(&with_dom) + 1e-9 >= avg(&without_dom));
    }

    /// The pre-`ScenarioCache` serial driver, kept verbatim in spirit: plain
    /// nested loops that rebuild every unit's page and trace from the seed
    /// scheme (`EVAL_SEED_BASE + trace index`) and fold trace-major,
    /// policy-minor — the reference the shared-artifact fan-out must match
    /// byte-for-byte.
    fn full_comparison_regenerate_serial(ctx: &ExperimentContext) -> Vec<AppComparison> {
        let pes = PesScheduler::new(ctx.learner.clone(), PesConfig::paper_defaults());
        let oracle = OracleScheduler::new();
        ctx.catalog
            .apps()
            .iter()
            .map(|app| {
                let mut totals: Vec<(String, f64, f64, usize)> = COMPARISON_POLICIES
                    .iter()
                    .map(|p| (p.to_string(), 0.0, 0.0, 0))
                    .collect();
                for trace_idx in 0..ctx.traces_per_app {
                    let page = app.build_page();
                    let trace = TraceGenerator::new().generate(
                        app,
                        &page,
                        EVAL_SEED_BASE + trace_idx as u64,
                    );
                    for (policy_idx, policy) in COMPARISON_POLICIES.iter().enumerate() {
                        let (energy_mj, violations) = match *policy {
                            "Interactive" => {
                                let r = run_reactive(
                                    &ctx.platform,
                                    &trace,
                                    &mut InteractiveGovernor::new(),
                                    &ctx.qos,
                                );
                                (r.total_energy.as_millijoules(), r.violations())
                            }
                            "Ondemand" => {
                                let r = run_reactive(
                                    &ctx.platform,
                                    &trace,
                                    &mut OndemandGovernor::new(),
                                    &ctx.qos,
                                );
                                (r.total_energy.as_millijoules(), r.violations())
                            }
                            "EBS" => {
                                let r = run_reactive(
                                    &ctx.platform,
                                    &trace,
                                    &mut Ebs::new(&ctx.platform),
                                    &ctx.qos,
                                );
                                (r.total_energy.as_millijoules(), r.violations())
                            }
                            "PES" => {
                                let r = pes.run_trace(&ctx.platform, &page, &trace, &ctx.qos);
                                (r.total_energy.as_millijoules(), r.violations)
                            }
                            _ => {
                                let r = oracle.run_trace(&ctx.platform, &page, &trace, &ctx.qos);
                                (r.total_energy.as_millijoules(), r.violations)
                            }
                        };
                        let entry = &mut totals[policy_idx];
                        entry.1 += energy_mj;
                        entry.2 += violations as f64;
                        entry.3 += trace.len();
                    }
                }
                AppComparison {
                    app: app.name().to_string(),
                    seen: app.is_seen(),
                    policies: totals
                        .into_iter()
                        .map(|(p, e, v, n)| (p, e, if n == 0 { 0.0 } else { v / n as f64 }))
                        .collect(),
                }
            })
            .collect()
    }

    #[test]
    fn scenario_cache_matches_regenerated_artifacts() {
        // Every page and trace the cache shares must be byte-identical to
        // rebuilding it from scratch for one unit — the invariant that makes
        // the shared-artifact fan-out equivalent to the old
        // regenerate-per-unit drivers.
        let ctx = tiny_ctx();
        for (app_idx, app) in ctx.catalog.apps().iter().enumerate() {
            let page = app.build_page();
            assert_eq!(
                *ctx.scenarios.page_ref(app_idx),
                page,
                "page of {}",
                app.name()
            );
            for trace_idx in 0..ctx.scenarios.traces_per_app() {
                let trace =
                    TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + trace_idx as u64);
                assert_eq!(
                    *ctx.scenarios.trace_ref(app_idx, trace_idx),
                    trace,
                    "trace {trace_idx} of {}",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn parallel_fan_out_is_deterministic() {
        // The fan-out must produce identical results run-to-run regardless of
        // how units interleave across worker threads, and identical to the
        // forced-serial path.
        let ctx = tiny_ctx();
        let parallel_a = full_comparison(&ctx);
        let parallel_b = full_comparison(&ctx);
        assert_eq!(
            parallel_a, parallel_b,
            "parallel driver must be deterministic"
        );
        // Force the serial path (PES_THREADS=1 short-circuits par_map into a
        // plain `(0..n).map(f)` loop) and compare byte-for-byte. Rust's std
        // synchronises environment access internally, and a concurrent test
        // observing PES_THREADS=1 merely runs serially for a moment.
        std::env::set_var("PES_THREADS", "1");
        let serial = full_comparison(&ctx);
        std::env::remove_var("PES_THREADS");
        assert_eq!(
            parallel_a, serial,
            "parallel output must match the serial driver"
        );
        // The shared-artifact fan-out must also be byte-identical to the old
        // regenerate-per-unit serial nested loops.
        let regenerated = full_comparison_regenerate_serial(&ctx);
        assert_eq!(
            parallel_a, regenerated,
            "ScenarioCache-backed driver must match the regenerate-per-unit driver"
        );
    }

    #[test]
    fn fig11_ordering_holds_for_a_single_app() {
        let mut ctx = tiny_ctx();
        // Restrict to one app by rebuilding a single-app catalog view: just
        // use the full catalog but a single trace; runtime stays small.
        ctx.traces_per_app = 1;
        let comparisons = full_comparison(&ctx);
        assert_eq!(comparisons.len(), 18);
        let pareto = fig13_pareto(&comparisons);
        let get = |name: &str| {
            pareto_entry(&pareto, name)
                .expect("comparison policy present")
                .clone()
        };
        let (_, interactive_e, _) = get("Interactive");
        let (_, pes_e, pes_v) = get("PES");
        let (_, ebs_e, ebs_v) = get("EBS");
        let (_, oracle_e, oracle_v) = get("Oracle");
        assert!((interactive_e - 1.0).abs() < 1e-9);
        assert!(
            pes_e < 1.0,
            "PES should save energy vs Interactive: {pes_e}"
        );
        assert!(pes_e < ebs_e, "PES should save energy vs EBS");
        assert!(
            oracle_e <= pes_e * 1.02,
            "Oracle should be at least as good"
        );
        assert!(pes_v < ebs_v, "PES should reduce QoS violations vs EBS");
        assert!(oracle_v <= pes_v + 1e-9);
    }

    #[test]
    fn pareto_lookup_errors_name_the_missing_scheduler() {
        let pareto = vec![
            ("PES".to_string(), 0.8, 0.01),
            ("EBS".to_string(), 0.9, 0.05),
        ];
        assert_eq!(pareto_entry(&pareto, "PES").unwrap().1, 0.8);
        let err = pareto_entry(&pareto, "Oracle").unwrap_err();
        assert_eq!(err.policy, "Oracle");
        assert_eq!(err.available, vec!["PES".to_string(), "EBS".to_string()]);
        let shown = err.to_string();
        assert!(
            shown.contains("Oracle") && shown.contains("PES, EBS"),
            "{shown}"
        );
    }

    #[test]
    fn chaos_fleet_survives_faults_and_stays_deterministic() {
        use pes_core::fault::FaultConfig;
        let ctx = tiny_ctx().with_faults(FaultPlane::new(FaultConfig {
            seed: 99,
            prediction_flip: 0.2,
            confidence_corruption: 0.1,
            demand_drift: 0.3,
            drift_magnitude: 0.6,
            solver_starvation: 0.4,
            rung_mask: 0b0000_1100,
            vsync_delay: 0.15,
            queue_duplicate: 0.05,
            queue_drop: 0.05,
        }));
        let a = chaos_fleet(&ctx, 1);
        assert!(a.is_clean(), "faulted replays degrade, they don't panic");
        assert_eq!(a.completed, a.units);
        assert!(a.injections.total() > 0, "the schedule injected faults");
        assert!(a.degradation.decisions() > 0);
        assert!(a.events > 0);
        // Reseeded per-unit streams are reproducible: the sweep is replayable.
        let b = chaos_fleet(&ctx, 1);
        assert_eq!(a, b, "chaos sweeps must be deterministic");
    }

    #[test]
    fn zero_fault_chaos_fleet_matches_the_clean_replays() {
        let ctx = tiny_ctx();
        let fleet = chaos_fleet(&ctx, 0);
        assert!(fleet.is_clean());
        assert_eq!(fleet.injections, FaultCounts::default());
        // The same scenarios replayed directly (the clean path) must agree
        // on every aggregate: FaultPlane::none() reseeded is still none().
        let mut violations = 0usize;
        let mut events = 0usize;
        for app_idx in 0..ctx.catalog.apps().len() {
            let app_name = ctx.catalog.apps()[app_idx].name().to_string();
            for trace_idx in 0..ctx.traces_per_app {
                let run = ctx
                    .pes_replay(&app_name, trace_idx, PesConfig::paper_defaults())
                    .expect("scenario exists");
                violations += run.violations;
                events += run.events;
            }
        }
        assert_eq!(fleet.violations, violations);
        assert_eq!(fleet.events, events);
    }
}
