//! Deterministic scoped-thread fan-out for the experiment drivers.
//!
//! The figure suite replays every `(application, trace, scheduler)` tuple
//! independently — hundreds of deterministic, seeded session replays with no
//! shared mutable state. [`par_map`] spreads those units over
//! `std::thread::scope` workers pulling indices from an atomic counter, then
//! reassembles the results **in index order**, so the output is byte-for-byte
//! identical to the serial loop no matter how the units interleave at
//! runtime. Setting `PES_THREADS=1` (or running on a single-core host)
//! degenerates to the plain serial path.
//!
//! [`par_map_supervised`] is the fleet-grade tier underneath: every unit runs
//! inside `catch_unwind`, panicking units are retried a bounded number of
//! times and then **quarantined** — their index is reported in the returned
//! [`FleetReport`] instead of aborting the whole fan-out. One poisoned
//! session replay must cost the fleet one result, not the suite.
//!
//! [`par_map_supervised_streaming`] is the backpressure tier on top: workers
//! push outcomes through a *bounded* channel and a sink consumes them in
//! index order, so a million-unit fleet holds `O(threads + capacity)`
//! results in memory instead of all of them — the hook the streaming fleet
//! driver (`crate::fleet`) batches through.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use pes_core::DegradationLevel;

/// Worker count: the `PES_THREADS` environment variable when set to a
/// positive integer, otherwise the host's available parallelism.
pub fn parallelism() -> usize {
    std::env::var("PES_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// One quarantined unit of a supervised fan-out: the unit index, how many
/// times it was attempted, and the panic payload of the last attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// Index of the failing unit in `0..n`.
    pub index: usize,
    /// Attempts made (`1 + retries` unless the worker thread itself died).
    pub attempts: usize,
    /// The unit's last known serving tier before it was quarantined, when
    /// the driver tracks one (the fleet driver records the tier each unit
    /// was routed at, so quarantine reports say *how degraded* the unit
    /// already was when it still failed). `None` for plain fan-outs.
    pub last_level: Option<DegradationLevel>,
    /// Stringified panic payload of the final attempt.
    pub message: String,
}

/// The outcome of a [`par_map_supervised`] fan-out: per-unit results in
/// index order (`None` where the unit was quarantined) plus the structured
/// failure list and the per-unit attempt counts.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport<T> {
    /// One slot per unit, in index order; quarantined units hold `None`.
    pub results: Vec<Option<T>>,
    /// Every quarantined unit, in index order.
    pub failures: Vec<UnitFailure>,
    /// Attempts per unit, in index order: `1` for a first-try success,
    /// `1 + k` after `k` retries, `0` when the worker thread died before
    /// reporting the unit.
    pub attempts: Vec<usize>,
}

impl<T> FleetReport<T> {
    /// Number of units that produced a result.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// Number of quarantined (persistently failing) units.
    pub fn quarantined(&self) -> usize {
        self.failures.len()
    }

    /// Fraction of units that were quarantined (`0.0` for an empty fleet).
    pub fn quarantine_rate(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.failures.len() as f64 / self.results.len() as f64
        }
    }

    /// Total retry attempts beyond each unit's first try (worker-death
    /// units, reported with zero attempts, contribute nothing).
    pub fn total_retries(&self) -> usize {
        self.attempts.iter().map(|&a| a.saturating_sub(1)).sum()
    }

    /// Whether every unit completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The completed results in index order, dropping quarantined slots.
    pub fn into_results(self) -> Vec<T> {
        self.results.into_iter().flatten().collect()
    }
}

/// One unit outcome as produced by a worker: `(index, attempts, result)`
/// with the panic payload already stringified.
type TaggedOutcome<T> = (usize, usize, Result<T, String>);

/// Runs one unit under `catch_unwind` with bounded retry, returning the
/// attempts made and either the result or the last panic payload.
fn run_supervised<T, F>(f: &F, index: usize, retries: usize) -> (usize, Result<T, String>)
where
    F: Fn(usize) -> T + Sync,
{
    let attempts = retries + 1;
    let mut last = String::new();
    for made in 1..=attempts {
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(value) => return (made, Ok(value)),
            Err(payload) => {
                last = panic_message(payload.as_ref());
            }
        }
    }
    (attempts, Err(last))
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The failure synthesized for a unit whose worker thread died (a
/// non-unwinding abort) before reporting it.
fn worker_death(index: usize) -> UnitFailure {
    UnitFailure {
        index,
        attempts: 0,
        last_level: None,
        message: "worker thread died before reporting".to_string(),
    }
}

/// Reassembles tagged worker outcomes into a [`FleetReport`] in index
/// order. Unreported indices — a worker thread died to a non-unwinding
/// abort after claiming them — are synthesized as zero-attempt failures
/// instead of poisoning the fleet. Split out of the fan-out so the
/// worker-death path is unit-testable without actually aborting a thread.
fn assemble<T>(n: usize, tagged: Vec<TaggedOutcome<T>>) -> FleetReport<T> {
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut attempts = vec![0usize; n];
    let mut failures: Vec<UnitFailure> = Vec::new();
    let mut seen = vec![false; n];
    for (index, made, outcome) in tagged {
        debug_assert!(!seen[index], "unit {index} produced twice");
        seen[index] = true;
        attempts[index] = made;
        match outcome {
            Ok(value) => slots[index] = Some(value),
            Err(message) => failures.push(UnitFailure {
                index,
                attempts: made,
                last_level: None,
                message,
            }),
        }
    }
    for (index, seen) in seen.iter().enumerate() {
        if !seen {
            failures.push(worker_death(index));
        }
    }
    // Reassembled in index order (failures too): this is what makes the
    // parallel driver byte-identical to the serial one.
    failures.sort_by_key(|failure| failure.index);
    FleetReport {
        results: slots,
        failures,
        attempts,
    }
}

/// Maps `f` over `0..n` with up to [`parallelism`] scoped threads, returning
/// results in index order. For a deterministic `f` (every experiment unit is
/// — traces are seeded per unit) the result is identical to
/// `(0..n).map(f).collect()`.
///
/// # Panics
///
/// Panics if any unit panics (the legacy all-or-nothing contract); fleets
/// that must survive failing units use [`par_map_supervised`].
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(parallelism(), n, f)
}

/// [`par_map`] with an explicit worker count (`1` forces the serial path).
///
/// # Panics
///
/// Panics if any unit panics, naming the first failing unit.
pub fn par_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let report = par_map_supervised_with(threads, n, 0, f);
    if let Some(failure) = report.failures.first() {
        panic!(
            "experiment unit {} panicked ({} quarantined of {}): {}",
            failure.index,
            report.failures.len(),
            n,
            failure.message
        );
    }
    report.into_results()
}

/// Supervised fan-out: maps `f` over `0..n` with up to [`parallelism`]
/// workers, catching per-unit panics, retrying each failing unit up to
/// `retries` more times, and quarantining units that still fail. The
/// returned [`FleetReport`] keeps results in index order (deterministic for
/// deterministic units, exactly like [`par_map`]) with `None` holes for the
/// quarantined indices.
pub fn par_map_supervised<T, F>(n: usize, retries: usize, f: F) -> FleetReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_supervised_with(parallelism(), n, retries, f)
}

/// [`par_map_supervised`] with an explicit worker count (`1` forces the
/// serial path).
pub fn par_map_supervised_with<T, F>(
    threads: usize,
    n: usize,
    retries: usize,
    f: F,
) -> FleetReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        let tagged = (0..n)
            .map(|index| {
                let (made, outcome) = run_supervised(&f, index, retries);
                (index, made, outcome)
            })
            .collect();
        return assemble(n, tagged);
    }
    // Workers pull the next unit index from a shared counter (work stealing
    // in its simplest form: unit costs are uneven, so static chunking would
    // leave threads idle) and tag each outcome with its index.
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let mut tagged: Vec<TaggedOutcome<T>> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        let (made, outcome) = run_supervised(f, index, retries);
                        out.push((index, made, outcome));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            // A worker thread can only die to a non-unwinding abort (unit
            // panics are caught above); its claimed-but-unreported units are
            // synthesized as failures by `assemble` instead of poisoning the
            // fleet.
            if let Ok(batch) = worker.join() {
                tagged.extend(batch);
            }
        }
    });
    assemble(n, tagged)
}

/// Streaming supervised fan-out with **bounded in-flight results**: maps
/// `f` over `0..n`, pushing every outcome through a bounded channel of
/// `capacity` slots, and hands them to `sink` **in index order** —
/// `Ok(value)` for completed units, `Err(failure)` for quarantined ones.
/// Workers block once `capacity` outcomes are waiting (real backpressure:
/// a slow sink throttles the fleet instead of buffering it), so peak
/// memory stays a small multiple of `threads + capacity` results
/// regardless of `n`. With
/// `threads <= 1` the fan-out degenerates to the serial loop and the sink
/// sees exactly what the serial driver produces — the same byte-identity
/// contract as [`par_map_supervised`].
pub fn par_map_supervised_streaming<T, F, S>(
    threads: usize,
    n: usize,
    retries: usize,
    capacity: usize,
    f: F,
    mut sink: S,
) where
    T: Send,
    F: Fn(usize) -> T + Sync,
    S: FnMut(usize, Result<T, UnitFailure>),
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        for index in 0..n {
            let (made, outcome) = run_supervised(&f, index, retries);
            match outcome {
                Ok(value) => sink(index, Ok(value)),
                Err(message) => sink(
                    index,
                    Err(UnitFailure {
                        index,
                        attempts: made,
                        last_level: None,
                        message,
                    }),
                ),
            }
        }
        return;
    }
    let (tx, rx) = std::sync::mpsc::sync_channel::<TaggedOutcome<T>>(capacity.max(1));
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= n {
                    break;
                }
                let (made, outcome) = run_supervised(f, index, retries);
                if tx.send((index, made, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        // The consumer runs on the caller's thread: outcomes arrive in
        // completion order and are re-sequenced through a small reorder
        // buffer (bounded by the in-flight window, not by `n`).
        let mut pending: BTreeMap<usize, (usize, Result<T, String>)> = BTreeMap::new();
        let mut expect = 0usize;
        let emit =
            |index: usize, made: usize, outcome: Result<T, String>, sink: &mut S| match outcome {
                Ok(value) => sink(index, Ok(value)),
                Err(message) => sink(
                    index,
                    Err(UnitFailure {
                        index,
                        attempts: made,
                        last_level: None,
                        message,
                    }),
                ),
            };
        for (index, made, outcome) in rx {
            pending.insert(index, (made, outcome));
            while let Some((made, outcome)) = pending.remove(&expect) {
                emit(expect, made, outcome, &mut sink);
                expect += 1;
            }
        }
        // Channel closed with holes: a worker died to a non-unwinding abort
        // after claiming an index. Flush what arrived, synthesize the rest.
        while expect < n {
            match pending.remove(&expect) {
                Some((made, outcome)) => emit(expect, made, outcome, &mut sink),
                None => sink(expect, Err(worker_death(expect))),
            }
            expect += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let serial = par_map_with(1, 100, |i| i * 3);
        let parallel = par_map_with(8, 100, |i| i * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 21);
    }

    #[test]
    fn uneven_units_still_produce_identical_results() {
        let work = |i: usize| {
            // Simulate uneven unit cost with a spin proportional to index.
            let mut acc = 0u64;
            for k in 0..(i % 13) * 1_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        };
        assert_eq!(par_map_with(1, 64, work), par_map_with(6, 64, work));
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        assert_eq!(par_map_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_with(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(parallelism() >= 1);
    }

    #[test]
    fn supervised_fan_out_quarantines_failing_units() {
        let report = par_map_supervised_with(4, 20, 0, |i| {
            if i % 7 == 3 {
                panic!("unit {i} is poisoned");
            }
            i * 2
        });
        assert_eq!(report.quarantined(), 3); // units 3, 10, 17
        assert_eq!(report.completed(), 17);
        assert!(!report.is_clean());
        assert!((report.quarantine_rate() - 3.0 / 20.0).abs() < 1e-12);
        assert_eq!(
            report.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![3, 10, 17]
        );
        assert_eq!(report.failures[0].message, "unit 3 is poisoned");
        assert_eq!(report.failures[0].last_level, None);
        assert_eq!(report.results[3], None);
        assert_eq!(report.results[4], Some(8));
        // Every unit was attempted exactly once (no retries requested).
        assert_eq!(report.attempts, vec![1; 20]);
        assert_eq!(report.total_retries(), 0);
        // Holes drop out of into_results, order preserved.
        assert_eq!(report.into_results().len(), 17);
    }

    #[test]
    fn supervised_retry_rescues_flaky_units() {
        use std::sync::atomic::AtomicUsize;
        let attempts = AtomicUsize::new(0);
        let report = par_map_supervised_with(1, 4, 2, |i| {
            if i == 2 && attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient failure");
            }
            i + 1
        });
        assert!(report.is_clean(), "two retries rescue a twice-flaky unit");
        assert_eq!(report.results, vec![Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        // The rescued unit reports its three attempts; the rest one each.
        assert_eq!(report.attempts, vec![1, 1, 3, 1]);
        assert_eq!(report.total_retries(), 2);
    }

    #[test]
    fn persistent_failures_record_their_attempt_count() {
        let report = par_map_supervised_with(2, 3, 2, |i| {
            if i == 1 {
                panic!("always fails");
            }
            i
        });
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.failures[0].attempts, 3);
        assert_eq!(report.failures[0].message, "always fails");
        assert_eq!(report.attempts[1], 3);
    }

    #[test]
    fn clean_supervised_runs_match_par_map() {
        let supervised = par_map_supervised_with(6, 64, 1, |i| i * i).into_results();
        let legacy = par_map_with(6, 64, |i| i * i);
        assert_eq!(supervised, legacy);
    }

    #[test]
    #[should_panic(expected = "experiment unit 5 panicked")]
    fn legacy_par_map_still_aborts_on_unit_panic() {
        par_map_with(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn assemble_synthesizes_failures_for_worker_death_holes() {
        // Units 0 and 2 reported; unit 1 was claimed by a worker that died
        // to a non-unwinding abort and never reported. `assemble` must
        // synthesize a zero-attempt failure for it instead of panicking or
        // silently dropping the slot.
        let tagged: Vec<TaggedOutcome<u32>> = vec![(2, 1, Ok(20)), (0, 2, Err("boom".to_string()))];
        let report = assemble(3, tagged);
        assert_eq!(report.results, vec![None, None, Some(20)]);
        assert_eq!(report.attempts, vec![2, 0, 1]);
        assert_eq!(report.failures.len(), 2);
        assert_eq!(report.failures[0].index, 0);
        assert_eq!(report.failures[0].message, "boom");
        assert_eq!(report.failures[1].index, 1);
        assert_eq!(report.failures[1].attempts, 0);
        assert_eq!(
            report.failures[1].message,
            "worker thread died before reporting"
        );
        assert!((report.quarantine_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_has_zero_quarantine_rate() {
        let report = par_map_supervised_with(4, 0, 0, |i| i);
        assert_eq!(report.quarantine_rate(), 0.0);
        assert!(report.is_clean());
        assert!(report.attempts.is_empty());
    }

    #[test]
    fn streaming_sink_sees_index_order_and_matches_batch() {
        let work = |i: usize| {
            if i % 11 == 7 {
                panic!("unit {i} fails");
            }
            i * i
        };
        let batch = par_map_supervised_with(6, 100, 1, work);
        for threads in [1, 6] {
            let mut seen = Vec::new();
            par_map_supervised_streaming(threads, 100, 1, 4, work, |index, outcome| {
                seen.push((index, outcome.map_err(|f| (f.attempts, f.message))));
            });
            assert_eq!(seen.len(), 100);
            for (k, (index, outcome)) in seen.iter().enumerate() {
                assert_eq!(*index, k, "sink consumes in index order");
                match outcome {
                    Ok(value) => assert_eq!(Some(*value), batch.results[k]),
                    Err((attempts, message)) => {
                        let failure = batch
                            .failures
                            .iter()
                            .find(|f| f.index == k)
                            .expect("batch quarantined the same unit");
                        assert_eq!(*attempts, failure.attempts);
                        assert_eq!(*message, failure.message);
                    }
                }
            }
        }
    }

    #[test]
    fn streaming_bounds_in_flight_results() {
        use std::sync::atomic::AtomicUsize;
        // A deliberately slow sink: with a capacity-4 channel the workers
        // must block rather than buffering all 64 outcomes.
        let produced = AtomicUsize::new(0);
        let mut consumed = 0usize;
        let mut max_gap = 0usize;
        par_map_supervised_streaming(
            4,
            512,
            0,
            4,
            |i| {
                produced.fetch_add(1, Ordering::SeqCst);
                i
            },
            |_, _| {
                consumed += 1;
                let gap = produced.load(Ordering::SeqCst).saturating_sub(consumed);
                max_gap = max_gap.max(gap);
            },
        );
        assert_eq!(consumed, 512);
        // In-flight window: channel capacity + one per worker (in hand) +
        // the reorder buffer's transient, measured racily. A small multiple
        // of (threads + capacity), far below n — which is the point.
        assert!(max_gap <= 64, "max in-flight gap {max_gap} of 512");
    }
}
