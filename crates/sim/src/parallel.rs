//! Deterministic scoped-thread fan-out for the experiment drivers.
//!
//! The figure suite replays every `(application, trace, scheduler)` tuple
//! independently — hundreds of deterministic, seeded session replays with no
//! shared mutable state. [`par_map`] spreads those units over
//! `std::thread::scope` workers pulling indices from an atomic counter, then
//! reassembles the results **in index order**, so the output is byte-for-byte
//! identical to the serial loop no matter how the units interleave at
//! runtime. Setting `PES_THREADS=1` (or running on a single-core host)
//! degenerates to the plain serial path.
//!
//! [`par_map_supervised`] is the fleet-grade tier underneath: every unit runs
//! inside `catch_unwind`, panicking units are retried a bounded number of
//! times and then **quarantined** — their index is reported in the returned
//! [`FleetReport`] instead of aborting the whole fan-out. One poisoned
//! session replay must cost the fleet one result, not the suite.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: the `PES_THREADS` environment variable when set to a
/// positive integer, otherwise the host's available parallelism.
pub fn parallelism() -> usize {
    std::env::var("PES_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// One quarantined unit of a supervised fan-out: the unit index, how many
/// times it was attempted, and the panic payload of the last attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitFailure {
    /// Index of the failing unit in `0..n`.
    pub index: usize,
    /// Attempts made (`1 + retries` unless the worker thread itself died).
    pub attempts: usize,
    /// Stringified panic payload of the final attempt.
    pub message: String,
}

/// The outcome of a [`par_map_supervised`] fan-out: per-unit results in
/// index order (`None` where the unit was quarantined) plus the structured
/// failure list.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport<T> {
    /// One slot per unit, in index order; quarantined units hold `None`.
    pub results: Vec<Option<T>>,
    /// Every quarantined unit, in index order.
    pub failures: Vec<UnitFailure>,
}

impl<T> FleetReport<T> {
    /// Number of units that produced a result.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| r.is_some()).count()
    }

    /// Number of quarantined (persistently failing) units.
    pub fn quarantined(&self) -> usize {
        self.failures.len()
    }

    /// Whether every unit completed.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }

    /// The completed results in index order, dropping quarantined slots.
    pub fn into_results(self) -> Vec<T> {
        self.results.into_iter().flatten().collect()
    }
}

/// Runs one unit under `catch_unwind` with bounded retry; `Ok` carries the
/// result, `Err` the last panic payload (already stringified).
fn run_supervised<T, F>(f: &F, index: usize, retries: usize) -> Result<T, UnitFailure>
where
    F: Fn(usize) -> T + Sync,
{
    let attempts = retries + 1;
    let mut last = String::new();
    for _ in 0..attempts {
        match catch_unwind(AssertUnwindSafe(|| f(index))) {
            Ok(value) => return Ok(value),
            Err(payload) => {
                last = panic_message(payload.as_ref());
            }
        }
    }
    Err(UnitFailure {
        index,
        attempts,
        message: last,
    })
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `f` over `0..n` with up to [`parallelism`] scoped threads, returning
/// results in index order. For a deterministic `f` (every experiment unit is
/// — traces are seeded per unit) the result is identical to
/// `(0..n).map(f).collect()`.
///
/// # Panics
///
/// Panics if any unit panics (the legacy all-or-nothing contract); fleets
/// that must survive failing units use [`par_map_supervised`].
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(parallelism(), n, f)
}

/// [`par_map`] with an explicit worker count (`1` forces the serial path).
///
/// # Panics
///
/// Panics if any unit panics, naming the first failing unit.
pub fn par_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let report = par_map_supervised_with(threads, n, 0, f);
    if let Some(failure) = report.failures.first() {
        panic!(
            "experiment unit {} panicked ({} quarantined of {}): {}",
            failure.index,
            report.failures.len(),
            n,
            failure.message
        );
    }
    report.into_results()
}

/// Supervised fan-out: maps `f` over `0..n` with up to [`parallelism`]
/// workers, catching per-unit panics, retrying each failing unit up to
/// `retries` more times, and quarantining units that still fail. The
/// returned [`FleetReport`] keeps results in index order (deterministic for
/// deterministic units, exactly like [`par_map`]) with `None` holes for the
/// quarantined indices.
pub fn par_map_supervised<T, F>(n: usize, retries: usize, f: F) -> FleetReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_supervised_with(parallelism(), n, retries, f)
}

/// [`par_map_supervised`] with an explicit worker count (`1` forces the
/// serial path).
pub fn par_map_supervised_with<T, F>(
    threads: usize,
    n: usize,
    retries: usize,
    f: F,
) -> FleetReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let mut failures: Vec<UnitFailure> = Vec::new();
    if threads <= 1 || n <= 1 {
        for (index, slot) in slots.iter_mut().enumerate() {
            match run_supervised(&f, index, retries) {
                Ok(value) => *slot = Some(value),
                Err(failure) => failures.push(failure),
            }
        }
        return FleetReport {
            results: slots,
            failures,
        };
    }
    // Workers pull the next unit index from a shared counter (work stealing
    // in its simplest form: unit costs are uneven, so static chunking would
    // leave threads idle) and tag each outcome with its index.
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let mut tagged: Vec<(usize, Result<T, UnitFailure>)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        out.push((index, run_supervised(f, index, retries)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            // A worker thread can only die to a non-unwinding abort (unit
            // panics are caught above); its claimed-but-unreported units are
            // synthesized as failures below instead of poisoning the fleet.
            if let Ok(batch) = worker.join() {
                tagged.extend(batch);
            }
        }
    });
    let mut seen = vec![false; n];
    for (index, outcome) in tagged {
        debug_assert!(!seen[index], "unit {index} produced twice");
        seen[index] = true;
        match outcome {
            Ok(value) => slots[index] = Some(value),
            Err(failure) => failures.push(failure),
        }
    }
    for (index, seen) in seen.iter().enumerate() {
        if !seen {
            failures.push(UnitFailure {
                index,
                attempts: 0,
                message: "worker thread died before reporting".to_string(),
            });
        }
    }
    // Reassembled in index order (failures too): this is what makes the
    // parallel driver byte-identical to the serial one.
    failures.sort_by_key(|failure| failure.index);
    FleetReport {
        results: slots,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let serial = par_map_with(1, 100, |i| i * 3);
        let parallel = par_map_with(8, 100, |i| i * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 21);
    }

    #[test]
    fn uneven_units_still_produce_identical_results() {
        let work = |i: usize| {
            // Simulate uneven unit cost with a spin proportional to index.
            let mut acc = 0u64;
            for k in 0..(i % 13) * 1_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        };
        assert_eq!(par_map_with(1, 64, work), par_map_with(6, 64, work));
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        assert_eq!(par_map_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_with(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(parallelism() >= 1);
    }

    #[test]
    fn supervised_fan_out_quarantines_failing_units() {
        let report = par_map_supervised_with(4, 20, 0, |i| {
            if i % 7 == 3 {
                panic!("unit {i} is poisoned");
            }
            i * 2
        });
        assert_eq!(report.quarantined(), 3); // units 3, 10, 17
        assert_eq!(report.completed(), 17);
        assert!(!report.is_clean());
        assert_eq!(
            report.failures.iter().map(|f| f.index).collect::<Vec<_>>(),
            vec![3, 10, 17]
        );
        assert_eq!(report.failures[0].message, "unit 3 is poisoned");
        assert_eq!(report.results[3], None);
        assert_eq!(report.results[4], Some(8));
        // Holes drop out of into_results, order preserved.
        assert_eq!(report.into_results().len(), 17);
    }

    #[test]
    fn supervised_retry_rescues_flaky_units() {
        use std::sync::atomic::AtomicUsize;
        let attempts = AtomicUsize::new(0);
        let report = par_map_supervised_with(1, 4, 2, |i| {
            if i == 2 && attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient failure");
            }
            i + 1
        });
        assert!(report.is_clean(), "two retries rescue a twice-flaky unit");
        assert_eq!(report.results, vec![Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn persistent_failures_record_their_attempt_count() {
        let report = par_map_supervised_with(2, 3, 2, |i| {
            if i == 1 {
                panic!("always fails");
            }
            i
        });
        assert_eq!(report.quarantined(), 1);
        assert_eq!(report.failures[0].attempts, 3);
        assert_eq!(report.failures[0].message, "always fails");
    }

    #[test]
    fn clean_supervised_runs_match_par_map() {
        let supervised = par_map_supervised_with(6, 64, 1, |i| i * i).into_results();
        let legacy = par_map_with(6, 64, |i| i * i);
        assert_eq!(supervised, legacy);
    }

    #[test]
    #[should_panic(expected = "experiment unit 5 panicked")]
    fn legacy_par_map_still_aborts_on_unit_panic() {
        par_map_with(2, 8, |i| {
            if i == 5 {
                panic!("boom");
            }
            i
        });
    }
}
