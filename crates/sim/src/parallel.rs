//! Deterministic scoped-thread fan-out for the experiment drivers.
//!
//! The figure suite replays every `(application, trace, scheduler)` tuple
//! independently — hundreds of deterministic, seeded session replays with no
//! shared mutable state. [`par_map`] spreads those units over
//! `std::thread::scope` workers pulling indices from an atomic counter, then
//! reassembles the results **in index order**, so the output is byte-for-byte
//! identical to the serial loop no matter how the units interleave at
//! runtime. Setting `PES_THREADS=1` (or running on a single-core host)
//! degenerates to the plain serial path.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker count: the `PES_THREADS` environment variable when set to a
/// positive integer, otherwise the host's available parallelism.
pub fn parallelism() -> usize {
    std::env::var("PES_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `0..n` with up to [`parallelism`] scoped threads, returning
/// results in index order. For a deterministic `f` (every experiment unit is
/// — traces are seeded per unit) the result is identical to
/// `(0..n).map(f).collect()`.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_with(parallelism(), n, f)
}

/// [`par_map`] with an explicit worker count (`1` forces the serial path).
pub fn par_map_with<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    // Workers pull the next unit index from a shared counter (work stealing
    // in its simplest form: unit costs are uneven, so static chunking would
    // leave threads idle) and tag each result with its index.
    let next = AtomicUsize::new(0);
    let next = &next;
    let f = &f;
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let index = next.fetch_add(1, Ordering::Relaxed);
                        if index >= n {
                            break;
                        }
                        out.push((index, f(index)));
                    }
                    out
                })
            })
            .collect();
        for worker in workers {
            tagged.extend(worker.join().expect("experiment worker panicked"));
        }
    });
    // Reassemble in index order: this is what makes the parallel driver
    // byte-identical to the serial one.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (index, value) in tagged {
        debug_assert!(slots[index].is_none(), "unit {index} produced twice");
        slots[index] = Some(value);
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every unit produces exactly one result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let serial = par_map_with(1, 100, |i| i * 3);
        let parallel = par_map_with(8, 100, |i| i * 3);
        assert_eq!(serial, parallel);
        assert_eq!(parallel[7], 21);
    }

    #[test]
    fn uneven_units_still_produce_identical_results() {
        let work = |i: usize| {
            // Simulate uneven unit cost with a spin proportional to index.
            let mut acc = 0u64;
            for k in 0..(i % 13) * 1_000 {
                acc = acc.wrapping_add(k as u64);
            }
            (i, acc)
        };
        assert_eq!(par_map_with(1, 64, work), par_map_with(6, 64, work));
    }

    #[test]
    fn empty_and_single_inputs_are_fine() {
        assert_eq!(par_map_with(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_with(4, 1, |i| i + 1), vec![1]);
    }

    #[test]
    fn parallelism_is_at_least_one() {
        assert!(parallelism() >= 1);
    }
}
