//! Event classification under a reactive scheduler (Sec. 4.3, Fig. 3).
//!
//! Events are classified by what a reactive scheduler did to them:
//!
//! * **Type I** — intrinsically infeasible: even the highest-performance
//!   configuration cannot meet the QoS target,
//! * **Type II** — feasible in isolation but missed at runtime because of
//!   interference from preceding events,
//! * **Type III** — met the deadline but only by burning more energy than an
//!   interference-free schedule would have needed,
//! * **Type IV** — benign: met the deadline at the minimal-energy
//!   configuration with no interference.

use pes_acmp::units::TimeUs;
use pes_acmp::DvfsModel;
use pes_webrt::{QosPolicy, WebEvent};

use crate::reactive::ReactiveReport;

/// The four event categories of Sec. 4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventClass {
    /// Infeasible even at peak performance.
    TypeI,
    /// Feasible in isolation, violated at runtime due to interference.
    TypeII,
    /// Met, but over-provisioned due to interference.
    TypeIII,
    /// Met with no interference (benign).
    TypeIV,
}

impl EventClass {
    /// All classes in reporting order.
    pub const ALL: [EventClass; 4] = [
        EventClass::TypeI,
        EventClass::TypeII,
        EventClass::TypeIII,
        EventClass::TypeIV,
    ];
}

/// The per-class share of events, summing to 1 for a non-empty input.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClassDistribution {
    /// Fraction of Type I events.
    pub type_i: f64,
    /// Fraction of Type II events.
    pub type_ii: f64,
    /// Fraction of Type III events.
    pub type_iii: f64,
    /// Fraction of Type IV events.
    pub type_iv: f64,
}

impl ClassDistribution {
    /// Share of events that violate QoS (Type I + Type II).
    pub fn qos_missing(&self) -> f64 {
        self.type_i + self.type_ii
    }

    /// Share of events that waste energy while meeting QoS (Type III).
    pub fn energy_wasting(&self) -> f64 {
        self.type_iii
    }
}

/// Classifies every event of a reactive replay.
///
/// The classification uses ground-truth demands (the characterisation in the
/// paper also reasons about the events' intrinsic workloads), so the caller
/// provides the original trace events aligned with the report records.
pub fn classify_events(
    report: &ReactiveReport,
    events: &[WebEvent],
    dvfs: &DvfsModel<'_>,
    qos: &QosPolicy,
) -> Vec<EventClass> {
    report
        .records
        .iter()
        .zip(events.iter())
        .map(|(record, event)| {
            let target = qos.target_for_event(event.event_type());
            let best_case = dvfs.best_case_latency(&event.demand());
            // Intrinsically infeasible: the fastest configuration plus one
            // display refresh cannot make the target.
            if best_case > target {
                return EventClass::TypeI;
            }
            let violated = record.outcome.violated();
            let interfered = !record.queue_delay.is_zero();
            if violated {
                return EventClass::TypeII;
            }
            if interfered {
                // Could a cheaper configuration have served the event had it
                // not been delayed?
                let ideal = dvfs.cheapest_config_within(&event.demand(), target);
                if let Some(ideal_cfg) = ideal {
                    let used_cost = dvfs.marginal_energy(&event.demand(), &record.config);
                    let ideal_cost = dvfs.marginal_energy(&event.demand(), &ideal_cfg);
                    if used_cost.as_microjoules() > ideal_cost.as_microjoules() * 1.01 {
                        return EventClass::TypeIII;
                    }
                }
            }
            EventClass::TypeIV
        })
        .collect()
}

/// Aggregates a class list into a distribution.
pub fn distribution(classes: &[EventClass]) -> ClassDistribution {
    if classes.is_empty() {
        return ClassDistribution::default();
    }
    let total = classes.len() as f64;
    let count = |c: EventClass| classes.iter().filter(|&&x| x == c).count() as f64 / total;
    ClassDistribution {
        type_i: count(EventClass::TypeI),
        type_ii: count(EventClass::TypeII),
        type_iii: count(EventClass::TypeIII),
        type_iv: count(EventClass::TypeIV),
    }
}

/// A zero-duration helper used by tests.
pub fn no_delay() -> TimeUs {
    TimeUs::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactive::run_reactive;
    use pes_acmp::Platform;
    use pes_schedulers::Ebs;
    use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

    #[test]
    fn distribution_sums_to_one_and_every_class_occurs_across_the_suite() {
        let catalog = AppCatalog::paper_suite();
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let gen = TraceGenerator::new();
        let mut all_classes = Vec::new();
        for app in catalog.seen_apps().take(6) {
            let page = app.build_page();
            let trace = gen.generate(app, &page, EVAL_SEED_BASE + 2);
            let report = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
            let classes = classify_events(&report, trace.events(), &dvfs, &qos);
            assert_eq!(classes.len(), trace.len());
            let dist = distribution(&classes);
            let sum = dist.type_i + dist.type_ii + dist.type_iii + dist.type_iv;
            assert!((sum - 1.0).abs() < 1e-9);
            all_classes.extend(classes);
        }
        let dist = distribution(&all_classes);
        // The motivation of the paper: a non-trivial share of events misses
        // QoS or wastes energy under a reactive scheduler, but most events
        // remain benign.
        assert!(dist.qos_missing() > 0.02, "{dist:?}");
        assert!(dist.qos_missing() < 0.6, "{dist:?}");
        assert!(dist.type_iv > 0.3, "{dist:?}");
    }

    #[test]
    fn empty_input_yields_the_zero_distribution() {
        let d = distribution(&[]);
        assert_eq!(d.qos_missing(), 0.0);
        assert_eq!(d.energy_wasting(), 0.0);
        assert_eq!(no_delay(), TimeUs::ZERO);
    }
}
