//! # pes-sim — simulation harness, metrics and experiment drivers
//!
//! Ties every substrate of the PES reproduction together:
//!
//! * [`run_reactive`] replays a user trace under a reactive [`pes_schedulers::Scheduler`]
//!   (Interactive, Ondemand, EBS) on the shared execution engine,
//! * [`classify_events`] reproduces the Sec. 4.3 Type I–IV characterisation,
//! * [`experiments`] holds one driver per table/figure of the evaluation
//!   (Fig. 2, 3, 8, 9, 10, 11, 12, 13, 14 plus the Sec. 6.5 ablations),
//!   consumed by the `figures` binary in `pes-bench`.
//!
//! # Examples
//!
//! ```
//! use pes_acmp::Platform;
//! use pes_schedulers::Ebs;
//! use pes_sim::run_reactive;
//! use pes_webrt::QosPolicy;
//! use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};
//!
//! let catalog = AppCatalog::paper_suite();
//! let app = catalog.find("bbc").unwrap();
//! let page = app.build_page();
//! let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
//! let platform = Platform::exynos_5410();
//! let report = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &QosPolicy::paper_defaults());
//! assert_eq!(report.events(), trace.len());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod classify;
pub mod experiments;
pub mod fleet;
pub mod parallel;
pub mod reactive;
pub mod scenario;
pub mod training;

pub use classify::{classify_events, distribution, ClassDistribution, EventClass};
pub use experiments::{
    chaos_fleet, fig10_waste, fig13_pareto, fig14_sensitivity, fig2_case_study, fig2_trace,
    fig3_event_types, fig8_accuracy, fig8_accuracy_batched, fig9_pfb_trace, full_comparison,
    full_comparison_with_config, pareto_entry, AppComparison, CaseStudy, ChaosFleetReport,
    ExperimentContext, MissingPolicyError, SensitivityPoint, TimelineEntry,
};
pub use fleet::{
    fleet_admission_dry_run, resume_fleet, run_fleet, run_fleet_journaled, unit_scenario,
    BreakerConfig, BreakerState, CircuitBreaker, CostRouteConfig, FleetConfig, FleetError,
    FleetRunReport, FleetSpec, ShedPolicy, EVENT_CLASSES,
};
pub use parallel::{
    par_map, par_map_supervised, par_map_supervised_streaming, par_map_supervised_with,
    par_map_with, parallelism, FleetReport, UnitFailure,
};
pub use reactive::{run_reactive, run_reactive_with_plane, ReactiveEventRecord, ReactiveReport};
pub use scenario::ScenarioCache;
pub use training::{train_learner_parallel, train_parallel};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReactiveReport>();
        assert_send_sync::<ExperimentContext>();
        assert_send_sync::<AppComparison>();
        assert_send_sync::<EventClass>();
    }
}
