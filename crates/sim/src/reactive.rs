//! The reactive simulation loop: replays a trace under a per-event
//! [`Scheduler`] (Interactive, Ondemand, EBS) on the shared execution engine.

use std::sync::Arc;

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{AcmpConfig, DvfsLadder, DvfsModel, Platform};
use pes_schedulers::{ScheduleContext, Scheduler};
use pes_webrt::{EventId, ExecutionEngine, QosOutcome, QosPolicy};
use pes_workload::Trace;

/// Per-event details of a reactive replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReactiveEventRecord {
    /// The event.
    pub event: EventId,
    /// The configuration chosen by the scheduler.
    pub config: AcmpConfig,
    /// Queueing delay: how long after its arrival the event started.
    pub queue_delay: TimeUs,
    /// Busy (execution) time.
    pub busy_time: TimeUs,
    /// The QoS outcome.
    pub outcome: QosOutcome,
}

/// The report of one reactive replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReactiveReport {
    /// Scheduler name.
    pub policy: String,
    /// Application name.
    pub app: String,
    /// Per-event records in trace order.
    pub records: Vec<ReactiveEventRecord>,
    /// Total processor energy over the session.
    pub total_energy: EnergyUj,
    /// Events the scheduler served with a conservative fallback because
    /// their type had no demand estimate (see
    /// [`Scheduler::unprofiled_fallbacks`]); mirrors the proactive
    /// `RunReport::unprofiled_fallbacks`.
    pub unprofiled_fallbacks: usize,
    /// QoS violations, counted at commit time by the engine's frame ledger
    /// (identical to scanning `records` — the reactive differential test
    /// pins the two against each other).
    pub violations: usize,
}

impl ReactiveReport {
    /// Number of events replayed.
    pub fn events(&self) -> usize {
        self.records.len()
    }

    /// Number of QoS violations (the ledger counter; O(1)).
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Number of QoS violations by scanning the per-event records — the
    /// pre-ledger derivation, retained for differential checks.
    pub fn violations_scanned(&self) -> usize {
        self.records.iter().filter(|r| r.outcome.violated()).count()
    }

    /// Fraction of events violating their QoS target.
    pub fn violation_rate(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.violations() as f64 / self.records.len() as f64
        }
    }
}

/// Replays `trace` under the given reactive scheduler, building a private
/// DVFS power plane. Fan-out drivers replaying many traces on one platform
/// should use [`run_reactive_with_plane`] to share a single plane instead —
/// the pre-plane driver built *two* 17-rung ladders per replay (one for the
/// engine, one for the scheduler context), which is where the Interactive
/// governor unit's regression came from.
pub fn run_reactive(
    platform: &Platform,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    qos: &QosPolicy,
) -> ReactiveReport {
    let plane = Arc::new(DvfsLadder::for_platform(platform));
    run_reactive_with_plane(platform, &plane, trace, scheduler, qos)
}

/// Replays `trace` under the given reactive scheduler on a shared DVFS power
/// plane (one ladder per platform, built once per context).
pub fn run_reactive_with_plane(
    platform: &Platform,
    plane: &Arc<DvfsLadder>,
    trace: &Trace,
    scheduler: &mut dyn Scheduler,
    qos: &QosPolicy,
) -> ReactiveReport {
    scheduler.reset();
    let mut engine = ExecutionEngine::with_plane(platform, *qos, Arc::clone(plane));
    let dvfs = DvfsModel::with_ladder(platform, Arc::clone(plane));
    let mut records = Vec::with_capacity(trace.len());
    for ev in trace.events() {
        let start_time = engine.cpu_free_at().max(ev.arrival());
        let ctx = ScheduleContext {
            platform,
            dvfs: &dvfs,
            qos,
            start_time,
            current_config: engine.current_config(),
        };
        let config = scheduler.schedule_event(&ctx, ev);
        let record = engine.execute_event(ev, &config, false);
        let outcome = engine.commit(ev, record.frame_ready_at);
        scheduler.on_event_complete(&ctx, ev, &config, record.busy_time, record.frame_ready_at);
        records.push(ReactiveEventRecord {
            event: ev.id(),
            config,
            queue_delay: start_time.saturating_sub(ev.arrival()),
            busy_time: record.busy_time,
            outcome,
        });
    }
    ReactiveReport {
        policy: scheduler.name().to_string(),
        app: trace.app().to_string(),
        records,
        total_energy: engine.total_energy(),
        unprofiled_fallbacks: scheduler.unprofiled_fallbacks(),
        violations: engine.violations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_schedulers::{Ebs, InteractiveGovernor, OndemandGovernor};
    use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

    fn setup() -> (Platform, QosPolicy, pes_dom::BuiltPage, Trace) {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 1);
        (
            Platform::exynos_5410(),
            QosPolicy::paper_defaults(),
            page,
            trace,
        )
    }

    #[test]
    fn every_event_is_executed_exactly_once() {
        let (platform, qos, _page, trace) = setup();
        let mut ebs = Ebs::new(&platform);
        let report = run_reactive(&platform, &trace, &mut ebs, &qos);
        assert_eq!(report.events(), trace.len());
        assert_eq!(report.policy, "EBS");
        assert!(report.total_energy.as_millijoules() > 0.0);
        // The ledger's commit-time counter and the record scan must agree.
        assert_eq!(report.violations(), report.violations_scanned());
        // Finish times never precede arrivals under a reactive policy.
        for r in &report.records {
            assert!(r.outcome.displayed_at >= r.outcome.triggered_at);
        }
    }

    #[test]
    fn interactive_spends_more_energy_than_ebs_and_ondemand_spends_least() {
        let (platform, qos, _page, trace) = setup();
        let interactive = run_reactive(&platform, &trace, &mut InteractiveGovernor::new(), &qos);
        let ebs = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
        let ondemand = run_reactive(&platform, &trace, &mut OndemandGovernor::new(), &qos);
        assert!(
            interactive.total_energy.as_microjoules() > ebs.total_energy.as_microjoules(),
            "Interactive {} mJ vs EBS {} mJ",
            interactive.total_energy.as_millijoules(),
            ebs.total_energy.as_millijoules()
        );
        assert!(ondemand.total_energy.as_microjoules() < interactive.total_energy.as_microjoules());
        // Ondemand pays for its savings with many more violations (Fig. 13).
        assert!(ondemand.violations() >= interactive.violations());
    }

    #[test]
    fn ebs_violation_rate_is_in_a_plausible_range() {
        let (platform, qos, _page, trace) = setup();
        let report = run_reactive(&platform, &trace, &mut Ebs::new(&platform), &qos);
        let rate = report.violation_rate();
        assert!(rate > 0.0, "some Type I/II events must exist");
        assert!(
            rate < 0.6,
            "EBS should serve the majority of events: {rate}"
        );
    }
}
