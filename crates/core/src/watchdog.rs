//! Per-replay watchdog deadlines: a deterministic proxy for wall-clock
//! runaway detection.
//!
//! A serving fleet cannot let one replay unit monopolise a worker. Real
//! services kill such units on a wall-clock timer, but wall time is not
//! replayable, so the watchdog charges two deterministic meters instead —
//! **solver nodes expanded** (the dominant cost of a replay) and **events
//! executed** — against per-unit budgets. Crossing either deadline *trips*
//! the watchdog: the runtime demotes the unit's serving tier one
//! [`crate::DegradationLevel`] (cheaper solves, then reactive serving, then
//! the on-demand floor) and extends the deadline by one budget, so a unit
//! that keeps overrunning keeps descending the ladder instead of running
//! away. Every trip is recorded in [`crate::RunReport::watchdog_trips`] and
//! the tier the unit ended at in [`crate::RunReport::final_tier`].
//!
//! Budgets of `0` disable the corresponding meter; the
//! [`WatchdogConfig::disabled`] default never charges, never trips, and is
//! bit-identical to the pre-watchdog runtime.

/// Deterministic per-replay deadlines. `0` disables a meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Solver nodes a replay may expand before the watchdog trips
    /// (`0` = unlimited).
    pub node_budget: usize,
    /// Events a replay may execute before the watchdog trips
    /// (`0` = unlimited).
    pub event_budget: usize,
}

impl WatchdogConfig {
    /// The no-op watchdog: never charges, never trips.
    pub const fn disabled() -> Self {
        WatchdogConfig {
            node_budget: 0,
            event_budget: 0,
        }
    }

    /// Whether both meters are disabled.
    pub fn is_disabled(&self) -> bool {
        self.node_budget == 0 && self.event_budget == 0
    }
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig::disabled()
    }
}

/// The mutable per-replay meters of a [`WatchdogConfig`]. Each deadline
/// extends by one budget on every trip, so the trip count grows linearly
/// with sustained overage rather than firing once and going quiet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogState {
    config: WatchdogConfig,
    nodes_used: usize,
    events_used: usize,
    node_deadline: usize,
    event_deadline: usize,
    trips: usize,
}

impl WatchdogState {
    /// Fresh meters for one replay.
    pub fn new(config: WatchdogConfig) -> Self {
        WatchdogState {
            config,
            nodes_used: 0,
            events_used: 0,
            node_deadline: config.node_budget,
            event_deadline: config.event_budget,
            trips: 0,
        }
    }

    /// Charges `nodes` expanded solver nodes; returns how many deadlines
    /// that crossing tripped (each trip should demote the serving tier one
    /// level).
    pub fn charge_nodes(&mut self, nodes: usize) -> usize {
        if self.config.node_budget == 0 {
            return 0;
        }
        self.nodes_used = self.nodes_used.saturating_add(nodes);
        let mut tripped = 0;
        while self.nodes_used > self.node_deadline {
            self.node_deadline = self.node_deadline.saturating_add(self.config.node_budget);
            self.trips += 1;
            tripped += 1;
        }
        tripped
    }

    /// Charges one executed event; returns how many deadlines that crossing
    /// tripped.
    pub fn charge_event(&mut self) -> usize {
        if self.config.event_budget == 0 {
            return 0;
        }
        self.events_used += 1;
        let mut tripped = 0;
        while self.events_used > self.event_deadline {
            self.event_deadline = self.event_deadline.saturating_add(self.config.event_budget);
            self.trips += 1;
            tripped += 1;
        }
        tripped
    }

    /// Total deadline crossings so far.
    pub fn trips(&self) -> usize {
        self.trips
    }

    /// Solver nodes charged so far.
    pub fn nodes_used(&self) -> usize {
        self.nodes_used
    }

    /// Events charged so far.
    pub fn events_used(&self) -> usize {
        self.events_used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_watchdog_never_trips() {
        let mut state = WatchdogState::new(WatchdogConfig::disabled());
        assert!(WatchdogConfig::default().is_disabled());
        assert_eq!(state.charge_nodes(usize::MAX), 0);
        for _ in 0..1_000 {
            assert_eq!(state.charge_event(), 0);
        }
        assert_eq!(state.trips(), 0);
    }

    #[test]
    fn node_deadline_extends_on_each_trip() {
        let mut state = WatchdogState::new(WatchdogConfig {
            node_budget: 100,
            event_budget: 0,
        });
        assert_eq!(state.charge_nodes(100), 0, "exactly the budget is fine");
        assert_eq!(state.charge_nodes(1), 1, "the 101st node trips");
        assert_eq!(state.charge_nodes(99), 0, "deadline extended to 200");
        assert_eq!(state.charge_nodes(250), 3, "one charge can trip thrice");
        assert_eq!(state.trips(), 4);
        assert_eq!(state.nodes_used(), 450);
    }

    #[test]
    fn event_deadline_trips_per_budget_overrun() {
        let mut state = WatchdogState::new(WatchdogConfig {
            node_budget: 0,
            event_budget: 3,
        });
        let trips: Vec<usize> = (0..9).map(|_| state.charge_event()).collect();
        assert_eq!(trips, vec![0, 0, 0, 1, 0, 0, 1, 0, 0]);
        assert_eq!(state.trips(), 2);
        assert_eq!(state.events_used(), 9);
    }

    #[test]
    fn saturating_charges_do_not_wrap() {
        let mut state = WatchdogState::new(WatchdogConfig {
            node_budget: usize::MAX,
            event_budget: 0,
        });
        assert_eq!(state.charge_nodes(usize::MAX), 0);
        assert_eq!(state.charge_nodes(usize::MAX), 0, "usage saturates at MAX");
    }
}
