//! The deterministic fault-injection plane and the graceful-degradation
//! ladder.
//!
//! The PES design is only viable because it degrades: mispredicted events
//! fall back to reactive scheduling (Sec. 5.4) and capped solves fall back
//! to cheaper tiers. This module makes those fallback paths *first-class
//! and testable*: a [`FaultPlane`] is a seeded, replayable schedule of
//! per-replay faults that the runtime injects at every layer boundary —
//!
//! * **predictor** — classifier misprediction flips and confidence
//!   corruption of the predicted sequence
//!   ([`FaultSession::corrupt_predictions`]),
//! * **core/memo** — demand-estimate drift pushed beyond the
//!   [`crate::PesConfig::planning_hysteresis`] band
//!   ([`FaultSession::drift_demand`]),
//! * **ilp** — solver budget starvation down to zero nodes
//!   ([`FaultSession::starve_budget`]),
//! * **acmp** — DVFS rung masking simulating thermal throttling, with
//!   nearest-valid-rung clamping ([`FaultSession::mask_config`]),
//! * **webrt** — late vsync deadlines and duplicated/dropped queue events
//!   ([`FaultSession::delay_vsync`], [`FaultSession::mutate_events`]).
//!
//! Every decision the faulted (or unfaulted) runtime takes lands on the
//! **degradation ladder** ([`DegradationLevel`]), recorded per replay in
//! [`crate::RunReport::degradation`], so the fallback transitions the paper
//! implies become observable and assertable instead of incidental.
//!
//! Determinism contract: a session draws from a private SplitMix64 stream
//! seeded by [`FaultConfig::seed`], and every injection point consults the
//! stream **only when its fault class is enabled**. [`FaultPlane::none`]
//! therefore never touches the generator, which is what makes the
//! zero-fault plane bit-identical to the pre-fault-plane runtime (pinned by
//! the golden tier in `tests/end_to_end.rs`).

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, CpuDemand};
use pes_dom::EventType;
use pes_webrt::WebEvent;

/// Where one scheduling decision landed on the graceful-degradation ladder,
/// best to worst. The runtime records one level per *decision*: one per
/// optimizer round (from the solve tier that answered it) and one per
/// reactively served event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DegradationLevel {
    /// The window solve completed exactly within its node budget.
    Exact,
    /// The budget ran out (or was starved, but not to the floor): the
    /// best-first incumbent answered — never worse than greedy.
    Anytime,
    /// The budget was starved to the floor (≤ 1 node): the schedule is the
    /// greedy seed the anytime search starts from.
    Greedy,
    /// The event bypassed the optimizer entirely: reactive EBS-equivalent
    /// selection (profiling warm-up, the post-misprediction fallback of
    /// Sec. 5.4, or a failed plan).
    Reactive,
    /// The floor: the event type had no demand estimate at all, so the
    /// runtime ran it at the conservative profiling configuration.
    OndemandFloor,
}

impl DegradationLevel {
    /// Every level, best to worst.
    pub const ALL: [DegradationLevel; 5] = [
        DegradationLevel::Exact,
        DegradationLevel::Anytime,
        DegradationLevel::Greedy,
        DegradationLevel::Reactive,
        DegradationLevel::OndemandFloor,
    ];

    /// One step worse on the ladder, saturating at the
    /// [`DegradationLevel::OndemandFloor`] floor. Watchdog trips demote the
    /// replay's serving tier through this.
    pub fn demoted(self) -> DegradationLevel {
        match self {
            DegradationLevel::Exact => DegradationLevel::Anytime,
            DegradationLevel::Anytime => DegradationLevel::Greedy,
            DegradationLevel::Greedy => DegradationLevel::Reactive,
            DegradationLevel::Reactive | DegradationLevel::OndemandFloor => {
                DegradationLevel::OndemandFloor
            }
        }
    }

    /// Human-readable level name.
    pub fn name(self) -> &'static str {
        match self {
            DegradationLevel::Exact => "Exact",
            DegradationLevel::Anytime => "Anytime",
            DegradationLevel::Greedy => "Greedy",
            DegradationLevel::Reactive => "Reactive",
            DegradationLevel::OndemandFloor => "OndemandFloor",
        }
    }
}

/// Per-replay histogram of [`DegradationLevel`] observations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationTrace {
    /// Decisions served by an exact solve.
    pub exact: usize,
    /// Decisions served by a best-first incumbent.
    pub anytime: usize,
    /// Decisions served by a budget-floor (greedy) schedule.
    pub greedy: usize,
    /// Events served reactively (profiling warm-up or fallback).
    pub reactive: usize,
    /// Events served at the no-estimate floor.
    pub ondemand_floor: usize,
}

impl DegradationTrace {
    /// Records one decision at `level`.
    pub fn observe(&mut self, level: DegradationLevel) {
        match level {
            DegradationLevel::Exact => self.exact += 1,
            DegradationLevel::Anytime => self.anytime += 1,
            DegradationLevel::Greedy => self.greedy += 1,
            DegradationLevel::Reactive => self.reactive += 1,
            DegradationLevel::OndemandFloor => self.ondemand_floor += 1,
        }
    }

    /// The count recorded at `level`.
    pub fn count(&self, level: DegradationLevel) -> usize {
        match level {
            DegradationLevel::Exact => self.exact,
            DegradationLevel::Anytime => self.anytime,
            DegradationLevel::Greedy => self.greedy,
            DegradationLevel::Reactive => self.reactive,
            DegradationLevel::OndemandFloor => self.ondemand_floor,
        }
    }

    /// Total decisions recorded.
    pub fn decisions(&self) -> usize {
        DegradationLevel::ALL.iter().map(|&l| self.count(l)).sum()
    }

    /// The worst level observed, `None` when nothing was recorded.
    pub fn worst(&self) -> Option<DegradationLevel> {
        DegradationLevel::ALL
            .iter()
            .rev()
            .find(|&&l| self.count(l) > 0)
            .copied()
    }

    /// Folds another trace into this one (fleet aggregation).
    pub fn merge(&mut self, other: &DegradationTrace) {
        self.exact += other.exact;
        self.anytime += other.anytime;
        self.greedy += other.greedy;
        self.reactive += other.reactive;
        self.ondemand_floor += other.ondemand_floor;
    }
}

/// The fault schedule of a [`FaultPlane`]: one rate (probability per
/// injection opportunity, clamped to `[0, 1]`) or mask per fault class. A
/// rate of `0.0` (or a mask of `0`) disables the class *entirely* — the
/// session's RNG stream is not consulted, so disabled classes cannot
/// perturb a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the session's private SplitMix64 stream.
    pub seed: u64,
    /// Per predicted event: flip the predicted type to a different one
    /// (classifier misprediction).
    pub prediction_flip: f64,
    /// Per prediction round: corrupt the sequence confidence, truncating the
    /// round to a random prefix.
    pub confidence_corruption: f64,
    /// Per consumed demand estimate: drift the estimate by
    /// `±drift_magnitude` (relative), modelling estimation noise beyond the
    /// planner's hysteresis band.
    pub demand_drift: f64,
    /// Relative magnitude of an injected drift. Values above the 0.35
    /// planning hysteresis snap the held demand class and defeat the solve
    /// memoisation, which is the interesting regime.
    pub drift_magnitude: f64,
    /// Per optimizer invocation: starve the node budget geometrically —
    /// a draw of `budget >> (3 + k)` for uniform `k`, spanning `budget/8`
    /// down to zero nodes.
    pub solver_starvation: f64,
    /// Bitmask of *disabled* DVFS rung indices (bit `i` forbids the `i`-th
    /// platform configuration), simulating thermal throttling. Chosen
    /// configurations are clamped to the nearest still-valid rung; a mask
    /// covering every rung cannot bind and is ignored.
    pub rung_mask: u32,
    /// Per committed frame: the frame misses 1–3 vsync periods (late
    /// deadline).
    pub vsync_delay: f64,
    /// Per delivered event: the event is duplicated in the queue.
    pub queue_duplicate: f64,
    /// Per delivered event: the event is dropped from the queue.
    pub queue_drop: f64,
}

impl FaultConfig {
    /// The all-disabled schedule (every rate zero, no mask).
    pub const fn disabled() -> Self {
        FaultConfig {
            seed: 0,
            prediction_flip: 0.0,
            confidence_corruption: 0.0,
            demand_drift: 0.0,
            drift_magnitude: 0.0,
            solver_starvation: 0.0,
            rung_mask: 0,
            vsync_delay: 0.0,
            queue_duplicate: 0.0,
            queue_drop: 0.0,
        }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::disabled()
    }
}

/// A seeded, replayable fault-injection plane. Immutable and `Copy`: one
/// plane describes the fault schedule, [`FaultPlane::session`] mints the
/// per-replay mutable state, and [`FaultPlane::reseeded`] derives
/// per-fleet-unit planes whose streams are decorrelated but reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlane {
    config: FaultConfig,
}

impl FaultPlane {
    /// The zero-fault plane: replays under it are bit-identical to the
    /// pre-fault-plane runtime (no RNG draw ever happens).
    pub const fn none() -> Self {
        FaultPlane {
            config: FaultConfig::disabled(),
        }
    }

    /// A plane with the given fault schedule. Rates are clamped into
    /// `[0, 1]` (NaN disables the class).
    pub fn new(config: FaultConfig) -> Self {
        let clamp = |r: f64| {
            if r.is_finite() {
                r.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        FaultPlane {
            config: FaultConfig {
                seed: config.seed,
                prediction_flip: clamp(config.prediction_flip),
                confidence_corruption: clamp(config.confidence_corruption),
                demand_drift: clamp(config.demand_drift),
                drift_magnitude: if config.drift_magnitude.is_finite() {
                    config.drift_magnitude.clamp(0.0, 4.0)
                } else {
                    0.0
                },
                solver_starvation: clamp(config.solver_starvation),
                rung_mask: config.rung_mask,
                vsync_delay: clamp(config.vsync_delay),
                queue_duplicate: clamp(config.queue_duplicate),
                queue_drop: clamp(config.queue_drop),
            },
        }
    }

    /// The fault schedule.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether every fault class is disabled.
    pub fn is_none(&self) -> bool {
        let c = &self.config;
        c.prediction_flip == 0.0
            && c.confidence_corruption == 0.0
            && c.demand_drift == 0.0
            && c.solver_starvation == 0.0
            && c.rung_mask == 0
            && c.vsync_delay == 0.0
            && c.queue_duplicate == 0.0
            && c.queue_drop == 0.0
    }

    /// The same schedule on a decorrelated stream: used by fleet drivers to
    /// give each unit its own reproducible fault sequence.
    pub fn reseeded(&self, stream: u64) -> FaultPlane {
        let mut config = self.config;
        config.seed = splitmix(self.config.seed ^ splitmix(stream));
        FaultPlane { config }
    }

    /// Mints the mutable per-replay injection state.
    pub fn session(&self) -> FaultSession {
        FaultSession {
            config: self.config,
            state: self.config.seed,
            counts: FaultCounts::default(),
        }
    }
}

impl Default for FaultPlane {
    fn default() -> Self {
        FaultPlane::none()
    }
}

/// Per-class injection counters of one replay; exposed through
/// [`crate::RunReport::fault_injections`] so inflation bounds can be
/// asserted per injected fault, not per replay.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Predicted event types flipped.
    pub prediction_flips: usize,
    /// Prediction rounds truncated by confidence corruption.
    pub confidence_corruptions: usize,
    /// Demand estimates drifted.
    pub demand_drifts: usize,
    /// Optimizer invocations with a starved node budget.
    pub starved_solves: usize,
    /// Configurations clamped away from a masked rung.
    pub masked_configs: usize,
    /// Frame commits pushed past their vsync.
    pub delayed_vsyncs: usize,
    /// Queue events duplicated.
    pub duplicated_events: usize,
    /// Queue events dropped.
    pub dropped_events: usize,
}

impl FaultCounts {
    /// Total injections across all classes.
    pub fn total(&self) -> usize {
        self.prediction_flips
            + self.confidence_corruptions
            + self.demand_drifts
            + self.starved_solves
            + self.masked_configs
            + self.delayed_vsyncs
            + self.duplicated_events
            + self.dropped_events
    }

    /// Folds another counter set into this one (fleet aggregation).
    pub fn merge(&mut self, other: &FaultCounts) {
        self.prediction_flips += other.prediction_flips;
        self.confidence_corruptions += other.confidence_corruptions;
        self.demand_drifts += other.demand_drifts;
        self.starved_solves += other.starved_solves;
        self.masked_configs += other.masked_configs;
        self.delayed_vsyncs += other.delayed_vsyncs;
        self.duplicated_events += other.duplicated_events;
        self.dropped_events += other.dropped_events;
    }
}

/// One SplitMix64 step (also the plane's seed-derivation mix). Public so
/// fleet drivers can derive per-unit seeds with the exact same mix the
/// plane uses for [`FaultPlane::reseeded`].
pub fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The mutable per-replay state of a [`FaultPlane`]: the private RNG stream
/// plus the per-class injection counters. The runtime threads exactly one
/// session through each replay.
#[derive(Debug, Clone)]
pub struct FaultSession {
    config: FaultConfig,
    state: u64,
    counts: FaultCounts,
}

impl FaultSession {
    /// The injection counters so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether an injection opportunity with probability `rate` fires. The
    /// stream is only consulted for enabled classes (`rate > 0`), which is
    /// the zero-fault bit-identity guarantee.
    fn trigger(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.uniform() < rate
    }

    /// Predictor faults: truncates the round to a random prefix with
    /// probability `confidence_corruption`, then flips each surviving
    /// predicted type with probability `prediction_flip`.
    pub fn corrupt_predictions(&mut self, predicted: &mut Vec<(EventType, CpuDemand)>) {
        if !predicted.is_empty() && self.trigger(self.config.confidence_corruption) {
            self.counts.confidence_corruptions += 1;
            let keep = (self.next_u64() % predicted.len() as u64) as usize;
            predicted.truncate(keep);
        }
        if self.config.prediction_flip > 0.0 {
            for slot in predicted.iter_mut() {
                if self.trigger(self.config.prediction_flip) {
                    self.counts.prediction_flips += 1;
                    slot.0 = flip_type(slot.0, self.next_u64());
                }
            }
        }
    }

    /// Demand-estimate drift: with probability `demand_drift`, scales both
    /// demand components by `1 ± drift_magnitude` — past the planner's
    /// hysteresis band when the magnitude exceeds it.
    pub fn drift_demand(&mut self, demand: CpuDemand) -> CpuDemand {
        if !self.trigger(self.config.demand_drift) {
            return demand;
        }
        self.counts.demand_drifts += 1;
        let sign = if self.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        let factor = (1.0 + sign * self.config.drift_magnitude).max(0.05);
        demand.scale(factor)
    }

    /// Solver starvation: with probability `solver_starvation`, right-shifts
    /// the node budget by a uniform 3–18 bits — a geometric spread from
    /// `budget/8` down to zero nodes (the solver clamps to one, which yields
    /// its greedy seed), so the degradation floor is actually reachable
    /// instead of a measure-zero corner.
    pub fn starve_budget(&mut self, budget: usize) -> usize {
        if !self.trigger(self.config.solver_starvation) {
            return budget;
        }
        self.counts.starved_solves += 1;
        budget >> (3 + self.next_u64() % 16)
    }

    /// DVFS rung masking (thermal throttling): if the chosen configuration
    /// sits on a masked rung, clamps it to the nearest still-valid rung by
    /// index distance, ties toward the lower (cooler) rung. Deterministic —
    /// a thermal cap persists, so no RNG draw is involved. A mask covering
    /// every rung cannot bind and leaves the choice untouched.
    pub fn mask_config(&mut self, configs: &[AcmpConfig], chosen: AcmpConfig) -> AcmpConfig {
        let mask = self.config.rung_mask;
        if mask == 0 || configs.is_empty() {
            return chosen;
        }
        let rungs = configs.len().min(32);
        let effective = mask & (((1u64 << rungs) - 1) as u32);
        if effective == 0 || effective.count_ones() as usize >= rungs {
            return chosen;
        }
        let Some(chosen_idx) = configs[..rungs].iter().position(|c| *c == chosen) else {
            return chosen;
        };
        if effective & (1 << chosen_idx) == 0 {
            return chosen;
        }
        let mut nearest: Option<(usize, usize)> = None;
        for idx in 0..rungs {
            if effective & (1 << idx) != 0 {
                continue;
            }
            let distance = idx.abs_diff(chosen_idx);
            if nearest.is_none_or(|(best, _)| distance < best) {
                nearest = Some((distance, idx));
            }
        }
        match nearest {
            Some((_, idx)) => {
                self.counts.masked_configs += 1;
                configs[idx]
            }
            None => chosen,
        }
    }

    /// Vsync faults: with probability `vsync_delay`, the committed frame
    /// misses 1–3 refresh periods. The engine's `commit` is pure QoS
    /// accounting, so one injection perturbs exactly one outcome.
    pub fn delay_vsync(&mut self, frame_ready_at: TimeUs, period: TimeUs) -> TimeUs {
        if !self.trigger(self.config.vsync_delay) {
            return frame_ready_at;
        }
        self.counts.delayed_vsyncs += 1;
        let periods = 1 + self.next_u64() % 3;
        frame_ready_at + TimeUs::from_micros(period.as_micros() * periods)
    }

    /// Queue faults: drops and/or duplicates delivered events. Returns
    /// `None` when both classes are disabled (the replay then borrows the
    /// original trace untouched); duplicates keep their arrival time, so
    /// the mutated sequence stays arrival-ordered.
    pub fn mutate_events(&mut self, events: &[WebEvent]) -> Option<Vec<WebEvent>> {
        if self.config.queue_drop == 0.0 && self.config.queue_duplicate == 0.0 {
            return None;
        }
        let mut out = Vec::with_capacity(events.len() + events.len() / 4 + 1);
        for ev in events {
            if self.trigger(self.config.queue_drop) {
                self.counts.dropped_events += 1;
                continue;
            }
            out.push(*ev);
            if self.trigger(self.config.queue_duplicate) {
                self.counts.duplicated_events += 1;
                out.push(*ev);
            }
        }
        Some(out)
    }
}

/// A deterministic *different* event type for a prediction flip.
fn flip_type(event_type: EventType, draw: u64) -> EventType {
    let all = EventType::ALL;
    let idx = all.iter().position(|t| *t == event_type).unwrap_or(0);
    let step = 1 + (draw % (all.len() as u64 - 1)) as usize;
    all[(idx + step) % all.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;
    use pes_webrt::EventId;

    fn moderate() -> FaultPlane {
        FaultPlane::new(FaultConfig {
            seed: 42,
            prediction_flip: 0.3,
            confidence_corruption: 0.2,
            demand_drift: 0.4,
            drift_magnitude: 0.75,
            solver_starvation: 0.5,
            rung_mask: 0b0110,
            vsync_delay: 0.3,
            queue_duplicate: 0.2,
            queue_drop: 0.2,
        })
    }

    fn events(n: u64) -> Vec<WebEvent> {
        (0..n)
            .map(|i| {
                WebEvent::new(
                    EventId::new(i),
                    EventType::Scroll,
                    None,
                    TimeUs::from_millis(100 * i),
                    CpuDemand::new(TimeUs::from_millis(2), CpuCycles::new(30_000_000)),
                )
            })
            .collect()
    }

    #[test]
    fn the_zero_fault_plane_never_perturbs_anything() {
        let mut session = FaultPlane::none().session();
        assert!(FaultPlane::none().is_none());
        let evs = events(10);
        assert!(session.mutate_events(&evs).is_none());
        let mut predicted = vec![(EventType::Click, CpuDemand::ZERO); 4];
        let before = predicted.clone();
        session.corrupt_predictions(&mut predicted);
        assert_eq!(predicted, before);
        let d = CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(1_000));
        assert_eq!(session.drift_demand(d), d);
        assert_eq!(session.starve_budget(200_000), 200_000);
        assert_eq!(
            session.delay_vsync(TimeUs::from_millis(5), TimeUs::from_micros(16_667)),
            TimeUs::from_millis(5)
        );
        assert_eq!(session.counts(), FaultCounts::default());
        // No RNG draw happened: the stream is still at its seed.
        assert_eq!(session.state, 0);
    }

    #[test]
    fn sessions_are_deterministic_per_seed() {
        let plane = moderate();
        let run = |plane: &FaultPlane| {
            let mut s = plane.session();
            let evs = s.mutate_events(&events(30));
            let mut predicted = vec![
                (EventType::Click, CpuDemand::ZERO),
                (EventType::Scroll, CpuDemand::ZERO),
                (EventType::Load, CpuDemand::ZERO),
            ];
            s.corrupt_predictions(&mut predicted);
            let budgets: Vec<usize> = (0..8).map(|_| s.starve_budget(60_000)).collect();
            (evs, predicted, budgets, s.counts())
        };
        assert_eq!(run(&plane), run(&plane));
        // A reseeded plane keeps the schedule but decorrelates the stream.
        let reseeded = plane.reseeded(7);
        assert_eq!(reseeded.config().prediction_flip, 0.3);
        assert_ne!(reseeded.config().seed, plane.config().seed);
        assert_eq!(plane.reseeded(7), plane.reseeded(7));
        assert_ne!(plane.reseeded(7), plane.reseeded(8));
    }

    #[test]
    fn prediction_flips_always_change_the_type() {
        for ty in EventType::ALL {
            for draw in 0..64 {
                assert_ne!(flip_type(ty, draw), ty);
            }
        }
    }

    #[test]
    fn starved_budgets_land_in_the_starvation_range() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 9,
            solver_starvation: 1.0,
            ..FaultConfig::disabled()
        });
        let mut s = plane.session();
        let mut saw_floor = false;
        for _ in 0..256 {
            let b = s.starve_budget(200_000);
            assert!(b <= 200_000 / 8);
            saw_floor |= b <= 1;
        }
        assert!(saw_floor, "geometric starvation reaches the zero/one floor");
        // A budget below 8 only has zero in its starvation range.
        assert_eq!(s.starve_budget(7), 0, "starvation reaches zero nodes");
        assert_eq!(s.counts().starved_solves, 257);
    }

    #[test]
    fn rung_masking_clamps_to_the_nearest_valid_rung() {
        use pes_acmp::Platform;
        let platform = Platform::exynos_5410();
        let configs = platform.configs();
        // Mask rungs 2 and 3: rung 2 clamps down to 1 (tie with 3→4? no:
        // distance 1 both ways, ties go to the cooler rung), rung 3 to 4.
        let plane = FaultPlane::new(FaultConfig {
            seed: 0,
            rung_mask: 0b1100,
            ..FaultConfig::disabled()
        });
        let mut s = plane.session();
        assert_eq!(s.mask_config(configs, configs[2]), configs[1]);
        assert_eq!(s.mask_config(configs, configs[3]), configs[4]);
        assert_eq!(s.mask_config(configs, configs[0]), configs[0]);
        assert_eq!(s.counts().masked_configs, 2);
        // A mask with every low rung set cannot bind when it covers all
        // rungs the platform has.
        let all_masked = FaultPlane::new(FaultConfig {
            seed: 0,
            rung_mask: u32::MAX,
            ..FaultConfig::disabled()
        });
        let mut s = all_masked.session();
        assert_eq!(s.mask_config(configs, configs[2]), configs[2]);
    }

    #[test]
    fn queue_faults_count_what_they_injected() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 3,
            queue_drop: 0.5,
            queue_duplicate: 0.5,
            ..FaultConfig::disabled()
        });
        let mut s = plane.session();
        let original = events(200);
        let mutated = s.mutate_events(&original).expect("classes enabled");
        let c = s.counts();
        assert!(c.dropped_events > 0 && c.duplicated_events > 0);
        assert_eq!(
            mutated.len(),
            original.len() - c.dropped_events + c.duplicated_events
        );
        // Arrival order is preserved.
        assert!(mutated.windows(2).all(|w| w[0].arrival() <= w[1].arrival()));
    }

    #[test]
    fn degradation_trace_tracks_worst_and_totals() {
        let mut trace = DegradationTrace::default();
        assert_eq!(trace.worst(), None);
        trace.observe(DegradationLevel::Exact);
        trace.observe(DegradationLevel::Exact);
        trace.observe(DegradationLevel::Anytime);
        assert_eq!(trace.worst(), Some(DegradationLevel::Anytime));
        trace.observe(DegradationLevel::Reactive);
        assert_eq!(trace.worst(), Some(DegradationLevel::Reactive));
        assert_eq!(trace.decisions(), 4);
        assert!(DegradationLevel::Exact < DegradationLevel::OndemandFloor);
        let mut other = DegradationTrace::default();
        other.observe(DegradationLevel::OndemandFloor);
        trace.merge(&other);
        assert_eq!(trace.worst(), Some(DegradationLevel::OndemandFloor));
        assert_eq!(trace.decisions(), 5);
    }

    #[test]
    fn demotion_walks_the_ladder_and_saturates() {
        let mut level = DegradationLevel::Exact;
        let mut walked = vec![level];
        for _ in 0..6 {
            level = level.demoted();
            walked.push(level);
        }
        assert_eq!(&walked[..5], &DegradationLevel::ALL);
        assert_eq!(level, DegradationLevel::OndemandFloor);
        assert_eq!(level.demoted(), DegradationLevel::OndemandFloor);
    }

    #[test]
    fn rates_are_clamped_and_nan_disables() {
        let plane = FaultPlane::new(FaultConfig {
            seed: 1,
            prediction_flip: 7.0,
            demand_drift: f64::NAN,
            vsync_delay: -3.0,
            ..FaultConfig::disabled()
        });
        assert_eq!(plane.config().prediction_flip, 1.0);
        assert_eq!(plane.config().demand_drift, 0.0);
        assert_eq!(plane.config().vsync_delay, 0.0);
    }
}
