//! The PES proactive runtime (Sec. 5) and the Oracle scheduler (Sec. 6.1).
//!
//! The runtime sits between the application and the rendering engine: it
//! continuously predicts the events likely to happen next, co-schedules them
//! with the outstanding events by solving the Eqn. 5 constrained
//! optimisation, speculatively executes the schedule ahead of the user's
//! inputs, parks the resulting frames in the Pending Frame Buffer, and
//! commits or squashes them as the actual inputs arrive. The Oracle runs the
//! same machinery with perfect knowledge of the future event sequence and of
//! every event's true workload.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{AcmpConfig, ActivityKind, CpuDemand, DvfsLadder, LadderCache, Platform};
use pes_dom::{BuiltPage, EventType};
use pes_ilp::{IlpError, OptionOrder, ScheduleItem, SolveEntry, SolveScratch, SolveTier};
use pes_predictor::{EventSequenceLearner, LearnerConfig, PredictScratch, SessionState};
use pes_schedulers::DemandProfiler;
use pes_webrt::{EventId, ExecutionEngine, QosOutcome, QosPolicy, WebEvent};
use pes_workload::Trace;

use crate::fault::{DegradationLevel, DegradationTrace, FaultCounts, FaultPlane, FaultSession};
use crate::memo::{window_shape, SolveGeneration, SolveMemo, SolveShard};
use crate::pfb::{PendingFrame, PendingFrameBuffer};
use crate::watchdog::{WatchdogConfig, WatchdogState};

/// Configuration of the PES runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PesConfig {
    /// Sequence-learner configuration (confidence threshold, LNES masking).
    pub learner: LearnerConfig,
    /// After strictly more than this many consecutive mispredictions the
    /// runtime disables prediction and falls back to reactive EBS behaviour
    /// (Sec. 5.4 uses 3).
    pub fallback_threshold: u32,
    /// Whether the fallback is enabled at all (ablation knob).
    pub enable_fallback: bool,
    /// Node budget for each optimizer invocation on windows of at most
    /// [`WIDE_WINDOW_THRESHOLD`] events. The PES-scale 6×17 window solves
    /// exactly under this budget.
    pub optimizer_node_limit: usize,
    /// Second budget tier: the node budget for windows wider than
    /// [`WIDE_WINDOW_THRESHOLD`] events — the Oracle's 12-event windows.
    /// Exact solves of such windows need millions of nodes, so the full
    /// first-tier budget bought nothing but a longer burn before the greedy
    /// fallback; with the anytime solver this tier instead bounds how long
    /// the best-first search refines its incumbent.
    pub wide_window_node_limit: usize,
    /// Relative incumbent-quality gap at which the wide-tier best-first
    /// search stops early: once the best open lower bound proves the
    /// incumbent within this fraction of the optimal cost *at its violation
    /// count*, the remaining budget buys at most that sliver and the search
    /// returns. `0.0` disables the stop (burn the full budget). The
    /// never-worse-than-greedy contract is unaffected — the stop can only
    /// end the search, never degrade the incumbent.
    pub incumbent_gap_epsilon: f64,
    /// Relative tolerance of the planner's demand/gap hysteresis: the
    /// planner re-uses its previously posed demand class (per event type)
    /// and inter-arrival gap until the fresh EWMA estimate drifts further
    /// than this fraction away, at which point it snaps to the fresh value.
    /// Estimates are noisy by construction (per-event workloads vary by
    /// ±30 % around their profile on the evaluation traces), so holding the
    /// posed window steady inside the noise band costs no real planning
    /// fidelity — and it is what lets the shape-keyed solve memoisation
    /// revalidate re-planned windows instead of re-solving every round.
    /// `0.0` disables the hysteresis (every round poses the freshly
    /// quantised estimates). Oracle windows use exact knowledge and are
    /// never held.
    pub planning_hysteresis: f64,
    /// The serving tier the replay *starts* at. [`DegradationLevel::Exact`]
    /// (the default) is the full proactive runtime; worse tiers cap it —
    /// `Anytime` bounds every solve to [`ANYTIME_TIER_NODE_CAP`] nodes,
    /// `Greedy` floors solves to their greedy seed, `Reactive` disables
    /// speculation and serves every event reactively, and `OndemandFloor`
    /// serves every event at the conservative profiling configuration.
    /// Fleet circuit breakers route units here while open; watchdog trips
    /// demote the live tier below this starting point.
    pub forced_tier: DegradationLevel,
    /// Per-replay watchdog deadlines (see [`crate::watchdog`]); the
    /// disabled default never charges, never trips.
    pub watchdog: WatchdogConfig,
}

/// Windows with more events than this use
/// [`PesConfig::wide_window_node_limit`] as their solver budget.
pub const WIDE_WINDOW_THRESHOLD: usize = 8;

/// Solver node cap of the [`DegradationLevel::Anytime`] serving tier: a
/// demoted replay still refines a best-first incumbent, just on a budget two
/// orders below the full tiers.
pub const ANYTIME_TIER_NODE_CAP: usize = 4_096;

impl Default for PesConfig {
    fn default() -> Self {
        PesConfig {
            learner: LearnerConfig::paper_defaults(),
            fallback_threshold: 3,
            enable_fallback: true,
            optimizer_node_limit: 200_000,
            wide_window_node_limit: 60_000,
            incumbent_gap_epsilon: 0.01,
            planning_hysteresis: 0.35,
            forced_tier: DegradationLevel::Exact,
            watchdog: WatchdogConfig::disabled(),
        }
    }
}

impl PesConfig {
    /// The paper's default configuration.
    pub fn paper_defaults() -> Self {
        PesConfig::default()
    }

    /// Returns a copy with a different prediction confidence threshold
    /// (the Fig. 14 sweep).
    pub fn with_confidence_threshold(mut self, threshold: f64) -> Self {
        self.learner = self.learner.with_confidence_threshold(threshold);
        self
    }

    /// Returns a copy with DOM (LNES) masking enabled or disabled
    /// (the Sec. 6.5 predictor-design ablation).
    pub fn with_lnes(mut self, use_lnes: bool) -> Self {
        self.learner = self.learner.with_lnes(use_lnes);
        self
    }

    /// Returns a copy with prediction rounds routed through the packed
    /// class-major f32 plane (`pes_predictor::PackedModel`) instead of the
    /// per-class f64 reference path. Off by default: the reference path
    /// keeps the pinned goldens bit-stable, the packed plane serves the
    /// fleet's batch tiers.
    pub fn with_packed_prediction(mut self, use_packed: bool) -> Self {
        self.learner = self.learner.with_packed(use_packed);
        self
    }

    /// Returns a copy with the misprediction fallback enabled or disabled.
    pub fn with_fallback(mut self, enable: bool) -> Self {
        self.enable_fallback = enable;
        self
    }

    /// Returns a copy with a different wide-tier incumbent-quality stop
    /// (`0.0` disables the early stop).
    pub fn with_incumbent_gap(mut self, epsilon: f64) -> Self {
        self.incumbent_gap_epsilon = epsilon.max(0.0);
        self
    }

    /// Returns a copy with a different planning-hysteresis tolerance
    /// (`0.0` disables the hysteresis).
    pub fn with_planning_hysteresis(mut self, tolerance: f64) -> Self {
        self.planning_hysteresis = tolerance.max(0.0);
        self
    }

    /// Returns a copy starting every replay at `tier` (breaker-forced
    /// degradation routing; [`DegradationLevel::Exact`] is the full
    /// runtime).
    pub fn with_forced_tier(mut self, tier: DegradationLevel) -> Self {
        self.forced_tier = tier;
        self
    }

    /// Returns a copy with per-replay watchdog deadlines
    /// ([`WatchdogConfig::disabled`] turns them off).
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }
}

/// The report produced by one trace replay under a proactive scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name ("PES" or "Oracle").
    pub policy: String,
    /// Application name.
    pub app: String,
    /// Number of events replayed.
    pub events: usize,
    /// Number of QoS violations.
    pub violations: usize,
    /// Total processor energy for the session.
    pub total_energy: EnergyUj,
    /// Energy spent on squashed speculative work.
    pub waste_energy: EnergyUj,
    /// Number of events that were checked against a speculative frame.
    pub predictions: usize,
    /// Number of those whose prediction was correct.
    pub correct_predictions: usize,
    /// Number of mispredictions (prediction checks that failed).
    pub mispredictions: usize,
    /// Frame-generation time wasted per misprediction (the Fig. 10 metric).
    pub misprediction_waste: Vec<TimeUs>,
    /// Pending-frame-buffer occupancy per actual event (the Fig. 9 series).
    pub pfb_trace: Vec<(usize, usize)>,
    /// Number of prediction rounds started.
    pub prediction_rounds: usize,
    /// Sum of the prediction degrees of all rounds.
    pub total_prediction_degree: usize,
    /// Per-event QoS outcomes.
    pub outcomes: Vec<(EventId, QosOutcome)>,
    /// Total branch-and-bound nodes explored by the optimizer.
    pub solver_nodes: usize,
    /// Number of optimizer invocations answered by the window memoisation
    /// ring (shape fingerprint matched and the posed window revalidated
    /// item-for-item against the cached one).
    pub solver_cache_hits: usize,
    /// Number of optimizer invocations that fell through to a solve.
    pub solver_cache_misses: usize,
    /// Number of candidate ring slots whose shape fingerprint matched and
    /// were therefore revalidated (`revalidations - hits` = fingerprint
    /// collisions).
    pub solver_cache_revalidations: usize,
    /// Where every scheduling decision of the replay landed on the
    /// graceful-degradation ladder: one observation per optimizer round
    /// (from its solve tier) and one per reactively served event.
    pub degradation: DegradationTrace,
    /// Events whose type had no demand estimate when served reactively
    /// (the [`DegradationLevel::OndemandFloor`] count): the runtime ran
    /// them at the conservative profiling configuration instead of
    /// panicking.
    pub unprofiled_fallbacks: usize,
    /// Faults the replay's [`FaultPlane`] actually injected, by class
    /// (all-zero under [`FaultPlane::none`]).
    pub fault_injections: FaultCounts,
    /// Session energy by activity kind, in [`ActivityKind::ALL`] order.
    /// The meter integrates each sample into exactly one kind, so the
    /// breakdown sums to [`RunReport::total_energy`] — the internal
    /// consistency the chaos tier asserts under every fault schedule.
    pub energy_breakdown: Vec<(ActivityKind, EnergyUj)>,
    /// Watchdog deadline crossings (each one demoted the serving tier one
    /// level); zero under the disabled default.
    pub watchdog_trips: usize,
    /// The serving tier the replay ended at:
    /// [`PesConfig::forced_tier`] demoted once per watchdog trip.
    pub final_tier: DegradationLevel,
}

impl RunReport {
    /// The fraction of events that violated their QoS target.
    pub fn violation_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.violations as f64 / self.events as f64
        }
    }

    /// Prediction accuracy over the events that had a speculative frame to
    /// check against (the Fig. 8 notion, measured online).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }

    /// Average misprediction waste in milliseconds (Fig. 10).
    pub fn average_waste_ms(&self) -> f64 {
        if self.misprediction_waste.is_empty() {
            0.0
        } else {
            self.misprediction_waste
                .iter()
                .map(|t| t.as_millis_f64())
                .sum::<f64>()
                / self.misprediction_waste.len() as f64
        }
    }

    /// Average prediction degree (events predicted per round).
    pub fn average_prediction_degree(&self) -> f64 {
        if self.prediction_rounds == 0 {
            0.0
        } else {
            self.total_prediction_degree as f64 / self.prediction_rounds as f64
        }
    }

    /// Fraction of optimizer invocations answered by the solve-memoisation
    /// ring.
    pub fn solver_cache_hit_rate(&self) -> f64 {
        let lookups = self.solver_cache_hits + self.solver_cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.solver_cache_hits as f64 / lookups as f64
        }
    }

    /// Fraction of the session energy wasted on squashed speculation.
    pub fn waste_energy_fraction(&self) -> f64 {
        if self.total_energy.as_microjoules() == 0.0 {
            0.0
        } else {
            self.waste_energy / self.total_energy
        }
    }
}

/// One planned speculative execution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpeculativeItem {
    event_type: EventType,
    demand: CpuDemand,
    config: AcmpConfig,
}

/// Relative planning-granularity quantisation for **demand estimates**. The
/// planner schedules on estimates (EWMA demand profiles), so wiggle in the
/// last couple percent of a value is estimation noise, not signal. Rounding
/// each input onto a grid of 1/32 of its own power-of-two magnitude keeps
/// the distortion ≤ ~1.6 % at every scale — light scroll demands and heavy
/// page loads alike — while making the *option rows* of consecutive
/// prediction rounds identical: the same quantised demand keys hit the
/// `LadderCache` and produce byte-equal item options, which is one half of
/// what the shape-keyed solve memoisation (see [`crate::memo`]) needs to
/// revalidate a re-planned window against a cached one. Oracle windows are
/// built from exact knowledge and are deliberately not quantised.
fn quantize(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    // Grid = 2^(floor(log2 v) − 5), at least 1: 32–64 grid steps per octave.
    let grid = ((1u64 << (63 - v.leading_zeros())) >> 5).max(1);
    // Saturate: top-octave values (possible via hostile trace JSON feeding
    // the EWMAs) must round down, not wrap.
    v.saturating_add(grid / 2) / grid * grid
}

/// Quantises a demand estimate onto the relative planning grid.
fn quantize_demand(demand: CpuDemand) -> CpuDemand {
    use pes_acmp::units::CpuCycles;
    CpuDemand::new(
        TimeUs::from_micros(quantize(demand.t_mem().as_micros())),
        CpuCycles::new(quantize(demand.ref_cycles().get())),
    )
}

/// Whether `fresh` lies within the relative hysteresis band of `held`.
fn within_band(held: u64, fresh: u64, tolerance: f64) -> bool {
    (fresh as f64 - held as f64).abs() <= tolerance * (held as f64).max(1.0)
}

/// Planning hysteresis (see [`PesConfig::planning_hysteresis`]): returns
/// the held value while `fresh` stays inside the tolerance band, snapping
/// the hold to `fresh` once it drifts out. The grid quantisation above
/// makes a *steady* input bit-stable; this is what keeps the posed window
/// stable under *drifting* estimates — the gap EWMA moves on every arrival
/// and per-event demands vary by double-digit percentages, so without the
/// hold the solve-memoisation key changed nearly every round (the measured
/// 0 % hit rate on the cnn replay that motivated the shape-tolerant
/// redesign).
fn held_value(held: &mut Option<u64>, fresh: u64, tolerance: f64) -> u64 {
    if tolerance <= 0.0 {
        return fresh;
    }
    match held {
        Some(current) if within_band(*current, fresh, tolerance) => *current,
        _ => {
            *held = Some(fresh);
            fresh
        }
    }
}

/// Per-event-type demand hysteresis: [`held_value`] applied to both demand
/// components at once (a drift in either snaps the whole class, so the held
/// demand is always one the profiler actually produced).
fn held_demand(
    held: &mut BTreeMap<EventType, CpuDemand>,
    event_type: EventType,
    fresh: CpuDemand,
    tolerance: f64,
) -> CpuDemand {
    if tolerance <= 0.0 {
        return fresh;
    }
    match held.get(&event_type) {
        Some(current)
            if within_band(
                current.t_mem().as_micros(),
                fresh.t_mem().as_micros(),
                tolerance,
            ) && within_band(
                current.ref_cycles().get(),
                fresh.ref_cycles().get(),
                tolerance,
            ) =>
        {
            *current
        }
        _ => {
            held.insert(event_type, fresh);
            fresh
        }
    }
}

/// Reusable per-replay state for the scheduling hot path: the solver's
/// search arena, the window memoisation cache and the buffers the planner
/// fills in place instead of allocating fresh `Vec`s every prediction round.
#[derive(Debug, Default)]
struct RunScratch {
    /// Branch-and-bound search arena, reused across every solve of the run.
    solve_scratch: SolveScratch,
    /// The shape-keyed solve-memoisation ring: a `u64` fingerprint per slot
    /// filters candidates, a full item compare revalidates them, and misses
    /// recycle the evicted slot's problem/solution allocations in place
    /// (see [`crate::memo`]).
    memo: SolveMemo,
    /// The window under construction; item slots (and their `options` Vecs)
    /// are overwritten in place.
    items_buf: Vec<ScheduleItem>,
    /// Pre-sorted option orders aligned with `items_buf`, copied out of the
    /// ladder cache's rows so a cache-miss re-pose never sorts.
    orders_buf: Vec<OptionOrder>,
    /// `(event type, demand)` aligned with `items_buf`.
    kinds_buf: Vec<(EventType, CpuDemand)>,
    /// Predicted `(event type, demand)` pairs for the current round.
    predicted_buf: Vec<(EventType, CpuDemand)>,
    /// Sequence-learner buffers: prediction rounds run without cloning the
    /// session state or allocating.
    predict_scratch: PredictScratch,
    /// Scratch session for planning past an outstanding event, reused across
    /// events instead of cloning the live session each time.
    session_scratch: Option<SessionState>,
    /// Demand-keyed memo over the precomputed DVFS ladder: window fills and
    /// reactive fallbacks evaluate the same few (quantised) demands over and
    /// over, so the 17-configuration evaluation usually comes from cache.
    ladder_cache: LadderCache,
    /// Hysteresis-held per-event-type demand classes the planner poses (see
    /// [`PesConfig::planning_hysteresis`]).
    planning_demands: BTreeMap<EventType, CpuDemand>,
    /// Hysteresis-held inter-arrival gap the planner poses.
    planning_gap_us: Option<u64>,
}

/// How the runtime knows about the future.
#[derive(Debug, Clone)]
enum Knowledge {
    /// The learned predictor of Sec. 5.2 plus online workload profiling.
    Learned(Box<EventSequenceLearner>),
    /// Perfect knowledge of the remaining event sequence and workloads.
    Oracle {
        /// How many future events the oracle schedules at once.
        window: usize,
    },
}

/// The proactive runtime shared by PES and the Oracle.
#[derive(Debug, Clone)]
pub struct ProactiveRuntime {
    knowledge: Knowledge,
    config: PesConfig,
}

/// The PES scheduler: learned prediction + global optimisation + speculation.
#[derive(Debug, Clone)]
pub struct PesScheduler {
    runtime: ProactiveRuntime,
}

impl PesScheduler {
    /// Creates a PES scheduler from a trained sequence learner.
    pub fn new(learner: EventSequenceLearner, config: PesConfig) -> Self {
        let mut learner = learner;
        learner.set_config(config.learner);
        PesScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Learned(Box::new(learner)),
                config,
            },
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &PesConfig {
        &self.runtime.config
    }

    /// Replays one trace under PES, building a private DVFS power plane.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        let plane = Arc::new(DvfsLadder::for_platform(platform));
        self.runtime.run(
            platform,
            &plane,
            page,
            trace,
            qos,
            "PES",
            &FaultPlane::none(),
            None,
            None,
        )
    }

    /// Replays one trace under PES on a shared DVFS power plane (one ladder
    /// per platform, built once by the experiment context).
    pub fn run_trace_with_plane(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.run_trace_with_plane_and_faults(platform, plane, page, trace, qos, &FaultPlane::none())
    }

    /// Replays one trace under PES on a shared power plane with a
    /// fault-injection plane. [`FaultPlane::none`] makes this identical to
    /// [`PesScheduler::run_trace_with_plane`], bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trace_with_plane_and_faults(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        faults: &FaultPlane,
    ) -> RunReport {
        self.runtime
            .run(platform, plane, page, trace, qos, "PES", faults, None, None)
    }

    /// Replays one trace under PES with the shared cross-replay solve cache
    /// plugged in: ring misses probe the read-only `shared` generation
    /// before solving cold, and cold solves are recorded into the caller's
    /// private write `shard` for the next publish. The report is
    /// **bit-identical** to [`PesScheduler::run_trace_with_plane_and_faults`]
    /// — a generation hit mirrors the cold-solve path, node charges
    /// included (see [`SolveMemo::solve_shared`]); only the shard's own
    /// counters observe the sharing.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trace_with_shared_memo(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        faults: &FaultPlane,
        shared: &SolveGeneration,
        shard: &mut SolveShard,
    ) -> RunReport {
        self.runtime.run(
            platform,
            plane,
            page,
            trace,
            qos,
            "PES",
            faults,
            Some(shared),
            Some(shard),
        )
    }
}

/// The Oracle scheduler: a priori knowledge of the entire event sequence.
#[derive(Debug, Clone)]
pub struct OracleScheduler {
    runtime: ProactiveRuntime,
}

impl OracleScheduler {
    /// Creates the Oracle with its default (effectively unbounded) window.
    pub fn new() -> Self {
        OracleScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Oracle { window: 12 },
                config: PesConfig::paper_defaults(),
            },
        }
    }

    /// Replays one trace under the Oracle, building a private power plane.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        let plane = Arc::new(DvfsLadder::for_platform(platform));
        self.runtime.run(
            platform,
            &plane,
            page,
            trace,
            qos,
            "Oracle",
            &FaultPlane::none(),
            None,
            None,
        )
    }

    /// Replays one trace under the Oracle on a shared DVFS power plane.
    pub fn run_trace_with_plane(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.run_trace_with_plane_and_faults(platform, plane, page, trace, qos, &FaultPlane::none())
    }

    /// Replays one trace under the Oracle on a shared power plane with a
    /// fault-injection plane. [`FaultPlane::none`] makes this identical to
    /// [`OracleScheduler::run_trace_with_plane`], bit for bit.
    #[allow(clippy::too_many_arguments)]
    pub fn run_trace_with_plane_and_faults(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        faults: &FaultPlane,
    ) -> RunReport {
        self.runtime.run(
            platform, plane, page, trace, qos, "Oracle", faults, None, None,
        )
    }
}

impl Default for OracleScheduler {
    fn default() -> Self {
        OracleScheduler::new()
    }
}

impl ProactiveRuntime {
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        policy: &str,
        faults: &FaultPlane,
        shared: Option<&SolveGeneration>,
        mut shard: Option<&mut SolveShard>,
    ) -> RunReport {
        let mut engine = ExecutionEngine::with_plane(platform, *qos, Arc::clone(plane));
        let mut profiler = DemandProfiler::new(platform);
        let mut session = SessionState::new(page.tree.clone());
        let mut pfb = PendingFrameBuffer::new();
        let mut plan: VecDeque<SpeculativeItem> = VecDeque::new();
        let mut rs = RunScratch::default();
        let mut fs = faults.session();
        let mut ladder = DegradationTrace::default();
        // The live serving tier: starts at the (breaker-)forced tier and
        // only descends — one watchdog trip, one demotion. Both the meters
        // and the demotions are deterministic, so a watchdogged replay is as
        // replayable as a plain one.
        let mut tier = self.config.forced_tier;
        let mut wd = WatchdogState::new(self.config.watchdog);

        // Queue faults perturb the delivered event sequence itself; with
        // both classes disabled the replay borrows the trace untouched.
        let mutated_events = fs.mutate_events(trace.events());
        let events: &[WebEvent] = mutated_events.as_deref().unwrap_or_else(|| trace.events());
        let mut consecutive_mispredictions: u32 = 0;
        let mut prediction_disabled = false;
        let mut gap_ewma = TimeUs::from_secs(2);
        let mut prev_arrival: Option<TimeUs> = None;

        let mut report = RunReport {
            policy: policy.to_string(),
            app: trace.app().to_string(),
            events: events.len(),
            violations: 0,
            total_energy: EnergyUj::ZERO,
            waste_energy: EnergyUj::ZERO,
            predictions: 0,
            correct_predictions: 0,
            mispredictions: 0,
            misprediction_waste: Vec::new(),
            pfb_trace: Vec::new(),
            prediction_rounds: 0,
            total_prediction_degree: 0,
            outcomes: Vec::new(),
            solver_nodes: 0,
            solver_cache_hits: 0,
            solver_cache_misses: 0,
            solver_cache_revalidations: 0,
            degradation: DegradationTrace::default(),
            unprofiled_fallbacks: 0,
            fault_injections: FaultCounts::default(),
            energy_breakdown: Vec::new(),
            watchdog_trips: 0,
            final_tier: tier,
        };

        for (idx, ev) in events.iter().enumerate() {
            // ---------------------------------------------------------------
            // (A) Speculate while the runtime is idle, before this input
            //     arrives. Each speculative execution produces a frame that
            //     waits in the PFB.
            // ---------------------------------------------------------------
            // Tiers at Reactive or worse never speculate: the breaker (or a
            // tripped watchdog) has taken the optimizer out of the loop.
            while !prediction_disabled
                && tier < DegradationLevel::Reactive
                && engine.cpu_free_at() < ev.arrival()
            {
                if plan.is_empty() {
                    if !pfb.is_empty() {
                        // A new prediction round only starts once every
                        // previously speculated frame has been consumed
                        // (Sec. 5.4).
                        break;
                    }
                    let (degree, nodes) = self.plan_round(
                        &mut rs,
                        &mut plan,
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        None,
                        &mut fs,
                        &mut ladder,
                        tier,
                        shared,
                        shard.as_deref_mut(),
                    );
                    report.solver_nodes += nodes;
                    for _ in 0..wd.charge_nodes(nodes) {
                        tier = tier.demoted();
                    }
                    if plan.is_empty() {
                        break;
                    }
                    report.prediction_rounds += 1;
                    report.total_prediction_degree += degree;
                }
                let Some(item) = plan.pop_front() else {
                    // Unreachable — the block above breaks when the plan
                    // stays empty — but the ladder fallback beats a panic.
                    break;
                };
                // If the prediction is about to come true, the work executed
                // speculatively is the *actual* next event's work; otherwise
                // the runtime renders a frame for a wrong event using its own
                // estimate of that event type's workload.
                let future_idx = idx + pfb.len();
                let exec_demand = match events.get(future_idx) {
                    Some(future) if future.event_type() == item.event_type => future.demand(),
                    _ => item.demand,
                };
                let synthetic = WebEvent::new(
                    EventId::new(1_000_000 + future_idx as u64),
                    item.event_type,
                    None,
                    engine.cpu_free_at(),
                    exec_demand,
                );
                // Thermal throttling: a masked rung clamps to the nearest
                // valid one before the work runs.
                let exec_config = fs.mask_config(engine.platform().configs(), item.config);
                let record = engine.execute_event(&synthetic, &exec_config, true);
                pfb.push(PendingFrame {
                    predicted_type: item.event_type,
                    record,
                });
                for _ in 0..wd.charge_event() {
                    tier = tier.demoted();
                }
            }

            // ---------------------------------------------------------------
            // (B) The actual input arrives: validate it against the PFB.
            // ---------------------------------------------------------------
            pfb.record_occupancy(idx);
            if let Some(prev) = prev_arrival {
                let gap = ev.arrival().saturating_sub(prev);
                gap_ewma = TimeUs::from_micros(
                    (gap_ewma.as_micros() as f64 * 0.7 + gap.as_micros() as f64 * 0.3) as u64,
                );
            }
            prev_arrival = Some(ev.arrival());

            let mut committed_from_pfb = false;
            if !pfb.is_empty() {
                report.predictions += 1;
                if let Some(frame) = pfb.commit_front(ev.event_type()) {
                    report.correct_predictions += 1;
                    consecutive_mispredictions = 0;
                    let ready_at =
                        fs.delay_vsync(frame.record.frame_ready_at, engine.vsync().period());
                    let outcome = engine.commit(ev, ready_at);
                    report.outcomes.push((ev.id(), outcome));
                    profiler.observe(
                        ev.event_type(),
                        frame.record.config,
                        frame.record.busy_time,
                        engine.dvfs(),
                    );
                    committed_from_pfb = true;
                } else {
                    // Misprediction: squash everything, remember the waste,
                    // and reboot prediction (Sec. 5.4).
                    report.mispredictions += 1;
                    consecutive_mispredictions += 1;
                    let mut front_waste = None;
                    pfb.squash_with(|frame| {
                        if front_waste.is_none() {
                            front_waste = Some(frame.record.busy_time);
                        }
                        engine.account_squashed_frame(&frame.record);
                    });
                    if let Some(waste) = front_waste {
                        report.misprediction_waste.push(waste);
                    }
                    plan.clear();
                    if self.config.enable_fallback
                        && consecutive_mispredictions > self.config.fallback_threshold
                    {
                        prediction_disabled = true;
                    }
                }
            }

            // ---------------------------------------------------------------
            // (C) No committed speculative frame: execute the event now,
            //     choosing its configuration through the global optimizer
            //     (or through reactive EBS behaviour when prediction is
            //     disabled or the event type is still being profiled).
            // ---------------------------------------------------------------
            if !committed_from_pfb {
                let start_time = engine.cpu_free_at().max(ev.arrival());
                let config = if tier >= DegradationLevel::Reactive
                    || prediction_disabled
                    || profiler.needs_profiling(ev.event_type())
                {
                    self.reactive_config(
                        &mut rs.ladder_cache,
                        &profiler,
                        &engine,
                        qos,
                        ev,
                        start_time,
                        &mut ladder,
                        tier,
                    )
                } else {
                    // `prediction_disabled` is false on this path, so the
                    // freshly planned speculation always replaces `plan`.
                    let (cfg, nodes) = self.plan_with_outstanding(
                        &mut rs,
                        &mut plan,
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        ev,
                        &mut fs,
                        &mut ladder,
                        tier,
                        shared,
                        shard.as_deref_mut(),
                    );
                    report.solver_nodes += nodes;
                    for _ in 0..wd.charge_nodes(nodes) {
                        tier = tier.demoted();
                    }
                    cfg
                };
                let config = fs.mask_config(engine.platform().configs(), config);
                let record = engine.execute_event(ev, &config, false);
                let ready_at = fs.delay_vsync(record.frame_ready_at, engine.vsync().period());
                let outcome = engine.commit(ev, ready_at);
                report.outcomes.push((ev.id(), outcome));
                profiler.observe(ev.event_type(), config, record.busy_time, engine.dvfs());
                for _ in 0..wd.charge_event() {
                    tier = tier.demoted();
                }
            }

            session.observe(ev);
        }

        // The engine's ledger counts violations at commit time; every commit
        // on this path also lands in `report.outcomes`, so the counter and
        // the scan agree (the differential suites pin this).
        report.violations = engine.violations();
        report.total_energy = engine.total_energy();
        report.waste_energy = engine.energy_for(ActivityKind::SpeculativeWaste);
        report.pfb_trace = pfb.occupancy_trace().to_vec();
        let memo_stats = rs.memo.stats();
        report.solver_cache_hits = memo_stats.hits;
        report.solver_cache_misses = memo_stats.misses;
        report.solver_cache_revalidations = memo_stats.revalidations;
        report.degradation = ladder;
        report.unprofiled_fallbacks = ladder.ondemand_floor;
        report.fault_injections = fs.counts();
        report.energy_breakdown = ActivityKind::ALL
            .iter()
            .map(|&kind| (kind, engine.energy_for(kind)))
            .collect();
        report.watchdog_trips = wd.trips();
        report.final_tier = tier;
        report
    }

    /// Reactive (EBS-equivalent) configuration choice for one event, served
    /// from the precomputed DVFS ladder through the replay's demand memo.
    /// Records the event on the degradation ladder: `Reactive` normally,
    /// `OndemandFloor` when the serving tier is pinned at the floor (a
    /// breaker routed the unit there, or the watchdog demoted it all the
    /// way down) or when the event type has no demand estimate at all —
    /// possible when a fault (or a hostile trace) delivers a type the
    /// profiler never observed — in which case the conservative profiling
    /// configuration serves the event instead of panicking.
    #[allow(clippy::too_many_arguments)]
    fn reactive_config(
        &self,
        ladder_cache: &mut LadderCache,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        ev: &WebEvent,
        start_time: TimeUs,
        ladder: &mut DegradationTrace,
        tier: DegradationLevel,
    ) -> AcmpConfig {
        if tier == DegradationLevel::OndemandFloor {
            ladder.observe(DegradationLevel::OndemandFloor);
            return profiler.profiling_config(ev.event_type(), engine.dvfs());
        }
        if profiler.needs_profiling(ev.event_type()) {
            ladder.observe(DegradationLevel::Reactive);
            return profiler.profiling_config(ev.event_type(), engine.dvfs());
        }
        let Some(estimate) = profiler.estimate(ev.event_type()) else {
            ladder.observe(DegradationLevel::OndemandFloor);
            return profiler.profiling_config(ev.event_type(), engine.dvfs());
        };
        ladder.observe(DegradationLevel::Reactive);
        let deadline = ev.arrival() + qos.target_for_event(ev.event_type());
        let budget = deadline.saturating_sub(start_time);
        let points = ladder_cache.points(engine.dvfs().ladder(), &estimate);
        DvfsLadder::cheapest_within(points, budget)
            .unwrap_or_else(|| engine.platform().max_performance_config())
    }

    /// Predicts the upcoming event sequence from the current state into
    /// `out` (cleared first; both it and the learner's `predict_scratch`
    /// buffers are reused across rounds, so a round is allocation-free).
    /// Learned predictions carry the hysteresis-held quantised demand
    /// classes the planner poses; Oracle predictions carry exact demands.
    #[allow(clippy::too_many_arguments)]
    fn predict_types(
        &self,
        out: &mut Vec<(EventType, CpuDemand)>,
        predict_scratch: &mut PredictScratch,
        planning_demands: &mut BTreeMap<EventType, CpuDemand>,
        session: &SessionState,
        profiler: &DemandProfiler,
        events: &[WebEvent],
        next_actual_idx: usize,
    ) {
        out.clear();
        match &self.knowledge {
            Knowledge::Learned(learner) => out.extend(
                learner
                    .predict_sequence_with(session, predict_scratch)
                    .iter()
                    .map_while(|p| {
                        profiler.estimate(p.event_type).map(|d| {
                            (
                                p.event_type,
                                held_demand(
                                    planning_demands,
                                    p.event_type,
                                    quantize_demand(d),
                                    self.config.planning_hysteresis,
                                ),
                            )
                        })
                    }),
            ),
            Knowledge::Oracle { window } => out.extend(
                events
                    .iter()
                    .skip(next_actual_idx)
                    .take(*window)
                    .map(|e| (e.event_type(), e.demand())),
            ),
        }
    }

    /// Solves the window currently held in `rs.items_buf` through the
    /// shape-keyed memo ring.
    ///
    /// The window is first normalised to start at time zero: the solver's
    /// recurrence `start = max(cursor, release)` is shift-invariant, and
    /// clamping a release or deadline that lies before `now` to zero is
    /// exact because the cursor never precedes `now` anyway. The memo then
    /// probes its ring with a fingerprint of the window *shape* — event
    /// count, the quantised demand-class vector and the per-item
    /// release/slack — and revalidates any candidate item-for-item, so a
    /// hit is bit-identical to a cold solve of the posed window. Because
    /// the planner quantises its noisy inputs onto the 1/32 grid *and*
    /// holds them with the [`PesConfig::planning_hysteresis`] band, a
    /// re-planned window of the same interaction burst lands on the same
    /// shape even while the EWMAs drift — the reuse the exact-key ring
    /// never achieved on realistic traces (0 hits on the cnn replay). On a
    /// miss the window is solved anytime with the run-wide
    /// scratch arena — exact when the budget suffices, otherwise the
    /// best-first incumbent (never worse than the greedy schedule the
    /// pre-anytime runtime cliff-dropped to) — into the recycled oldest
    /// slot, re-posed sort-free from the ladder cache's pre-sorted rows.
    /// Wide windows (more than [`WIDE_WINDOW_THRESHOLD`] events, the
    /// Oracle's 12-event rounds) use the second budget tier plus the
    /// ε incumbent-quality stop. Returns the number of new search nodes
    /// explored (0 on a hit) plus where the answering solve landed on the
    /// degradation ladder: `Exact` for a completed search, `Anytime` for a
    /// budget-capped incumbent, `Greedy` when the budget was starved to the
    /// floor (≤ 1 node — the incumbent is the greedy seed the best-first
    /// search starts from, so a starved solve is never worse than Greedy).
    /// A memo hit reports the tier of the cached solve it served.
    fn solve_window(
        &self,
        rs: &mut RunScratch,
        start_us: u64,
        fs: &mut FaultSession,
        tier: DegradationLevel,
        shared: Option<&SolveGeneration>,
        shard: Option<&mut SolveShard>,
    ) -> Result<(usize, DegradationLevel), IlpError> {
        for item in &mut rs.items_buf {
            item.release_us = item.release_us.saturating_sub(start_us);
            item.deadline_us = item.deadline_us.saturating_sub(start_us);
        }
        let shape = window_shape(
            rs.kinds_buf
                .iter()
                .map(|(_, d)| (d.t_mem().as_micros(), d.ref_cycles().get())),
            rs.items_buf.iter(),
        );
        let node_limit = if rs.items_buf.len() > WIDE_WINDOW_THRESHOLD {
            self.config.wide_window_node_limit
        } else {
            self.config.optimizer_node_limit
        };
        // The serving tier caps the budget before fault starvation: a
        // demoted replay refines a small incumbent (`Anytime`) or takes the
        // greedy seed (`Greedy`); tiers at `Reactive` or worse never reach
        // a solve at all. The tier→budget mapping lives in
        // [`SolveEntry::cap_node_limit`] so routing layers cap identically.
        let entry = match tier {
            DegradationLevel::Exact => SolveEntry::Exact,
            DegradationLevel::Anytime => SolveEntry::Anytime,
            _ => SolveEntry::Greedy,
        };
        let node_limit = entry.cap_node_limit(node_limit, ANYTIME_TIER_NODE_CAP);
        // Budget starvation injects here, between the tier choice and the
        // solve: a starved budget re-keys the memo lookup (parameters are
        // revalidated), so a starved round never serves a full-budget slot.
        let node_limit = fs.starve_budget(node_limit);
        // Learned windows are posed from memoised (quantised, held) ladder
        // rows whose sorted orders amortise across rounds, so their misses
        // re-pose sort-free; Oracle windows are posed from exact one-shot
        // demands, where pre-sorting rows nothing reuses would cost more
        // than the re-pose sort it saves.
        let orders = matches!(self.knowledge, Knowledge::Learned(_))
            .then(|| &rs.orders_buf[..rs.items_buf.len()]);
        let nodes = match (shared, shard) {
            (Some(generation), Some(shard)) => rs.memo.solve_shared(
                &rs.items_buf,
                orders,
                shape,
                node_limit,
                self.config.incumbent_gap_epsilon,
                &mut rs.solve_scratch,
                generation,
                shard,
            )?,
            _ => rs.memo.solve(
                &rs.items_buf,
                orders,
                shape,
                node_limit,
                self.config.incumbent_gap_epsilon,
                &mut rs.solve_scratch,
            )?,
        };
        let level = if node_limit <= 1 {
            DegradationLevel::Greedy
        } else {
            match rs.memo.tier() {
                SolveTier::Exact => DegradationLevel::Exact,
                SolveTier::Incumbent => DegradationLevel::Anytime,
            }
        };
        Ok((nodes, level))
    }

    /// Builds and solves the optimisation window for a fresh prediction round
    /// (no outstanding event), filling `plan` with the speculative schedule.
    /// Returns `(prediction degree, solver nodes explored)`.
    #[allow(clippy::too_many_arguments)]
    fn plan_round(
        &self,
        rs: &mut RunScratch,
        plan: &mut VecDeque<SpeculativeItem>,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        next_actual_idx: usize,
        gap_ewma: TimeUs,
        outstanding: Option<&WebEvent>,
        fs: &mut FaultSession,
        ladder: &mut DegradationTrace,
        tier: DegradationLevel,
        shared: Option<&SolveGeneration>,
        shard: Option<&mut SolveShard>,
    ) -> (usize, usize) {
        plan.clear();
        let now = engine.cpu_free_at();
        // The window cannot start before the outstanding event's arrival, so
        // anchoring it at `max(now, arrival)` is exact — and it makes the
        // normalised window independent of how early the CPU went idle,
        // which is what gives the solve memoisation its hits.
        let window_start = outstanding.map_or(now, |ev| now.max(ev.arrival()));
        self.predict_types(
            &mut rs.predicted_buf,
            &mut rs.predict_scratch,
            &mut rs.planning_demands,
            session,
            profiler,
            events,
            next_actual_idx + usize::from(outstanding.is_some()),
        );
        // Predictor faults perturb the round after the real predictor ran:
        // confidence corruption truncates it, type flips mispredict items,
        // and demand drift pushes the posed estimates past the hysteresis
        // band the planner holds them with.
        fs.corrupt_predictions(&mut rs.predicted_buf);
        for slot in rs.predicted_buf.iter_mut() {
            slot.1 = fs.drift_demand(slot.1);
        }
        if rs.predicted_buf.is_empty() && outstanding.is_none() {
            return (0, 0);
        }
        // The hysteresis-held inter-arrival gap (Learned knowledge only):
        // the EWMA drifts every round, the held value only snaps when the
        // drift leaves the tolerance band, so consecutive rounds of one
        // burst pose identical predicted deadlines and the memo ring can
        // revalidate them.
        let held_gap = held_value(
            &mut rs.planning_gap_us,
            quantize(gap_ewma.as_micros()),
            self.config.planning_hysteresis,
        );
        let sorted_rows = matches!(self.knowledge, Knowledge::Learned(_));
        rs.kinds_buf.clear();
        let mut used = 0usize;
        if let Some(ev) = outstanding {
            let demand = match &self.knowledge {
                Knowledge::Learned(_) => held_demand(
                    &mut rs.planning_demands,
                    ev.event_type(),
                    quantize_demand(
                        profiler
                            .estimate(ev.event_type())
                            .unwrap_or_else(|| ev.demand()),
                    ),
                    self.config.planning_hysteresis,
                ),
                Knowledge::Oracle { .. } => profiler
                    .estimate(ev.event_type())
                    .unwrap_or_else(|| ev.demand()),
            };
            let demand = fs.drift_demand(demand);
            Self::fill_schedule_item(
                rs,
                used,
                sorted_rows,
                engine,
                &demand,
                ev.arrival(),
                ev.arrival() + qos.target_for_event(ev.event_type()),
            );
            used += 1;
            rs.kinds_buf.push((ev.event_type(), demand));
        }
        for k in 0..rs.predicted_buf.len() {
            let (event_type, demand) = rs.predicted_buf[k];
            let expected_trigger = match &self.knowledge {
                Knowledge::Oracle { .. } => events
                    .get(next_actual_idx + usize::from(outstanding.is_some()) + k)
                    .map(|e| e.arrival())
                    .unwrap_or(now),
                Knowledge::Learned(_) => {
                    window_start + TimeUs::from_micros(held_gap * (k as u64 + 1))
                }
            };
            Self::fill_schedule_item(
                rs,
                used,
                sorted_rows,
                engine,
                &demand,
                window_start,
                expected_trigger + qos.target_for_event(event_type),
            );
            used += 1;
            rs.kinds_buf.push((event_type, demand));
        }
        rs.items_buf.truncate(used);
        let degree = rs.predicted_buf.len();
        let Ok((nodes, level)) =
            self.solve_window(rs, window_start.as_micros(), fs, tier, shared, shard)
        else {
            return (0, 0);
        };
        ladder.observe(level);
        plan.extend(
            rs.kinds_buf
                .iter()
                .zip(rs.memo.solution().choices.iter())
                .map(|(&(event_type, demand), &choice)| SpeculativeItem {
                    event_type,
                    demand,
                    config: engine.platform().configs()[choice],
                }),
        );
        (degree, nodes)
    }

    /// Plans the window that starts with an outstanding (already triggered)
    /// event: fills `plan` with the speculative schedule for the predicted
    /// events that follow it and returns the outstanding event's
    /// configuration plus the solver nodes explored.
    #[allow(clippy::too_many_arguments)]
    fn plan_with_outstanding(
        &self,
        rs: &mut RunScratch,
        plan: &mut VecDeque<SpeculativeItem>,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        idx: usize,
        gap_ewma: TimeUs,
        ev: &WebEvent,
        fs: &mut FaultSession,
        ladder: &mut DegradationTrace,
        tier: DegradationLevel,
        shared: Option<&SolveGeneration>,
        shard: Option<&mut SolveShard>,
    ) -> (AcmpConfig, usize) {
        // Predict the events that follow `ev` from the state in which `ev`
        // has already been observed. The scratch session is taken out of the
        // run scratch (and put back below) so it can be rebuilt in place —
        // it shares the live session's DOM, so this is allocation-free in
        // the steady state.
        let mut scratch_session = match rs.session_scratch.take() {
            Some(mut scratch) => {
                scratch.clone_from(session);
                scratch
            }
            None => session.clone(),
        };
        scratch_session.observe(ev);
        let (_degree, nodes) = self.plan_round(
            rs,
            plan,
            &scratch_session,
            profiler,
            engine,
            qos,
            events,
            idx,
            gap_ewma,
            Some(ev),
            fs,
            ladder,
            tier,
            shared,
            shard,
        );
        rs.session_scratch = Some(scratch_session);
        match plan.pop_front() {
            Some(first) => (first.config, nodes),
            None => (
                self.reactive_config(
                    &mut rs.ladder_cache,
                    profiler,
                    engine,
                    qos,
                    ev,
                    engine.cpu_free_at().max(ev.arrival()),
                    ladder,
                    tier,
                ),
                nodes,
            ),
        }
    }

    /// Writes the schedule item for one event into slot `used` of the run
    /// scratch's window buffers, reusing the slot's allocations. The
    /// per-configuration `(latency, energy)` table is a precomputed ladder
    /// row served through the replay's demand memo (the pre-ladder code
    /// re-derived every power term per configuration per fill, which
    /// dominated the Oracle's per-event cost). With `sorted_rows` set (the
    /// Learned planner, whose quantised + held demand classes recur across
    /// rounds) the row's cost- and duration-sorted orders are copied
    /// alongside the item, so a memo-miss re-pose builds its solver tables
    /// without sorting a single option; the Oracle's exact one-shot demands
    /// skip the orders — sorting rows nothing reuses costs more than the
    /// re-pose sort it would save.
    fn fill_schedule_item(
        rs: &mut RunScratch,
        used: usize,
        sorted_rows: bool,
        engine: &ExecutionEngine<'_>,
        demand: &CpuDemand,
        release: TimeUs,
        deadline: TimeUs,
    ) {
        if used == rs.items_buf.len() {
            rs.items_buf.push(ScheduleItem {
                release_us: 0,
                deadline_us: 0,
                options: Vec::with_capacity(engine.platform().configs().len()),
            });
        }
        if used == rs.orders_buf.len() {
            rs.orders_buf.push(OptionOrder::default());
        }
        let item = &mut rs.items_buf[used];
        item.release_us = release.as_micros();
        item.deadline_us = deadline.as_micros();
        if sorted_rows {
            let row = rs.ladder_cache.row(engine.dvfs().ladder(), demand);
            item.assign_options(
                row.points()
                    .iter()
                    .map(|p| (p.time.as_micros(), p.energy_uj)),
            );
            let order = &mut rs.orders_buf[used];
            order.by_cost.clear();
            order.by_cost.extend_from_slice(row.by_cost());
            order.by_duration.clear();
            order.by_duration.extend_from_slice(row.by_duration());
        } else {
            let points = rs.ladder_cache.points(engine.dvfs().ladder(), demand);
            item.assign_options(points.iter().map(|p| (p.time.as_micros(), p.energy_uj)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_predictor::Trainer;
    use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

    fn quick_learner(catalog: &AppCatalog) -> EventSequenceLearner {
        Trainer::with_config(pes_predictor::TrainingConfig {
            traces_per_app: 5,
            epochs: 40,
            ..Default::default()
        })
        .train_learner(catalog, LearnerConfig::paper_defaults())
    }

    #[test]
    fn pes_commits_speculative_frames_and_beats_naive_violation_rates() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 7);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report = pes.run_trace(&platform, &page, &trace, &qos);

        assert_eq!(report.events, trace.len());
        assert_eq!(report.outcomes.len(), trace.len());
        assert!(report.predictions > 0, "PES never speculated");
        assert!(
            report.correct_predictions > report.mispredictions,
            "prediction should be mostly correct: {} vs {}",
            report.correct_predictions,
            report.mispredictions
        );
        assert!(report.total_energy.as_millijoules() > 0.0);
        assert!(report.violation_rate() < 0.35);
        assert!(!report.pfb_trace.is_empty());
    }

    #[test]
    fn oracle_has_no_mispredictions_and_near_zero_violations() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("bbc").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 3);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let oracle = OracleScheduler::new();
        let report = oracle.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.waste_energy.as_microjoules(), 0.0);
        assert!(report.prediction_accuracy() > 0.99 || report.predictions == 0);
        assert!(
            report.violation_rate() < 0.1,
            "oracle violation rate {}",
            report.violation_rate()
        );
    }

    #[test]
    fn oracle_uses_no_more_energy_than_pes() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("espn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 11);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let pes_report = pes.run_trace(&platform, &page, &trace, &qos);
        let oracle_report = OracleScheduler::new().run_trace(&platform, &page, &trace, &qos);
        assert!(
            oracle_report.total_energy.as_microjoules()
                <= pes_report.total_energy.as_microjoules() * 1.05,
            "oracle {} mJ vs pes {} mJ",
            oracle_report.total_energy.as_millijoules(),
            pes_report.total_energy.as_millijoules()
        );
        // The oracle minimises energy subject to deadlines over fixed-size
        // windows, so a window boundary can occasionally trade one deadline
        // for a large energy saving (observed on this espn trace under the
        // vendored RNG's streams: oracle 1 violation at ~7 J vs PES 0 at
        // ~12 J). Allow exactly that one-violation slack; the energy bound
        // above and the near-zero oracle violation *rate* asserted in
        // `oracle_has_no_mispredictions_and_near_zero_violations` keep the
        // oracle-upper-bound property covered.
        assert!(oracle_report.violations <= pes_report.violations + 1);
    }

    #[test]
    fn a_hundred_percent_threshold_degenerates_to_reactive_behaviour() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("msn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 5);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // With an (unachievable) 100 % cumulative-confidence requirement the
        // predictor cannot predict ahead, so no speculation happens.
        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_confidence_threshold(1.0),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.predictions, 0);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.outcomes.len(), trace.len());
    }

    #[test]
    fn shared_memo_replays_are_bit_identical_and_hit_across_replays() {
        use pes_workload::TraceGenerator;

        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();
        let trace = TraceGenerator::new().generate(app, &page, 7);
        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let baseline = pes.run_trace_with_plane(&platform, &plane, &page, &trace, &qos);

        // Cold shared replay: the empty generation answers nothing, the
        // report must not know the difference, the shard fills up.
        let mut shard = SolveShard::new();
        let cold = pes.run_trace_with_shared_memo(
            &platform,
            &plane,
            &page,
            &trace,
            &qos,
            &FaultPlane::none(),
            &SolveGeneration::empty(),
            &mut shard,
        );
        assert_eq!(cold, baseline, "empty generation must be a no-op");
        assert!(!shard.is_empty(), "cold solves are recorded");
        assert_eq!(shard.shared_hits(), 0);

        // Publish and replay the identical session: still bit-identical,
        // but now the generation answers ring misses.
        let generation = SolveGeneration::publish(&SolveGeneration::empty(), &[shard], 256);
        let mut warm_shard = SolveShard::new();
        let warm = pes.run_trace_with_shared_memo(
            &platform,
            &plane,
            &page,
            &trace,
            &qos,
            &FaultPlane::none(),
            &generation,
            &mut warm_shard,
        );
        assert_eq!(warm, baseline, "generation hits must mirror cold solves");
        assert!(warm_shard.shared_hits() > 0, "replayed windows hit");
        // Cross-replay rate: the generation answers every repeated cold
        // window, so combined reuse beats the ring alone.
        let lookups = warm.solver_cache_hits + warm.solver_cache_misses;
        let combined = warm.solver_cache_hits + warm_shard.shared_hits();
        assert!(
            combined as f64 / lookups as f64 > baseline.solver_cache_hits as f64 / lookups as f64,
            "shared cache must lift the per-replay hit rate"
        );
    }

    #[test]
    fn steady_bursts_hit_the_solve_memoisation_cache() {
        use pes_acmp::units::CpuCycles;
        use pes_webrt::{EventId, WebEvent};
        use pes_workload::Trace;

        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // A perfectly steady scroll burst: constant inter-arrival gap and
        // identical demands. The gap EWMA and the demand profile both reach
        // integer fixpoints, so the normalised optimisation window repeats
        // bit-for-bit and re-planned rounds must come from the cache.
        let demand = CpuDemand::new(TimeUs::from_millis(4), CpuCycles::new(120_000_000));
        let events: Vec<WebEvent> = (0..40)
            .map(|i| {
                WebEvent::new(
                    EventId::new(i),
                    EventType::Scroll,
                    None,
                    TimeUs::from_millis(500 * (i + 1)),
                    demand,
                )
            })
            .collect();
        let trace = Trace::from_events("steady burst", 0, events);

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert!(
            report.solver_cache_hits > 0,
            "a steady burst should re-plan identical windows from cache \
             (hits {}, rounds {}, events {})",
            report.solver_cache_hits,
            report.prediction_rounds,
            report.events
        );
    }

    #[test]
    fn oracle_windows_land_in_the_wide_budget_tier() {
        // The Oracle plans 12 predicted events (13 items with the
        // outstanding one) — above the wide-window threshold, so its solves
        // run under the second budget tier; PES's learned windows (an
        // outstanding event plus a handful of predictions) stay below it on
        // the full first-tier budget.
        let oracle = OracleScheduler::new();
        let Knowledge::Oracle { window } = &oracle.runtime.knowledge else {
            panic!("oracle knowledge");
        };
        assert!(*window > WIDE_WINDOW_THRESHOLD);
        let config = PesConfig::paper_defaults();
        assert!(config.wide_window_node_limit < config.optimizer_node_limit);
        assert!(
            config.wide_window_node_limit >= 10_000,
            "enough budget to beat greedy"
        );
    }

    #[test]
    fn report_helpers_compute_sane_statistics() {
        let report = RunReport {
            policy: "PES".into(),
            app: "x".into(),
            events: 10,
            violations: 2,
            total_energy: EnergyUj::new(1_000.0),
            waste_energy: EnergyUj::new(50.0),
            predictions: 8,
            correct_predictions: 6,
            mispredictions: 2,
            misprediction_waste: vec![TimeUs::from_millis(10), TimeUs::from_millis(30)],
            pfb_trace: vec![(0, 1)],
            prediction_rounds: 2,
            total_prediction_degree: 9,
            outcomes: vec![],
            solver_nodes: 100,
            solver_cache_hits: 4,
            solver_cache_misses: 12,
            solver_cache_revalidations: 5,
            degradation: DegradationTrace::default(),
            unprofiled_fallbacks: 0,
            fault_injections: FaultCounts::default(),
            energy_breakdown: Vec::new(),
            watchdog_trips: 0,
            final_tier: DegradationLevel::Exact,
        };
        assert!((report.solver_cache_hit_rate() - 0.25).abs() < 1e-12);
        assert!((report.violation_rate() - 0.2).abs() < 1e-12);
        assert!((report.prediction_accuracy() - 0.75).abs() < 1e-12);
        assert!((report.average_waste_ms() - 20.0).abs() < 1e-9);
        assert!((report.average_prediction_degree() - 4.5).abs() < 1e-12);
        assert!((report.waste_energy_fraction() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn the_zero_fault_plane_replay_is_bit_identical() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();
        let plane = Arc::new(DvfsLadder::for_platform(&platform));

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let plain = pes.run_trace_with_plane(&platform, &plane, &page, &trace, &qos);
        let faulted = pes.run_trace_with_plane_and_faults(
            &platform,
            &plane,
            &page,
            &trace,
            &qos,
            &FaultPlane::none(),
        );
        assert_eq!(plain, faulted, "FaultPlane::none() must be a no-op");
        assert_eq!(plain.fault_injections, FaultCounts::default());
        assert_eq!(plain.unprofiled_fallbacks, 0);
        assert!(
            plain.degradation.decisions() > 0,
            "the ladder records unfaulted replays too"
        );
        // The meter attributes every sample to exactly one activity kind.
        let breakdown: f64 = plain
            .energy_breakdown
            .iter()
            .map(|(_, e)| e.as_microjoules())
            .sum();
        assert!(
            (breakdown - plain.total_energy.as_microjoules()).abs() < 0.5,
            "energy breakdown {} µJ vs total {} µJ",
            breakdown,
            plain.total_energy.as_microjoules()
        );
    }

    #[test]
    fn faulted_replays_are_deterministic_and_complete() {
        use crate::fault::FaultConfig;
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let faults = FaultPlane::new(FaultConfig {
            seed: 1234,
            prediction_flip: 0.25,
            confidence_corruption: 0.15,
            demand_drift: 0.4,
            drift_magnitude: 0.8,
            solver_starvation: 0.5,
            rung_mask: 0b0011_0000,
            vsync_delay: 0.2,
            queue_duplicate: 0.1,
            queue_drop: 0.1,
        });

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let a =
            pes.run_trace_with_plane_and_faults(&platform, &plane, &page, &trace, &qos, &faults);
        let b =
            pes.run_trace_with_plane_and_faults(&platform, &plane, &page, &trace, &qos, &faults);
        assert_eq!(a, b, "the fault plane must be replayable");
        assert!(a.fault_injections.total() > 0, "faults were scheduled");
        // Queue faults change the delivered sequence; every delivered event
        // still completes with an outcome.
        assert_eq!(a.outcomes.len(), a.events);
        assert_eq!(
            a.events,
            trace.len() - a.fault_injections.dropped_events + a.fault_injections.duplicated_events
        );
    }

    #[test]
    fn forced_reactive_tier_never_speculates() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_forced_tier(DegradationLevel::Reactive),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(
            report.predictions, 0,
            "a breaker-routed unit never speculates"
        );
        assert_eq!(report.solver_nodes, 0);
        assert_eq!(report.outcomes.len(), trace.len());
        assert!(report.degradation.reactive > 0);
        assert_eq!(report.final_tier, DegradationLevel::Reactive);
        assert_eq!(report.watchdog_trips, 0);
    }

    #[test]
    fn forced_floor_tier_serves_every_event_at_the_floor() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_forced_tier(DegradationLevel::OndemandFloor),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.degradation.ondemand_floor, trace.len());
        assert_eq!(report.unprofiled_fallbacks, trace.len());
        assert_eq!(report.final_tier, DegradationLevel::OndemandFloor);
    }

    #[test]
    fn watchdog_trips_demote_the_serving_tier() {
        use crate::watchdog::WatchdogConfig;
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // A five-event budget on a full-length trace must keep tripping and
        // walk the replay down to the floor.
        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_watchdog(WatchdogConfig {
                node_budget: 0,
                event_budget: 5,
            }),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert!(
            report.watchdog_trips >= 4,
            "trips: {}",
            report.watchdog_trips
        );
        assert_eq!(report.final_tier, DegradationLevel::OndemandFloor);
        assert!(report.degradation.ondemand_floor > 0);
        assert_eq!(report.outcomes.len(), report.events, "no event is lost");
        // Watchdogged replays stay deterministic.
        let again = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report, again);
    }

    #[test]
    fn a_node_budget_watchdog_caps_runaway_solves() {
        use crate::watchdog::WatchdogConfig;
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let unbounded = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let baseline = unbounded.run_trace(&platform, &page, &trace, &qos);
        assert!(baseline.solver_nodes > 200, "trace exercises the solver");

        let budget = 100;
        let watched = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_watchdog(WatchdogConfig {
                node_budget: budget,
                event_budget: 0,
            }),
        );
        let report = watched.run_trace(&platform, &page, &trace, &qos);
        assert!(report.watchdog_trips > 0);
        assert!(
            report.solver_nodes < baseline.solver_nodes,
            "demoted tiers must spend fewer nodes ({} vs {})",
            report.solver_nodes,
            baseline.solver_nodes
        );
        assert!(report.final_tier > DegradationLevel::Exact);
    }

    #[test]
    fn starved_solves_degrade_no_worse_than_greedy() {
        use crate::fault::FaultConfig;
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 2);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let faults = FaultPlane::new(FaultConfig {
            seed: 7,
            solver_starvation: 1.0,
            ..FaultConfig::disabled()
        });

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report =
            pes.run_trace_with_plane_and_faults(&platform, &plane, &page, &trace, &qos, &faults);
        assert!(report.fault_injections.starved_solves > 0);
        // Solve-served rounds land on Exact/Anytime/Greedy only; starvation
        // must never push an optimizer round below Greedy (reactive entries
        // come from profiling warm-up and fallbacks, not from solves).
        let solves =
            report.degradation.exact + report.degradation.anytime + report.degradation.greedy;
        assert!(solves > 0, "starved rounds still produce schedules");
        assert!(
            report.degradation.greedy > 0,
            "full starvation must reach the greedy floor"
        );
        assert_eq!(report.outcomes.len(), report.events);
    }
}
