//! The PES proactive runtime (Sec. 5) and the Oracle scheduler (Sec. 6.1).
//!
//! The runtime sits between the application and the rendering engine: it
//! continuously predicts the events likely to happen next, co-schedules them
//! with the outstanding events by solving the Eqn. 5 constrained
//! optimisation, speculatively executes the schedule ahead of the user's
//! inputs, parks the resulting frames in the Pending Frame Buffer, and
//! commits or squashes them as the actual inputs arrive. The Oracle runs the
//! same machinery with perfect knowledge of the future event sequence and of
//! every event's true workload.

use std::collections::VecDeque;
use std::sync::Arc;

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{AcmpConfig, ActivityKind, CpuDemand, DvfsLadder, LadderCache, Platform};
use pes_dom::{BuiltPage, EventType};
use pes_ilp::{IlpError, ScheduleItem, ScheduleProblem, ScheduleSolution, SolveScratch};
use pes_predictor::{EventSequenceLearner, LearnerConfig, PredictScratch, SessionState};
use pes_schedulers::DemandProfiler;
use pes_webrt::{EventId, ExecutionEngine, QosOutcome, QosPolicy, WebEvent};
use pes_workload::Trace;

use crate::pfb::{PendingFrame, PendingFrameBuffer};

/// Configuration of the PES runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PesConfig {
    /// Sequence-learner configuration (confidence threshold, LNES masking).
    pub learner: LearnerConfig,
    /// After strictly more than this many consecutive mispredictions the
    /// runtime disables prediction and falls back to reactive EBS behaviour
    /// (Sec. 5.4 uses 3).
    pub fallback_threshold: u32,
    /// Whether the fallback is enabled at all (ablation knob).
    pub enable_fallback: bool,
    /// Node budget for each optimizer invocation on windows of at most
    /// [`WIDE_WINDOW_THRESHOLD`] events. The PES-scale 6×17 window solves
    /// exactly under this budget.
    pub optimizer_node_limit: usize,
    /// Second budget tier: the node budget for windows wider than
    /// [`WIDE_WINDOW_THRESHOLD`] events — the Oracle's 12-event windows.
    /// Exact solves of such windows need millions of nodes, so the full
    /// first-tier budget bought nothing but a longer burn before the greedy
    /// fallback; with the anytime solver this tier instead bounds how long
    /// the best-first search refines its incumbent.
    pub wide_window_node_limit: usize,
}

/// Windows with more events than this use
/// [`PesConfig::wide_window_node_limit`] as their solver budget.
pub const WIDE_WINDOW_THRESHOLD: usize = 8;

impl Default for PesConfig {
    fn default() -> Self {
        PesConfig {
            learner: LearnerConfig::paper_defaults(),
            fallback_threshold: 3,
            enable_fallback: true,
            optimizer_node_limit: 200_000,
            wide_window_node_limit: 60_000,
        }
    }
}

impl PesConfig {
    /// The paper's default configuration.
    pub fn paper_defaults() -> Self {
        PesConfig::default()
    }

    /// Returns a copy with a different prediction confidence threshold
    /// (the Fig. 14 sweep).
    pub fn with_confidence_threshold(mut self, threshold: f64) -> Self {
        self.learner = self.learner.with_confidence_threshold(threshold);
        self
    }

    /// Returns a copy with DOM (LNES) masking enabled or disabled
    /// (the Sec. 6.5 predictor-design ablation).
    pub fn with_lnes(mut self, use_lnes: bool) -> Self {
        self.learner = self.learner.with_lnes(use_lnes);
        self
    }

    /// Returns a copy with the misprediction fallback enabled or disabled.
    pub fn with_fallback(mut self, enable: bool) -> Self {
        self.enable_fallback = enable;
        self
    }
}

/// The report produced by one trace replay under a proactive scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name ("PES" or "Oracle").
    pub policy: String,
    /// Application name.
    pub app: String,
    /// Number of events replayed.
    pub events: usize,
    /// Number of QoS violations.
    pub violations: usize,
    /// Total processor energy for the session.
    pub total_energy: EnergyUj,
    /// Energy spent on squashed speculative work.
    pub waste_energy: EnergyUj,
    /// Number of events that were checked against a speculative frame.
    pub predictions: usize,
    /// Number of those whose prediction was correct.
    pub correct_predictions: usize,
    /// Number of mispredictions (prediction checks that failed).
    pub mispredictions: usize,
    /// Frame-generation time wasted per misprediction (the Fig. 10 metric).
    pub misprediction_waste: Vec<TimeUs>,
    /// Pending-frame-buffer occupancy per actual event (the Fig. 9 series).
    pub pfb_trace: Vec<(usize, usize)>,
    /// Number of prediction rounds started.
    pub prediction_rounds: usize,
    /// Sum of the prediction degrees of all rounds.
    pub total_prediction_degree: usize,
    /// Per-event QoS outcomes.
    pub outcomes: Vec<(EventId, QosOutcome)>,
    /// Total branch-and-bound nodes explored by the optimizer.
    pub solver_nodes: usize,
    /// Number of optimizer invocations answered by the window memoisation
    /// cache (identical outstanding+predicted window signature).
    pub solver_cache_hits: usize,
}

impl RunReport {
    /// The fraction of events that violated their QoS target.
    pub fn violation_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.violations as f64 / self.events as f64
        }
    }

    /// Prediction accuracy over the events that had a speculative frame to
    /// check against (the Fig. 8 notion, measured online).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }

    /// Average misprediction waste in milliseconds (Fig. 10).
    pub fn average_waste_ms(&self) -> f64 {
        if self.misprediction_waste.is_empty() {
            0.0
        } else {
            self.misprediction_waste
                .iter()
                .map(|t| t.as_millis_f64())
                .sum::<f64>()
                / self.misprediction_waste.len() as f64
        }
    }

    /// Average prediction degree (events predicted per round).
    pub fn average_prediction_degree(&self) -> f64 {
        if self.prediction_rounds == 0 {
            0.0
        } else {
            self.total_prediction_degree as f64 / self.prediction_rounds as f64
        }
    }

    /// Fraction of the session energy wasted on squashed speculation.
    pub fn waste_energy_fraction(&self) -> f64 {
        if self.total_energy.as_microjoules() == 0.0 {
            0.0
        } else {
            self.waste_energy / self.total_energy
        }
    }
}

/// One planned speculative execution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpeculativeItem {
    event_type: EventType,
    demand: CpuDemand,
    config: AcmpConfig,
}

/// Number of recent windows the per-replay solve memoisation retains.
const SOLVE_CACHE_SIZE: usize = 8;

/// Relative planning-granularity quantisation. The planner schedules on
/// *estimates* (EWMA demand profiles, an EWMA inter-arrival gap), so wiggle
/// in the last couple percent of a value is estimation noise, not signal.
/// Rounding each input onto a grid of 1/32 of its own power-of-two magnitude
/// keeps the distortion ≤ ~1.6 % at every scale — light scroll demands and
/// heavy page loads alike — while making the optimisation window of a steady
/// interaction burst bit-identical from round to round, which is what lets
/// the solve memoisation answer re-planned windows from cache. Oracle
/// windows are built from exact knowledge and are deliberately not
/// quantised.
fn quantize(v: u64) -> u64 {
    if v == 0 {
        return 0;
    }
    // Grid = 2^(floor(log2 v) − 5), at least 1: 32–64 grid steps per octave.
    let grid = ((1u64 << (63 - v.leading_zeros())) >> 5).max(1);
    // Saturate: top-octave values (possible via hostile trace JSON feeding
    // the EWMAs) must round down, not wrap.
    v.saturating_add(grid / 2) / grid * grid
}

/// Quantises a demand estimate onto the relative planning grid.
fn quantize_demand(demand: CpuDemand) -> CpuDemand {
    use pes_acmp::units::CpuCycles;
    CpuDemand::new(
        TimeUs::from_micros(quantize(demand.t_mem().as_micros())),
        CpuCycles::new(quantize(demand.ref_cycles().get())),
    )
}

/// Reusable per-replay state for the scheduling hot path: the solver's
/// search arena, the window memoisation cache and the buffers the planner
/// fills in place instead of allocating fresh `Vec`s every prediction round.
#[derive(Debug, Default)]
struct RunScratch {
    /// Branch-and-bound search arena, reused across every solve of the run.
    solve_scratch: SolveScratch,
    /// Ring of recently solved windows, each kept whole so its precomputed
    /// cost-sorted option order lives alongside its solution. The normalised
    /// `items` vector is the memoisation key; a compare costs ~a hundred
    /// scalar equality checks against a multi-thousand-node solve.
    cache: Vec<(ScheduleProblem, ScheduleSolution)>,
    /// Next ring slot to evict.
    cache_cursor: usize,
    /// Ring slot holding the window solved (or found) most recently.
    cache_current: usize,
    /// Scratch solution buffer for cache-miss solves.
    solution_buf: ScheduleSolution,
    /// Solves answered from the cache.
    cache_hits: usize,
    /// The window under construction; item slots (and their `options` Vecs)
    /// are overwritten in place.
    items_buf: Vec<ScheduleItem>,
    /// `(event type, demand)` aligned with `items_buf`.
    kinds_buf: Vec<(EventType, CpuDemand)>,
    /// Predicted `(event type, demand)` pairs for the current round.
    predicted_buf: Vec<(EventType, CpuDemand)>,
    /// Sequence-learner buffers: prediction rounds run without cloning the
    /// session state or allocating.
    predict_scratch: PredictScratch,
    /// Scratch session for planning past an outstanding event, reused across
    /// events instead of cloning the live session each time.
    session_scratch: Option<SessionState>,
    /// Demand-keyed memo over the precomputed DVFS ladder: window fills and
    /// reactive fallbacks evaluate the same few (quantised) demands over and
    /// over, so the 17-configuration evaluation usually comes from cache.
    ladder_cache: LadderCache,
}

/// How the runtime knows about the future.
#[derive(Debug, Clone)]
enum Knowledge {
    /// The learned predictor of Sec. 5.2 plus online workload profiling.
    Learned(Box<EventSequenceLearner>),
    /// Perfect knowledge of the remaining event sequence and workloads.
    Oracle {
        /// How many future events the oracle schedules at once.
        window: usize,
    },
}

/// The proactive runtime shared by PES and the Oracle.
#[derive(Debug, Clone)]
pub struct ProactiveRuntime {
    knowledge: Knowledge,
    config: PesConfig,
}

/// The PES scheduler: learned prediction + global optimisation + speculation.
#[derive(Debug, Clone)]
pub struct PesScheduler {
    runtime: ProactiveRuntime,
}

impl PesScheduler {
    /// Creates a PES scheduler from a trained sequence learner.
    pub fn new(learner: EventSequenceLearner, config: PesConfig) -> Self {
        let mut learner = learner;
        learner.set_config(config.learner);
        PesScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Learned(Box::new(learner)),
                config,
            },
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &PesConfig {
        &self.runtime.config
    }

    /// Replays one trace under PES, building a private DVFS power plane.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        let plane = Arc::new(DvfsLadder::for_platform(platform));
        self.runtime.run(platform, &plane, page, trace, qos, "PES")
    }

    /// Replays one trace under PES on a shared DVFS power plane (one ladder
    /// per platform, built once by the experiment context).
    pub fn run_trace_with_plane(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.runtime.run(platform, plane, page, trace, qos, "PES")
    }
}

/// The Oracle scheduler: a priori knowledge of the entire event sequence.
#[derive(Debug, Clone)]
pub struct OracleScheduler {
    runtime: ProactiveRuntime,
}

impl OracleScheduler {
    /// Creates the Oracle with its default (effectively unbounded) window.
    pub fn new() -> Self {
        OracleScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Oracle { window: 12 },
                config: PesConfig::paper_defaults(),
            },
        }
    }

    /// Replays one trace under the Oracle, building a private power plane.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        let plane = Arc::new(DvfsLadder::for_platform(platform));
        self.runtime.run(platform, &plane, page, trace, qos, "Oracle")
    }

    /// Replays one trace under the Oracle on a shared DVFS power plane.
    pub fn run_trace_with_plane(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.runtime.run(platform, plane, page, trace, qos, "Oracle")
    }
}

impl Default for OracleScheduler {
    fn default() -> Self {
        OracleScheduler::new()
    }
}

impl ProactiveRuntime {
    #[allow(clippy::too_many_lines, clippy::too_many_arguments)]
    fn run(
        &self,
        platform: &Platform,
        plane: &Arc<DvfsLadder>,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        policy: &str,
    ) -> RunReport {
        let mut engine = ExecutionEngine::with_plane(platform, *qos, Arc::clone(plane));
        let mut profiler = DemandProfiler::new(platform);
        let mut session = SessionState::new(page.tree.clone());
        let mut pfb = PendingFrameBuffer::new();
        let mut plan: VecDeque<SpeculativeItem> = VecDeque::new();
        let mut rs = RunScratch::default();

        let events = trace.events();
        let mut consecutive_mispredictions: u32 = 0;
        let mut prediction_disabled = false;
        let mut gap_ewma = TimeUs::from_secs(2);
        let mut prev_arrival: Option<TimeUs> = None;

        let mut report = RunReport {
            policy: policy.to_string(),
            app: trace.app().to_string(),
            events: events.len(),
            violations: 0,
            total_energy: EnergyUj::ZERO,
            waste_energy: EnergyUj::ZERO,
            predictions: 0,
            correct_predictions: 0,
            mispredictions: 0,
            misprediction_waste: Vec::new(),
            pfb_trace: Vec::new(),
            prediction_rounds: 0,
            total_prediction_degree: 0,
            outcomes: Vec::new(),
            solver_nodes: 0,
            solver_cache_hits: 0,
        };

        for (idx, ev) in events.iter().enumerate() {
            // ---------------------------------------------------------------
            // (A) Speculate while the runtime is idle, before this input
            //     arrives. Each speculative execution produces a frame that
            //     waits in the PFB.
            // ---------------------------------------------------------------
            while !prediction_disabled && engine.cpu_free_at() < ev.arrival() {
                if plan.is_empty() {
                    if !pfb.is_empty() {
                        // A new prediction round only starts once every
                        // previously speculated frame has been consumed
                        // (Sec. 5.4).
                        break;
                    }
                    let (degree, nodes) = self.plan_round(
                        &mut rs,
                        &mut plan,
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        None,
                    );
                    report.solver_nodes += nodes;
                    if plan.is_empty() {
                        break;
                    }
                    report.prediction_rounds += 1;
                    report.total_prediction_degree += degree;
                }
                let item = plan.pop_front().expect("plan is non-empty");
                // If the prediction is about to come true, the work executed
                // speculatively is the *actual* next event's work; otherwise
                // the runtime renders a frame for a wrong event using its own
                // estimate of that event type's workload.
                let future_idx = idx + pfb.len();
                let exec_demand = match events.get(future_idx) {
                    Some(future) if future.event_type() == item.event_type => future.demand(),
                    _ => item.demand,
                };
                let synthetic = WebEvent::new(
                    EventId::new(1_000_000 + future_idx as u64),
                    item.event_type,
                    None,
                    engine.cpu_free_at(),
                    exec_demand,
                );
                let record = engine.execute_event(&synthetic, &item.config, true);
                pfb.push(PendingFrame {
                    predicted_type: item.event_type,
                    record,
                });
            }

            // ---------------------------------------------------------------
            // (B) The actual input arrives: validate it against the PFB.
            // ---------------------------------------------------------------
            pfb.record_occupancy(idx);
            if let Some(prev) = prev_arrival {
                let gap = ev.arrival().saturating_sub(prev);
                gap_ewma = TimeUs::from_micros(
                    (gap_ewma.as_micros() as f64 * 0.7 + gap.as_micros() as f64 * 0.3) as u64,
                );
            }
            prev_arrival = Some(ev.arrival());

            let mut committed_from_pfb = false;
            if !pfb.is_empty() {
                report.predictions += 1;
                if let Some(frame) = pfb.commit_front(ev.event_type()) {
                    report.correct_predictions += 1;
                    consecutive_mispredictions = 0;
                    let outcome = engine.commit(ev, frame.record.frame_ready_at);
                    report.outcomes.push((ev.id(), outcome));
                    profiler.observe(
                        ev.event_type(),
                        frame.record.config,
                        frame.record.busy_time,
                        engine.dvfs(),
                    );
                    committed_from_pfb = true;
                } else {
                    // Misprediction: squash everything, remember the waste,
                    // and reboot prediction (Sec. 5.4).
                    report.mispredictions += 1;
                    consecutive_mispredictions += 1;
                    let mut front_waste = None;
                    pfb.squash_with(|frame| {
                        if front_waste.is_none() {
                            front_waste = Some(frame.record.busy_time);
                        }
                        engine.account_squashed_frame(&frame.record);
                    });
                    if let Some(waste) = front_waste {
                        report.misprediction_waste.push(waste);
                    }
                    plan.clear();
                    if self.config.enable_fallback
                        && consecutive_mispredictions > self.config.fallback_threshold
                    {
                        prediction_disabled = true;
                    }
                }
            }

            // ---------------------------------------------------------------
            // (C) No committed speculative frame: execute the event now,
            //     choosing its configuration through the global optimizer
            //     (or through reactive EBS behaviour when prediction is
            //     disabled or the event type is still being profiled).
            // ---------------------------------------------------------------
            if !committed_from_pfb {
                let start_time = engine.cpu_free_at().max(ev.arrival());
                let config = if prediction_disabled || profiler.needs_profiling(ev.event_type()) {
                    self.reactive_config(&mut rs.ladder_cache, &profiler, &engine, qos, ev, start_time)
                } else {
                    // `prediction_disabled` is false on this path, so the
                    // freshly planned speculation always replaces `plan`.
                    let (cfg, nodes) = self.plan_with_outstanding(
                        &mut rs,
                        &mut plan,
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        ev,
                    );
                    report.solver_nodes += nodes;
                    cfg
                };
                let record = engine.execute_event(ev, &config, false);
                let outcome = engine.commit(ev, record.frame_ready_at);
                report.outcomes.push((ev.id(), outcome));
                profiler.observe(ev.event_type(), config, record.busy_time, engine.dvfs());
            }

            session.observe(ev);
        }

        report.violations = report
            .outcomes
            .iter()
            .filter(|(_, o)| o.violated())
            .count();
        report.total_energy = engine.total_energy();
        report.waste_energy = engine.energy_for(ActivityKind::SpeculativeWaste);
        report.pfb_trace = pfb.occupancy_trace().to_vec();
        report.solver_cache_hits = rs.cache_hits;
        report
    }

    /// Reactive (EBS-equivalent) configuration choice for one event, served
    /// from the precomputed DVFS ladder through the replay's demand memo.
    fn reactive_config(
        &self,
        ladder_cache: &mut LadderCache,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        ev: &WebEvent,
        start_time: TimeUs,
    ) -> AcmpConfig {
        if profiler.needs_profiling(ev.event_type()) {
            return profiler.profiling_config(ev.event_type(), engine.dvfs());
        }
        let estimate = profiler
            .estimate(ev.event_type())
            .expect("profiled types have estimates");
        let deadline = ev.arrival() + qos.target_for_event(ev.event_type());
        let budget = deadline.saturating_sub(start_time);
        let points = ladder_cache.points(engine.dvfs().ladder(), &estimate);
        DvfsLadder::cheapest_within(points, budget)
            .unwrap_or_else(|| engine.platform().max_performance_config())
    }

    /// Predicts the upcoming event sequence from the current state into
    /// `out` (cleared first; both it and the learner's `predict_scratch`
    /// buffers are reused across rounds, so a round is allocation-free).
    fn predict_types(
        &self,
        out: &mut Vec<(EventType, CpuDemand)>,
        predict_scratch: &mut PredictScratch,
        session: &SessionState,
        profiler: &DemandProfiler,
        events: &[WebEvent],
        next_actual_idx: usize,
    ) {
        out.clear();
        match &self.knowledge {
            Knowledge::Learned(learner) => out.extend(
                learner
                    .predict_sequence_with(session, predict_scratch)
                    .iter()
                    .map_while(|p| {
                        profiler
                            .estimate(p.event_type)
                            .map(|d| (p.event_type, quantize_demand(d)))
                    }),
            ),
            Knowledge::Oracle { window } => out.extend(
                events
                    .iter()
                    .skip(next_actual_idx)
                    .take(*window)
                    .map(|e| (e.event_type(), e.demand())),
            ),
        }
    }

    /// Solves the window currently held in `rs.items_buf`, memoising on the
    /// window signature.
    ///
    /// The window is first normalised to start at time zero: the solver's
    /// recurrence `start = max(cursor, release)` is shift-invariant, and
    /// clamping a release or deadline that lies before `now` to zero is
    /// exact because the cursor never precedes `now` anyway. The normalised
    /// `items` vector is the cache key, so a re-planned window whose
    /// *relative* shape is unchanged — same predicted kinds, demands, gap
    /// estimate and QoS targets, the common case across consecutive rounds
    /// of a steady interaction burst — reuses the cached
    /// [`ScheduleSolution`] (the planner only consumes `choices`, which are
    /// shift-invariant) without touching the solver. On a miss the window is
    /// solved anytime with the run-wide scratch arena — exact when the
    /// budget suffices, otherwise the best-first incumbent (never worse
    /// than the greedy schedule the pre-anytime runtime cliff-dropped to) —
    /// and replaces the cache. Wide windows (more than
    /// [`WIDE_WINDOW_THRESHOLD`] events, the Oracle's 12-event rounds) use
    /// the second budget tier: exactness is out of reach for them anyway,
    /// and a bounded incumbent search returns a better schedule than the
    /// old full-budget burn-to-greedy ever did, in a fraction of the time.
    /// Returns the number of new search nodes explored (0 on a hit).
    fn solve_window(&self, rs: &mut RunScratch, start_us: u64) -> Result<usize, IlpError> {
        for item in &mut rs.items_buf {
            item.release_us = item.release_us.saturating_sub(start_us);
            item.deadline_us = item.deadline_us.saturating_sub(start_us);
        }
        if let Some(hit) = rs
            .cache
            .iter()
            .position(|(problem, _)| problem.items() == rs.items_buf.as_slice())
        {
            rs.cache_hits += 1;
            rs.cache_current = hit;
            return Ok(0);
        }
        let node_limit = if rs.items_buf.len() > WIDE_WINDOW_THRESHOLD {
            self.config.wide_window_node_limit
        } else {
            self.config.optimizer_node_limit
        };
        // The ring's slots are allocated once (empty windows never match a
        // real one) and recycled in place on every miss: the evicted slot's
        // problem re-poses itself over the new window through
        // `ScheduleProblem::rebuild` — reusing its item slots and solver
        // tables — and the evicted solution's buffers become the solve
        // target, so a steady replay's misses are allocation-free.
        if rs.cache.is_empty() {
            rs.cache.resize_with(SOLVE_CACHE_SIZE, || {
                (ScheduleProblem::new(0, Vec::new()), ScheduleSolution::default())
            });
        }
        let slot = &mut rs.cache[rs.cache_cursor];
        slot.0.rebuild(0, &rs.items_buf);
        slot.0.set_node_limit(node_limit);
        match slot.0.solve_anytime_with(&mut rs.solve_scratch, &mut rs.solution_buf) {
            Ok(_) => {}
            Err(e) => {
                // Never let a half-filled slot answer a future lookup.
                slot.0.rebuild(0, &[]);
                return Err(e);
            }
        }
        let nodes = rs.solution_buf.nodes_explored;
        std::mem::swap(&mut slot.1, &mut rs.solution_buf);
        rs.cache_current = rs.cache_cursor;
        rs.cache_cursor = (rs.cache_cursor + 1) % SOLVE_CACHE_SIZE;
        Ok(nodes)
    }

    /// Builds and solves the optimisation window for a fresh prediction round
    /// (no outstanding event), filling `plan` with the speculative schedule.
    /// Returns `(prediction degree, solver nodes explored)`.
    #[allow(clippy::too_many_arguments)]
    fn plan_round(
        &self,
        rs: &mut RunScratch,
        plan: &mut VecDeque<SpeculativeItem>,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        next_actual_idx: usize,
        gap_ewma: TimeUs,
        outstanding: Option<&WebEvent>,
    ) -> (usize, usize) {
        plan.clear();
        let now = engine.cpu_free_at();
        // The window cannot start before the outstanding event's arrival, so
        // anchoring it at `max(now, arrival)` is exact — and it makes the
        // normalised window independent of how early the CPU went idle,
        // which is what gives the solve memoisation its hits.
        let window_start = outstanding.map_or(now, |ev| now.max(ev.arrival()));
        self.predict_types(
            &mut rs.predicted_buf,
            &mut rs.predict_scratch,
            session,
            profiler,
            events,
            next_actual_idx + usize::from(outstanding.is_some()),
        );
        if rs.predicted_buf.is_empty() && outstanding.is_none() {
            return (0, 0);
        }
        rs.kinds_buf.clear();
        let mut used = 0usize;
        if let Some(ev) = outstanding {
            let demand = match &self.knowledge {
                Knowledge::Learned(_) => quantize_demand(
                    profiler.estimate(ev.event_type()).unwrap_or_else(|| ev.demand()),
                ),
                Knowledge::Oracle { .. } => {
                    profiler.estimate(ev.event_type()).unwrap_or_else(|| ev.demand())
                }
            };
            Self::fill_schedule_item(
                &mut rs.items_buf,
                &mut rs.ladder_cache,
                used,
                engine,
                &demand,
                ev.arrival(),
                ev.arrival() + qos.target_for_event(ev.event_type()),
            );
            used += 1;
            rs.kinds_buf.push((ev.event_type(), demand));
        }
        for k in 0..rs.predicted_buf.len() {
            let (event_type, demand) = rs.predicted_buf[k];
            let expected_trigger = match &self.knowledge {
                Knowledge::Oracle { .. } => events
                    .get(next_actual_idx + usize::from(outstanding.is_some()) + k)
                    .map(|e| e.arrival())
                    .unwrap_or(now),
                Knowledge::Learned(_) => {
                    let gap = quantize(gap_ewma.as_micros());
                    window_start + TimeUs::from_micros(gap * (k as u64 + 1))
                }
            };
            Self::fill_schedule_item(
                &mut rs.items_buf,
                &mut rs.ladder_cache,
                used,
                engine,
                &demand,
                window_start,
                expected_trigger + qos.target_for_event(event_type),
            );
            used += 1;
            rs.kinds_buf.push((event_type, demand));
        }
        rs.items_buf.truncate(used);
        let degree = rs.predicted_buf.len();
        let Ok(nodes) = self.solve_window(rs, window_start.as_micros()) else {
            return (0, 0);
        };
        plan.extend(
            rs.kinds_buf
                .iter()
                .zip(rs.cache[rs.cache_current].1.choices.iter())
                .map(|(&(event_type, demand), &choice)| SpeculativeItem {
                    event_type,
                    demand,
                    config: engine.platform().configs()[choice],
                }),
        );
        (degree, nodes)
    }

    /// Plans the window that starts with an outstanding (already triggered)
    /// event: fills `plan` with the speculative schedule for the predicted
    /// events that follow it and returns the outstanding event's
    /// configuration plus the solver nodes explored.
    #[allow(clippy::too_many_arguments)]
    fn plan_with_outstanding(
        &self,
        rs: &mut RunScratch,
        plan: &mut VecDeque<SpeculativeItem>,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        idx: usize,
        gap_ewma: TimeUs,
        ev: &WebEvent,
    ) -> (AcmpConfig, usize) {
        // Predict the events that follow `ev` from the state in which `ev`
        // has already been observed. The scratch session is taken out of the
        // run scratch (and put back below) so it can be rebuilt in place —
        // it shares the live session's DOM, so this is allocation-free in
        // the steady state.
        let mut scratch_session = match rs.session_scratch.take() {
            Some(mut scratch) => {
                scratch.clone_from(session);
                scratch
            }
            None => session.clone(),
        };
        scratch_session.observe(ev);
        let (_degree, nodes) = self.plan_round(
            rs,
            plan,
            &scratch_session,
            profiler,
            engine,
            qos,
            events,
            idx,
            gap_ewma,
            Some(ev),
        );
        rs.session_scratch = Some(scratch_session);
        match plan.pop_front() {
            Some(first) => (first.config, nodes),
            None => (
                self.reactive_config(
                    &mut rs.ladder_cache,
                    profiler,
                    engine,
                    qos,
                    ev,
                    engine.cpu_free_at().max(ev.arrival()),
                ),
                nodes,
            ),
        }
    }

    /// Writes the schedule item for one event into slot `used` of `items`,
    /// reusing the slot's `options` allocation when one exists. The
    /// per-configuration `(latency, energy)` table is a precomputed ladder
    /// row served through the replay's demand memo: the pre-ladder code
    /// re-derived every power term per configuration per fill, which
    /// dominated the Oracle's per-event cost.
    fn fill_schedule_item(
        items: &mut Vec<ScheduleItem>,
        ladder_cache: &mut LadderCache,
        used: usize,
        engine: &ExecutionEngine<'_>,
        demand: &CpuDemand,
        release: TimeUs,
        deadline: TimeUs,
    ) {
        if used == items.len() {
            items.push(ScheduleItem {
                release_us: 0,
                deadline_us: 0,
                options: Vec::with_capacity(engine.platform().configs().len()),
            });
        }
        let item = &mut items[used];
        item.release_us = release.as_micros();
        item.deadline_us = deadline.as_micros();
        let points = ladder_cache.points(engine.dvfs().ladder(), demand);
        item.assign_options(points.iter().map(|p| (p.time.as_micros(), p.energy_uj)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_predictor::Trainer;
    use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

    fn quick_learner(catalog: &AppCatalog) -> EventSequenceLearner {
        Trainer::with_config(pes_predictor::TrainingConfig {
            traces_per_app: 5,
            epochs: 40,
            ..Default::default()
        })
        .train_learner(catalog, LearnerConfig::paper_defaults())
    }

    #[test]
    fn pes_commits_speculative_frames_and_beats_naive_violation_rates() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 7);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report = pes.run_trace(&platform, &page, &trace, &qos);

        assert_eq!(report.events, trace.len());
        assert_eq!(report.outcomes.len(), trace.len());
        assert!(report.predictions > 0, "PES never speculated");
        assert!(
            report.correct_predictions > report.mispredictions,
            "prediction should be mostly correct: {} vs {}",
            report.correct_predictions,
            report.mispredictions
        );
        assert!(report.total_energy.as_millijoules() > 0.0);
        assert!(report.violation_rate() < 0.35);
        assert!(!report.pfb_trace.is_empty());
    }

    #[test]
    fn oracle_has_no_mispredictions_and_near_zero_violations() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("bbc").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 3);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let oracle = OracleScheduler::new();
        let report = oracle.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.waste_energy.as_microjoules(), 0.0);
        assert!(report.prediction_accuracy() > 0.99 || report.predictions == 0);
        assert!(
            report.violation_rate() < 0.1,
            "oracle violation rate {}",
            report.violation_rate()
        );
    }

    #[test]
    fn oracle_uses_no_more_energy_than_pes() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("espn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 11);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let pes_report = pes.run_trace(&platform, &page, &trace, &qos);
        let oracle_report = OracleScheduler::new().run_trace(&platform, &page, &trace, &qos);
        assert!(
            oracle_report.total_energy.as_microjoules()
                <= pes_report.total_energy.as_microjoules() * 1.05,
            "oracle {} mJ vs pes {} mJ",
            oracle_report.total_energy.as_millijoules(),
            pes_report.total_energy.as_millijoules()
        );
        // The oracle minimises energy subject to deadlines over fixed-size
        // windows, so a window boundary can occasionally trade one deadline
        // for a large energy saving (observed on this espn trace under the
        // vendored RNG's streams: oracle 1 violation at ~7 J vs PES 0 at
        // ~12 J). Allow exactly that one-violation slack; the energy bound
        // above and the near-zero oracle violation *rate* asserted in
        // `oracle_has_no_mispredictions_and_near_zero_violations` keep the
        // oracle-upper-bound property covered.
        assert!(oracle_report.violations <= pes_report.violations + 1);
    }

    #[test]
    fn a_hundred_percent_threshold_degenerates_to_reactive_behaviour() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("msn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 5);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // With an (unachievable) 100 % cumulative-confidence requirement the
        // predictor cannot predict ahead, so no speculation happens.
        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_confidence_threshold(1.0),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.predictions, 0);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.outcomes.len(), trace.len());
    }

    #[test]
    fn steady_bursts_hit_the_solve_memoisation_cache() {
        use pes_acmp::units::CpuCycles;
        use pes_webrt::{EventId, WebEvent};
        use pes_workload::Trace;

        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // A perfectly steady scroll burst: constant inter-arrival gap and
        // identical demands. The gap EWMA and the demand profile both reach
        // integer fixpoints, so the normalised optimisation window repeats
        // bit-for-bit and re-planned rounds must come from the cache.
        let demand = CpuDemand::new(TimeUs::from_millis(4), CpuCycles::new(120_000_000));
        let events: Vec<WebEvent> = (0..40)
            .map(|i| {
                WebEvent::new(
                    EventId::new(i),
                    EventType::Scroll,
                    None,
                    TimeUs::from_millis(500 * (i + 1)),
                    demand,
                )
            })
            .collect();
        let trace = Trace::from_events("steady burst", 0, events);

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert!(
            report.solver_cache_hits > 0,
            "a steady burst should re-plan identical windows from cache \
             (hits {}, rounds {}, events {})",
            report.solver_cache_hits,
            report.prediction_rounds,
            report.events
        );
    }

    #[test]
    fn oracle_windows_land_in_the_wide_budget_tier() {
        // The Oracle plans 12 predicted events (13 items with the
        // outstanding one) — above the wide-window threshold, so its solves
        // run under the second budget tier; PES's learned windows (an
        // outstanding event plus a handful of predictions) stay below it on
        // the full first-tier budget.
        let oracle = OracleScheduler::new();
        let Knowledge::Oracle { window } = &oracle.runtime.knowledge else {
            panic!("oracle knowledge");
        };
        assert!(*window > WIDE_WINDOW_THRESHOLD);
        let config = PesConfig::paper_defaults();
        assert!(config.wide_window_node_limit < config.optimizer_node_limit);
        assert!(config.wide_window_node_limit >= 10_000, "enough budget to beat greedy");
    }

    #[test]
    fn report_helpers_compute_sane_statistics() {
        let report = RunReport {
            policy: "PES".into(),
            app: "x".into(),
            events: 10,
            violations: 2,
            total_energy: EnergyUj::new(1_000.0),
            waste_energy: EnergyUj::new(50.0),
            predictions: 8,
            correct_predictions: 6,
            mispredictions: 2,
            misprediction_waste: vec![TimeUs::from_millis(10), TimeUs::from_millis(30)],
            pfb_trace: vec![(0, 1)],
            prediction_rounds: 2,
            total_prediction_degree: 9,
            outcomes: vec![],
            solver_nodes: 100,
            solver_cache_hits: 4,
        };
        assert!((report.violation_rate() - 0.2).abs() < 1e-12);
        assert!((report.prediction_accuracy() - 0.75).abs() < 1e-12);
        assert!((report.average_waste_ms() - 20.0).abs() < 1e-9);
        assert!((report.average_prediction_degree() - 4.5).abs() < 1e-12);
        assert!((report.waste_energy_fraction() - 0.05).abs() < 1e-12);
    }
}
