//! The PES proactive runtime (Sec. 5) and the Oracle scheduler (Sec. 6.1).
//!
//! The runtime sits between the application and the rendering engine: it
//! continuously predicts the events likely to happen next, co-schedules them
//! with the outstanding events by solving the Eqn. 5 constrained
//! optimisation, speculatively executes the schedule ahead of the user's
//! inputs, parks the resulting frames in the Pending Frame Buffer, and
//! commits or squashes them as the actual inputs arrive. The Oracle runs the
//! same machinery with perfect knowledge of the future event sequence and of
//! every event's true workload.

use std::collections::VecDeque;

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{AcmpConfig, ActivityKind, CpuDemand, Platform};
use pes_dom::{BuiltPage, EventType};
use pes_ilp::{ScheduleItem, ScheduleOption, ScheduleProblem};
use pes_predictor::{EventSequenceLearner, LearnerConfig, SessionState};
use pes_schedulers::DemandProfiler;
use pes_webrt::{EventId, ExecutionEngine, QosOutcome, QosPolicy, WebEvent};
use pes_workload::Trace;

use crate::pfb::{PendingFrame, PendingFrameBuffer};

/// Configuration of the PES runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PesConfig {
    /// Sequence-learner configuration (confidence threshold, LNES masking).
    pub learner: LearnerConfig,
    /// After strictly more than this many consecutive mispredictions the
    /// runtime disables prediction and falls back to reactive EBS behaviour
    /// (Sec. 5.4 uses 3).
    pub fallback_threshold: u32,
    /// Whether the fallback is enabled at all (ablation knob).
    pub enable_fallback: bool,
    /// Node budget for each optimizer invocation.
    pub optimizer_node_limit: usize,
}

impl Default for PesConfig {
    fn default() -> Self {
        PesConfig {
            learner: LearnerConfig::paper_defaults(),
            fallback_threshold: 3,
            enable_fallback: true,
            optimizer_node_limit: 200_000,
        }
    }
}

impl PesConfig {
    /// The paper's default configuration.
    pub fn paper_defaults() -> Self {
        PesConfig::default()
    }

    /// Returns a copy with a different prediction confidence threshold
    /// (the Fig. 14 sweep).
    pub fn with_confidence_threshold(mut self, threshold: f64) -> Self {
        self.learner = self.learner.with_confidence_threshold(threshold);
        self
    }

    /// Returns a copy with DOM (LNES) masking enabled or disabled
    /// (the Sec. 6.5 predictor-design ablation).
    pub fn with_lnes(mut self, use_lnes: bool) -> Self {
        self.learner = self.learner.with_lnes(use_lnes);
        self
    }

    /// Returns a copy with the misprediction fallback enabled or disabled.
    pub fn with_fallback(mut self, enable: bool) -> Self {
        self.enable_fallback = enable;
        self
    }
}

/// The report produced by one trace replay under a proactive scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Policy name ("PES" or "Oracle").
    pub policy: String,
    /// Application name.
    pub app: String,
    /// Number of events replayed.
    pub events: usize,
    /// Number of QoS violations.
    pub violations: usize,
    /// Total processor energy for the session.
    pub total_energy: EnergyUj,
    /// Energy spent on squashed speculative work.
    pub waste_energy: EnergyUj,
    /// Number of events that were checked against a speculative frame.
    pub predictions: usize,
    /// Number of those whose prediction was correct.
    pub correct_predictions: usize,
    /// Number of mispredictions (prediction checks that failed).
    pub mispredictions: usize,
    /// Frame-generation time wasted per misprediction (the Fig. 10 metric).
    pub misprediction_waste: Vec<TimeUs>,
    /// Pending-frame-buffer occupancy per actual event (the Fig. 9 series).
    pub pfb_trace: Vec<(usize, usize)>,
    /// Number of prediction rounds started.
    pub prediction_rounds: usize,
    /// Sum of the prediction degrees of all rounds.
    pub total_prediction_degree: usize,
    /// Per-event QoS outcomes.
    pub outcomes: Vec<(EventId, QosOutcome)>,
    /// Total branch-and-bound nodes explored by the optimizer.
    pub solver_nodes: usize,
}

impl RunReport {
    /// The fraction of events that violated their QoS target.
    pub fn violation_rate(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.violations as f64 / self.events as f64
        }
    }

    /// Prediction accuracy over the events that had a speculative frame to
    /// check against (the Fig. 8 notion, measured online).
    pub fn prediction_accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.correct_predictions as f64 / self.predictions as f64
        }
    }

    /// Average misprediction waste in milliseconds (Fig. 10).
    pub fn average_waste_ms(&self) -> f64 {
        if self.misprediction_waste.is_empty() {
            0.0
        } else {
            self.misprediction_waste
                .iter()
                .map(|t| t.as_millis_f64())
                .sum::<f64>()
                / self.misprediction_waste.len() as f64
        }
    }

    /// Average prediction degree (events predicted per round).
    pub fn average_prediction_degree(&self) -> f64 {
        if self.prediction_rounds == 0 {
            0.0
        } else {
            self.total_prediction_degree as f64 / self.prediction_rounds as f64
        }
    }

    /// Fraction of the session energy wasted on squashed speculation.
    pub fn waste_energy_fraction(&self) -> f64 {
        if self.total_energy.as_microjoules() == 0.0 {
            0.0
        } else {
            self.waste_energy / self.total_energy
        }
    }
}

/// One planned speculative execution.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpeculativeItem {
    event_type: EventType,
    demand: CpuDemand,
    config: AcmpConfig,
}

/// How the runtime knows about the future.
#[derive(Debug, Clone)]
enum Knowledge {
    /// The learned predictor of Sec. 5.2 plus online workload profiling.
    Learned(Box<EventSequenceLearner>),
    /// Perfect knowledge of the remaining event sequence and workloads.
    Oracle {
        /// How many future events the oracle schedules at once.
        window: usize,
    },
}

/// The proactive runtime shared by PES and the Oracle.
#[derive(Debug, Clone)]
pub struct ProactiveRuntime {
    knowledge: Knowledge,
    config: PesConfig,
}

/// The PES scheduler: learned prediction + global optimisation + speculation.
#[derive(Debug, Clone)]
pub struct PesScheduler {
    runtime: ProactiveRuntime,
}

impl PesScheduler {
    /// Creates a PES scheduler from a trained sequence learner.
    pub fn new(learner: EventSequenceLearner, config: PesConfig) -> Self {
        let mut learner = learner;
        learner.set_config(config.learner);
        PesScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Learned(Box::new(learner)),
                config,
            },
        }
    }

    /// The runtime configuration.
    pub fn config(&self) -> &PesConfig {
        &self.runtime.config
    }

    /// Replays one trace under PES.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.runtime.run(platform, page, trace, qos, "PES")
    }
}

/// The Oracle scheduler: a priori knowledge of the entire event sequence.
#[derive(Debug, Clone)]
pub struct OracleScheduler {
    runtime: ProactiveRuntime,
}

impl OracleScheduler {
    /// Creates the Oracle with its default (effectively unbounded) window.
    pub fn new() -> Self {
        OracleScheduler {
            runtime: ProactiveRuntime {
                knowledge: Knowledge::Oracle { window: 12 },
                config: PesConfig::paper_defaults(),
            },
        }
    }

    /// Replays one trace under the Oracle.
    pub fn run_trace(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
    ) -> RunReport {
        self.runtime.run(platform, page, trace, qos, "Oracle")
    }
}

impl Default for OracleScheduler {
    fn default() -> Self {
        OracleScheduler::new()
    }
}

impl ProactiveRuntime {
    #[allow(clippy::too_many_lines)]
    fn run(
        &self,
        platform: &Platform,
        page: &BuiltPage,
        trace: &Trace,
        qos: &QosPolicy,
        policy: &str,
    ) -> RunReport {
        let mut engine = ExecutionEngine::new(platform, *qos);
        let mut profiler = DemandProfiler::new(platform);
        let mut session = SessionState::new(page.tree.clone());
        let mut pfb = PendingFrameBuffer::new();
        let mut plan: VecDeque<SpeculativeItem> = VecDeque::new();

        let events = trace.events();
        let mut consecutive_mispredictions: u32 = 0;
        let mut prediction_disabled = false;
        let mut gap_ewma = TimeUs::from_secs(2);
        let mut prev_arrival: Option<TimeUs> = None;

        let mut report = RunReport {
            policy: policy.to_string(),
            app: trace.app().to_string(),
            events: events.len(),
            violations: 0,
            total_energy: EnergyUj::ZERO,
            waste_energy: EnergyUj::ZERO,
            predictions: 0,
            correct_predictions: 0,
            mispredictions: 0,
            misprediction_waste: Vec::new(),
            pfb_trace: Vec::new(),
            prediction_rounds: 0,
            total_prediction_degree: 0,
            outcomes: Vec::new(),
            solver_nodes: 0,
        };

        for (idx, ev) in events.iter().enumerate() {
            // ---------------------------------------------------------------
            // (A) Speculate while the runtime is idle, before this input
            //     arrives. Each speculative execution produces a frame that
            //     waits in the PFB.
            // ---------------------------------------------------------------
            while !prediction_disabled && engine.cpu_free_at() < ev.arrival() {
                if plan.is_empty() {
                    if !pfb.is_empty() {
                        // A new prediction round only starts once every
                        // previously speculated frame has been consumed
                        // (Sec. 5.4).
                        break;
                    }
                    let (new_plan, degree, nodes) = self.plan_round(
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        None,
                    );
                    report.solver_nodes += nodes;
                    if new_plan.is_empty() {
                        break;
                    }
                    report.prediction_rounds += 1;
                    report.total_prediction_degree += degree;
                    plan = new_plan;
                }
                let item = plan.pop_front().expect("plan is non-empty");
                // If the prediction is about to come true, the work executed
                // speculatively is the *actual* next event's work; otherwise
                // the runtime renders a frame for a wrong event using its own
                // estimate of that event type's workload.
                let future_idx = idx + pfb.len();
                let exec_demand = match events.get(future_idx) {
                    Some(future) if future.event_type() == item.event_type => future.demand(),
                    _ => item.demand,
                };
                let synthetic = WebEvent::new(
                    EventId::new(1_000_000 + future_idx as u64),
                    item.event_type,
                    None,
                    engine.cpu_free_at(),
                    exec_demand,
                );
                let record = engine.execute_event(&synthetic, &item.config, true);
                pfb.push(PendingFrame {
                    predicted_type: item.event_type,
                    record,
                });
            }

            // ---------------------------------------------------------------
            // (B) The actual input arrives: validate it against the PFB.
            // ---------------------------------------------------------------
            pfb.record_occupancy(idx);
            if let Some(prev) = prev_arrival {
                let gap = ev.arrival().saturating_sub(prev);
                gap_ewma = TimeUs::from_micros(
                    (gap_ewma.as_micros() as f64 * 0.7 + gap.as_micros() as f64 * 0.3) as u64,
                );
            }
            prev_arrival = Some(ev.arrival());

            let mut committed_from_pfb = false;
            if !pfb.is_empty() {
                report.predictions += 1;
                if let Some(frame) = pfb.commit_front(ev.event_type()) {
                    report.correct_predictions += 1;
                    consecutive_mispredictions = 0;
                    let outcome = engine.commit(ev, frame.record.frame_ready_at);
                    report.outcomes.push((ev.id(), outcome));
                    profiler.observe(
                        ev.event_type(),
                        frame.record.config,
                        frame.record.busy_time,
                        engine.dvfs(),
                    );
                    committed_from_pfb = true;
                } else {
                    // Misprediction: squash everything, remember the waste,
                    // and reboot prediction (Sec. 5.4).
                    report.mispredictions += 1;
                    consecutive_mispredictions += 1;
                    let squashed = pfb.squash_all();
                    if let Some(front) = squashed.first() {
                        report.misprediction_waste.push(front.record.busy_time);
                    }
                    for frame in &squashed {
                        engine.account_squashed_frame(&frame.record);
                    }
                    plan.clear();
                    if self.config.enable_fallback
                        && consecutive_mispredictions > self.config.fallback_threshold
                    {
                        prediction_disabled = true;
                    }
                }
            }

            // ---------------------------------------------------------------
            // (C) No committed speculative frame: execute the event now,
            //     choosing its configuration through the global optimizer
            //     (or through reactive EBS behaviour when prediction is
            //     disabled or the event type is still being profiled).
            // ---------------------------------------------------------------
            if !committed_from_pfb {
                let start_time = engine.cpu_free_at().max(ev.arrival());
                let config = if prediction_disabled || profiler.needs_profiling(ev.event_type()) {
                    self.reactive_config(&profiler, &engine, qos, ev, start_time)
                } else {
                    let (cfg, new_plan, nodes) = self.plan_with_outstanding(
                        &session,
                        &profiler,
                        &engine,
                        qos,
                        events,
                        idx,
                        gap_ewma,
                        ev,
                    );
                    report.solver_nodes += nodes;
                    if !prediction_disabled {
                        plan = new_plan;
                    }
                    cfg
                };
                let record = engine.execute_event(ev, &config, false);
                let outcome = engine.commit(ev, record.frame_ready_at);
                report.outcomes.push((ev.id(), outcome));
                profiler.observe(ev.event_type(), config, record.busy_time, engine.dvfs());
            }

            session.observe(ev);
        }

        report.violations = report
            .outcomes
            .iter()
            .filter(|(_, o)| o.violated())
            .count();
        report.total_energy = engine.total_energy();
        report.waste_energy = engine.energy_for(ActivityKind::SpeculativeWaste);
        report.pfb_trace = pfb.occupancy_trace().to_vec();
        report
    }

    /// Reactive (EBS-equivalent) configuration choice for one event.
    fn reactive_config(
        &self,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        ev: &WebEvent,
        start_time: TimeUs,
    ) -> AcmpConfig {
        if profiler.needs_profiling(ev.event_type()) {
            return profiler.profiling_config(ev.event_type(), engine.dvfs());
        }
        let estimate = profiler
            .estimate(ev.event_type())
            .expect("profiled types have estimates");
        let deadline = ev.arrival() + qos.target_for_event(ev.event_type());
        let budget = deadline.saturating_sub(start_time);
        engine
            .dvfs()
            .cheapest_config_within(&estimate, budget)
            .unwrap_or_else(|| engine.platform().max_performance_config())
    }

    /// Predicts the upcoming event sequence from the current state.
    fn predict_types(
        &self,
        session: &SessionState,
        profiler: &DemandProfiler,
        events: &[WebEvent],
        next_actual_idx: usize,
    ) -> Vec<(EventType, CpuDemand)> {
        match &self.knowledge {
            Knowledge::Learned(learner) => learner
                .predict_sequence(session)
                .into_iter()
                .map_while(|p| profiler.estimate(p.event_type).map(|d| (p.event_type, d)))
                .collect(),
            Knowledge::Oracle { window } => events
                .iter()
                .skip(next_actual_idx)
                .take(*window)
                .map(|e| (e.event_type(), e.demand()))
                .collect(),
        }
    }

    /// Builds and solves the optimisation window for a fresh prediction round
    /// (no outstanding event), returning the speculative plan.
    #[allow(clippy::too_many_arguments)]
    fn plan_round(
        &self,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        next_actual_idx: usize,
        gap_ewma: TimeUs,
        outstanding: Option<&WebEvent>,
    ) -> (VecDeque<SpeculativeItem>, usize, usize) {
        let now = engine.cpu_free_at();
        let predicted = self.predict_types(
            session,
            profiler,
            events,
            next_actual_idx + usize::from(outstanding.is_some()),
        );
        if predicted.is_empty() && outstanding.is_none() {
            return (VecDeque::new(), 0, 0);
        }
        let mut items = Vec::new();
        let mut kinds: Vec<(EventType, CpuDemand)> = Vec::new();
        if let Some(ev) = outstanding {
            let demand = profiler.estimate(ev.event_type()).unwrap_or_else(|| ev.demand());
            items.push(self.schedule_item(
                engine,
                &demand,
                ev.arrival(),
                ev.arrival() + qos.target_for_event(ev.event_type()),
            ));
            kinds.push((ev.event_type(), demand));
        }
        for (k, (event_type, demand)) in predicted.iter().enumerate() {
            let expected_trigger = match &self.knowledge {
                Knowledge::Oracle { .. } => events
                    .get(next_actual_idx + usize::from(outstanding.is_some()) + k)
                    .map(|e| e.arrival())
                    .unwrap_or(now),
                Knowledge::Learned(_) => {
                    now + TimeUs::from_micros(gap_ewma.as_micros() * (k as u64 + 1))
                }
            };
            items.push(self.schedule_item(
                engine,
                demand,
                now,
                expected_trigger + qos.target_for_event(*event_type),
            ));
            kinds.push((*event_type, *demand));
        }
        let degree = predicted.len();
        let problem = ScheduleProblem::new(now.as_micros(), items)
            .with_node_limit(self.config.optimizer_node_limit);
        let solution = problem.solve().or_else(|_| problem.solve_greedy());
        let Ok(solution) = solution else {
            return (VecDeque::new(), 0, 0);
        };
        let nodes = solution.nodes_explored;
        let plan: VecDeque<SpeculativeItem> = kinds
            .iter()
            .zip(solution.choices.iter())
            .map(|((event_type, demand), &choice)| SpeculativeItem {
                event_type: *event_type,
                demand: *demand,
                config: engine.platform().configs()[choice],
            })
            .collect();
        (plan, degree, nodes)
    }

    /// Plans the window that starts with an outstanding (already triggered)
    /// event: returns the configuration for that event plus the speculative
    /// plan for the predicted events that follow it.
    #[allow(clippy::too_many_arguments)]
    fn plan_with_outstanding(
        &self,
        session: &SessionState,
        profiler: &DemandProfiler,
        engine: &ExecutionEngine<'_>,
        qos: &QosPolicy,
        events: &[WebEvent],
        idx: usize,
        gap_ewma: TimeUs,
        ev: &WebEvent,
    ) -> (AcmpConfig, VecDeque<SpeculativeItem>, usize) {
        // Predict the events that follow `ev` from the state in which `ev`
        // has already been observed.
        let mut scratch = session.clone();
        scratch.observe(ev);
        let (mut plan, _degree, nodes) = self.plan_round(
            &scratch,
            profiler,
            engine,
            qos,
            events,
            idx,
            gap_ewma,
            Some(ev),
        );
        match plan.pop_front() {
            Some(first) => (first.config, plan, nodes),
            None => (
                self.reactive_config(profiler, engine, qos, ev, engine.cpu_free_at().max(ev.arrival())),
                VecDeque::new(),
                nodes,
            ),
        }
    }

    fn schedule_item(
        &self,
        engine: &ExecutionEngine<'_>,
        demand: &CpuDemand,
        release: TimeUs,
        deadline: TimeUs,
    ) -> ScheduleItem {
        let options = engine
            .platform()
            .configs()
            .iter()
            .enumerate()
            .map(|(j, cfg)| ScheduleOption {
                choice: j,
                duration_us: engine.dvfs().execution_time(demand, cfg).as_micros(),
                cost: engine.dvfs().marginal_energy(demand, cfg).as_microjoules(),
            })
            .collect();
        ScheduleItem {
            release_us: release.as_micros(),
            deadline_us: deadline.as_micros(),
            options,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_predictor::Trainer;
    use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

    fn quick_learner(catalog: &AppCatalog) -> EventSequenceLearner {
        Trainer::with_config(pes_predictor::TrainingConfig {
            traces_per_app: 3,
            epochs: 25,
            ..Default::default()
        })
        .train_learner(catalog, LearnerConfig::paper_defaults())
    }

    #[test]
    fn pes_commits_speculative_frames_and_beats_naive_violation_rates() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("cnn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 7);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let report = pes.run_trace(&platform, &page, &trace, &qos);

        assert_eq!(report.events, trace.len());
        assert_eq!(report.outcomes.len(), trace.len());
        assert!(report.predictions > 0, "PES never speculated");
        assert!(
            report.correct_predictions > report.mispredictions,
            "prediction should be mostly correct: {} vs {}",
            report.correct_predictions,
            report.mispredictions
        );
        assert!(report.total_energy.as_millijoules() > 0.0);
        assert!(report.violation_rate() < 0.35);
        assert!(!report.pfb_trace.is_empty());
    }

    #[test]
    fn oracle_has_no_mispredictions_and_near_zero_violations() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("bbc").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 3);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let oracle = OracleScheduler::new();
        let report = oracle.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.waste_energy.as_microjoules(), 0.0);
        assert!(report.prediction_accuracy() > 0.99 || report.predictions == 0);
        assert!(
            report.violation_rate() < 0.1,
            "oracle violation rate {}",
            report.violation_rate()
        );
    }

    #[test]
    fn oracle_uses_no_more_energy_than_pes() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("espn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 11);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        let pes = PesScheduler::new(quick_learner(&catalog), PesConfig::paper_defaults());
        let pes_report = pes.run_trace(&platform, &page, &trace, &qos);
        let oracle_report = OracleScheduler::new().run_trace(&platform, &page, &trace, &qos);
        assert!(
            oracle_report.total_energy.as_microjoules()
                <= pes_report.total_energy.as_microjoules() * 1.05,
            "oracle {} mJ vs pes {} mJ",
            oracle_report.total_energy.as_millijoules(),
            pes_report.total_energy.as_millijoules()
        );
        assert!(oracle_report.violations <= pes_report.violations);
    }

    #[test]
    fn a_hundred_percent_threshold_degenerates_to_reactive_behaviour() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("msn").unwrap();
        let page = app.build_page();
        let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE + 5);
        let platform = Platform::exynos_5410();
        let qos = QosPolicy::paper_defaults();

        // With an (unachievable) 100 % cumulative-confidence requirement the
        // predictor cannot predict ahead, so no speculation happens.
        let pes = PesScheduler::new(
            quick_learner(&catalog),
            PesConfig::paper_defaults().with_confidence_threshold(1.0),
        );
        let report = pes.run_trace(&platform, &page, &trace, &qos);
        assert_eq!(report.predictions, 0);
        assert_eq!(report.mispredictions, 0);
        assert_eq!(report.outcomes.len(), trace.len());
    }

    #[test]
    fn report_helpers_compute_sane_statistics() {
        let report = RunReport {
            policy: "PES".into(),
            app: "x".into(),
            events: 10,
            violations: 2,
            total_energy: EnergyUj::new(1_000.0),
            waste_energy: EnergyUj::new(50.0),
            predictions: 8,
            correct_predictions: 6,
            mispredictions: 2,
            misprediction_waste: vec![TimeUs::from_millis(10), TimeUs::from_millis(30)],
            pfb_trace: vec![(0, 1)],
            prediction_rounds: 2,
            total_prediction_degree: 9,
            outcomes: vec![],
            solver_nodes: 100,
        };
        assert!((report.violation_rate() - 0.2).abs() < 1e-12);
        assert!((report.prediction_accuracy() - 0.75).abs() < 1e-12);
        assert!((report.average_waste_ms() - 20.0).abs() < 1e-9);
        assert!((report.average_prediction_degree() - 4.5).abs() < 1e-12);
        assert!((report.waste_energy_fraction() - 0.05).abs() < 1e-12);
    }
}
