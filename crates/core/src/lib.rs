//! # pes-core — Proactive Event Scheduling
//!
//! The primary contribution of Feng & Zhu, ISCA 2019: a Web-runtime scheduler
//! that *proactively* anticipates future user events and globally coordinates
//! scheduling decisions across them. The [`PesScheduler`] combines:
//!
//! * the hybrid learning-analytical event predictor (`pes-predictor`),
//! * online Eqn. 1 workload profiling (`pes-schedulers`),
//! * the Eqn. 5 constrained optimisation solved by the specialised ILP
//!   (`pes-ilp`),
//! * speculative execution of the resulting schedule on the ACMP model with
//!   a [`PendingFrameBuffer`] that commits frames when the predicted inputs
//!   arrive and squashes them on mispredictions, falling back to reactive EBS
//!   behaviour after repeated mispredictions (Sec. 5.4).
//!
//! The [`OracleScheduler`] runs the same machinery with perfect knowledge of
//! the future event sequence, providing the upper bound used in Sec. 6.
//!
//! # Examples
//!
//! ```no_run
//! use pes_core::{PesConfig, PesScheduler};
//! use pes_predictor::{LearnerConfig, Trainer};
//! use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};
//! use pes_acmp::Platform;
//! use pes_webrt::QosPolicy;
//!
//! let catalog = AppCatalog::paper_suite();
//! let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
//! let pes = PesScheduler::new(learner, PesConfig::paper_defaults());
//!
//! let app = catalog.find("cnn").unwrap();
//! let page = app.build_page();
//! let trace = TraceGenerator::new().generate(app, &page, EVAL_SEED_BASE);
//! let report = pes.run_trace(&Platform::exynos_5410(), &page, &trace, &QosPolicy::paper_defaults());
//! println!("energy: {}, QoS violations: {}", report.total_energy, report.violations);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod fault;
pub mod memo;
pub mod pfb;
pub mod runtime;
pub mod watchdog;

pub use pes_ilp::SolveEntry;

pub use fault::{
    splitmix, DegradationLevel, DegradationTrace, FaultConfig, FaultCounts, FaultPlane,
    FaultSession,
};
pub use memo::{
    window_shape, MemoStats, SolveGeneration, SolveMemo, SolveShard, SHARD_CAP, SOLVE_CACHE_SIZE,
};
pub use pfb::{PendingFrame, PendingFrameBuffer};
pub use runtime::{
    OracleScheduler, PesConfig, PesScheduler, ProactiveRuntime, RunReport, ANYTIME_TIER_NODE_CAP,
    WIDE_WINDOW_THRESHOLD,
};
pub use watchdog::{WatchdogConfig, WatchdogState};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PesScheduler>();
        assert_send_sync::<OracleScheduler>();
        assert_send_sync::<PendingFrameBuffer>();
        assert_send_sync::<RunReport>();
    }
}
