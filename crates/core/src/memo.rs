//! The per-replay solve-memoisation ring (shape-keyed, revalidated).
//!
//! Every prediction round of a PES/Oracle replay poses one optimisation
//! window and solves it. Consecutive rounds of the same interaction burst
//! pose *almost* the same window — same event kinds, same quantised demand
//! estimates, slack moved by estimation noise — so re-solving from scratch
//! is wasted work. The ring keeps the [`SOLVE_CACHE_SIZE`] most recent
//! windows whole (problem + solution) and answers re-posed windows in two
//! steps:
//!
//! 1. **Shape probe** — each slot stores a 64-bit fingerprint of its
//!    window's *shape*: event count, the demand-class vector and the
//!    per-item slack bands (the planner buckets its gap/slack estimates
//!    onto coarse bands precisely so this shape repeats, see
//!    `crate::runtime`). A lookup compares one `u64` per slot.
//! 2. **Revalidation** — a fingerprint match is a candidate, not an answer:
//!    the slot's normalised items are compared to the posed window
//!    scalar-for-scalar. Only a full match serves the cached
//!    [`ScheduleSolution`], so a hit is **bit-identical to a cold solve of
//!    the same posed window** (solves are deterministic); a fingerprint
//!    collision merely costs the compare.
//!
//! On a miss the ring recycles its oldest slot in place: the evicted slot's
//! problem re-poses itself over the new window through
//! [`ScheduleProblem::rebuild_sorted`] — reusing the item slots and solver
//! tables, and walking the caller's pre-sorted option orders instead of
//! re-sorting them — and the evicted solution's buffers become the solve
//! target. A steady replay's misses are therefore allocation-free *and*
//! sort-free.

use pes_ilp::{
    IlpError, OptionOrder, ScheduleItem, ScheduleProblem, ScheduleSolution, SolveScratch, SolveTier,
};

/// Number of recent windows the per-replay solve memoisation retains.
pub const SOLVE_CACHE_SIZE: usize = 8;

/// Counters the memo ring maintains; exposed per replay through
/// `RunReport` (and aggregated by the experiment layer) so hit rates are
/// observable instead of assumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from a cached slot (full revalidation passed).
    pub hits: usize,
    /// Lookups that fell through to a solve.
    pub misses: usize,
    /// Candidate slots whose shape fingerprint matched and were therefore
    /// revalidated item-for-item (counts both outcomes; `revalidations -
    /// hits` is the fingerprint-collision count).
    pub revalidations: usize,
}

impl MemoStats {
    /// Hits as a fraction of lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One ring slot: the window's shape fingerprint, the posed problem (whose
/// normalised items are the revalidation key and whose tables are recycled
/// on eviction) and its solution.
#[derive(Debug, Clone)]
struct MemoSlot {
    shape: u64,
    problem: ScheduleProblem,
    solution: ScheduleSolution,
    /// The tier the slot's solve completed at: a hit serves the cached
    /// solution *and* the tier it was originally solved at, so the
    /// degradation ladder stays truthful across memoised rounds.
    tier: SolveTier,
}

/// The shape-keyed solve-memoisation ring. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SolveMemo {
    slots: Vec<MemoSlot>,
    /// Next slot to recycle on a miss.
    cursor: usize,
    /// Slot holding the window solved (or found) most recently.
    current: usize,
    stats: MemoStats,
}

/// FNV-1a over the solver-relevant window shape: event count, then per item
/// the demand class (the planner's quantised `(t_mem, ref_cycles)` pair,
/// passed in by the caller as an opaque `(u64, u64)`) and the normalised
/// release/deadline (slack band). Collisions are harmless — the ring
/// revalidates — so a fast non-cryptographic mix is the right trade.
pub fn window_shape<'a>(
    demand_classes: impl Iterator<Item = (u64, u64)>,
    items: impl Iterator<Item = &'a ScheduleItem>,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut n = 0u64;
    for ((t_mem, cycles), item) in demand_classes.zip(items) {
        mix(t_mem);
        mix(cycles);
        mix(item.release_us);
        mix(item.deadline_us);
        n += 1;
    }
    mix(n);
    hash
}

impl SolveMemo {
    /// Creates an empty ring (slots are allocated on first use).
    pub fn new() -> Self {
        SolveMemo::default()
    }

    /// The counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// The solution of the most recent [`SolveMemo::solve`] — either the
    /// revalidated cached solution or the fresh solve's result.
    pub fn solution(&self) -> &ScheduleSolution {
        &self.slots[self.current].solution
    }

    /// The [`SolveTier`] the most recent [`SolveMemo::solve`] completed at.
    /// A hit reports the tier of the cached solve it served (hits are
    /// bit-identical to that solve, quality tier included).
    pub fn tier(&self) -> SolveTier {
        self.slots[self.current].tier
    }

    /// Answers the posed window `items` (already normalised to start at
    /// time zero and bucketed by the planner) from the ring, solving it
    /// anytime into the recycled oldest slot on a miss. `orders`, when
    /// present, holds one pre-sorted [`OptionOrder`] per item (served by
    /// the DVFS ladder cache), so a miss re-poses without sorting; callers
    /// whose option rows are one-shot (the Oracle's exact per-event
    /// demands, which no later round re-uses) pass `None` and let the
    /// re-pose sort — pre-sorting rows nothing ever reuses is a net loss.
    /// `shape` is the window's [`window_shape`] fingerprint. Returns the
    /// number of new search nodes explored (0 on a hit); the schedule is
    /// read via [`SolveMemo::solution`].
    ///
    /// # Errors
    ///
    /// Propagates [`IlpError`] from the anytime solve (empty windows); the
    /// ring never serves a half-filled slot afterwards.
    pub fn solve(
        &mut self,
        items: &[ScheduleItem],
        orders: Option<&[OptionOrder]>,
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
        scratch: &mut SolveScratch,
    ) -> Result<usize, IlpError> {
        if let Some(slot) = self.lookup(items, shape, node_limit, incumbent_gap) {
            self.stats.hits += 1;
            self.current = slot;
            return Ok(0);
        }
        self.stats.misses += 1;
        // Empty slots never match a real window, so pre-sizing the ring once
        // keeps the steady state allocation-free.
        if self.slots.is_empty() {
            self.slots.resize_with(SOLVE_CACHE_SIZE, || MemoSlot {
                shape: 0,
                problem: ScheduleProblem::new(0, Vec::new()),
                solution: ScheduleSolution::default(),
                tier: SolveTier::Exact,
            });
        }
        let slot = &mut self.slots[self.cursor];
        match orders {
            Some(orders) => slot.problem.rebuild_sorted(0, items, orders),
            None => slot.problem.rebuild(0, items),
        }
        slot.problem.set_node_limit(node_limit);
        slot.problem.set_incumbent_gap(incumbent_gap);
        slot.shape = shape;
        match slot.problem.solve_anytime_with(scratch, &mut slot.solution) {
            Ok(tier) => slot.tier = tier,
            Err(e) => {
                // Never let a half-filled slot answer a future lookup.
                slot.problem.rebuild(0, &[]);
                slot.shape = 0;
                return Err(e);
            }
        }
        let nodes = slot.solution.nodes_explored;
        self.current = self.cursor;
        self.cursor = (self.cursor + 1) % SOLVE_CACHE_SIZE;
        Ok(nodes)
    }

    /// The slot index answering `items`, if any: shape probe first, full
    /// revalidation on candidates. Revalidation covers the solve
    /// parameters too — a slot solved under a different node budget or
    /// incumbent gap may hold a different-quality incumbent for the same
    /// window, and serving it would break the hit-equals-cold-solve
    /// contract.
    fn lookup(
        &mut self,
        items: &[ScheduleItem],
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
    ) -> Option<usize> {
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.shape != shape || slot.problem.items().is_empty() {
                continue;
            }
            self.stats.revalidations += 1;
            if slot.problem.node_limit() == node_limit.max(1)
                && slot.problem.incumbent_gap() == incumbent_gap.max(0.0)
                && slot.problem.items() == items
            {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_ilp::ScheduleOption;

    fn window(slack: u64) -> Vec<ScheduleItem> {
        (0..4u64)
            .map(|i| ScheduleItem {
                release_us: 0,
                deadline_us: (i + 1) * 150_000 + slack,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 140_000 - j as u64 * 5_000,
                        cost: 1.0 + 0.3 * (j as f64).powf(1.5),
                    })
                    .collect(),
            })
            .collect()
    }

    fn orders_for(items: &[ScheduleItem]) -> Vec<OptionOrder> {
        items
            .iter()
            .map(|item| OptionOrder::from_options(&item.options))
            .collect()
    }

    fn shape_of(items: &[ScheduleItem]) -> u64 {
        window_shape(items.iter().map(|_| (7, 11)), items.iter())
    }

    #[test]
    fn repeat_windows_hit_and_match_a_cold_solve() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        let nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(nodes > 0);
        let cold = memo.solution().clone();
        let again = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(again, 0, "second pose must be a hit");
        assert_eq!(*memo.solution(), cold);
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        assert_eq!(memo.stats().revalidations, 1);
        assert!((memo.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn colliding_shapes_revalidate_and_fall_through() {
        let a = window(50_000);
        let b = window(90_000);
        let orders_a = orders_for(&a);
        let orders_b = orders_for(&b);
        let shape = 0x1234_5678_9abc_def0; // deliberately shared
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        memo.solve(&a, Some(&orders_a), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        let nodes = memo
            .solve(&b, Some(&orders_b), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(nodes > 0, "a collision must fall through to a solve");
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().revalidations, 1);
        // A cold memo solves `b` to the identical solution.
        let mut cold = SolveMemo::new();
        cold.solve(&b, Some(&orders_b), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(*cold.solution(), *memo.solution());
    }

    #[test]
    fn ring_recycles_and_errors_never_poison_slots() {
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        assert!(memo
            .solve(&[], None, 0, 200_000, 0.0, &mut scratch)
            .is_err());
        // The failed pose must not be served as a hit for an empty window.
        assert!(memo
            .solve(&[], None, 0, 200_000, 0.0, &mut scratch)
            .is_err());
        // Wrap the ring and revisit the first window: it was evicted, so it
        // must be re-solved (a miss), to the same solution.
        let first = window(10_000);
        let orders_first = orders_for(&first);
        memo.solve(
            &first,
            Some(&orders_first),
            shape_of(&first),
            200_000,
            0.0,
            &mut scratch,
        )
        .unwrap();
        let sol_first = memo.solution().clone();
        for k in 0..SOLVE_CACHE_SIZE as u64 {
            let w = window(20_000 + k * 7_000);
            let o = orders_for(&w);
            memo.solve(&w, Some(&o), shape_of(&w), 200_000, 0.0, &mut scratch)
                .unwrap();
        }
        let hits_before = memo.stats().hits;
        memo.solve(
            &first,
            Some(&orders_first),
            shape_of(&first),
            200_000,
            0.0,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(memo.stats().hits, hits_before, "evicted windows miss");
        assert_eq!(*memo.solution(), sol_first);
    }

    #[test]
    fn different_solve_parameters_never_reuse_a_slot() {
        // The same window posed under a different node budget or incumbent
        // gap may legitimately solve to a different-quality incumbent, so a
        // cached slot only answers calls with the parameters it was solved
        // under.
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        memo.solve(&items, Some(&orders), shape, 5_000, 0.0, &mut scratch)
            .unwrap();
        let budget_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(budget_nodes > 0, "a larger budget must re-solve, not reuse");
        let gap_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.01, &mut scratch)
            .unwrap();
        assert!(gap_nodes > 0, "a different gap must re-solve, not reuse");
        let hit_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.01, &mut scratch)
            .unwrap();
        assert_eq!(hit_nodes, 0, "matching parameters hit");
    }

    #[test]
    fn hits_serve_the_tier_of_the_cached_solve() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        // Starved to one node: the incumbent (greedy seed) answers.
        memo.solve(&items, Some(&orders), shape, 1, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(memo.tier(), SolveTier::Incumbent);
        let hit = memo
            .solve(&items, Some(&orders), shape, 1, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(hit, 0, "starved re-pose hits");
        assert_eq!(memo.tier(), SolveTier::Incumbent, "hit repeats its tier");
        // A full-budget solve of the same window lands in a fresh slot at
        // the exact tier.
        memo.solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(memo.tier(), SolveTier::Exact);
    }
}
