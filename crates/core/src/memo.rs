//! The per-replay solve-memoisation ring (shape-keyed, revalidated).
//!
//! Every prediction round of a PES/Oracle replay poses one optimisation
//! window and solves it. Consecutive rounds of the same interaction burst
//! pose *almost* the same window — same event kinds, same quantised demand
//! estimates, slack moved by estimation noise — so re-solving from scratch
//! is wasted work. The ring keeps the [`SOLVE_CACHE_SIZE`] most recent
//! windows whole (problem + solution) and answers re-posed windows in two
//! steps:
//!
//! 1. **Shape probe** — each slot stores a 64-bit fingerprint of its
//!    window's *shape*: event count, the demand-class vector and the
//!    per-item slack bands (the planner buckets its gap/slack estimates
//!    onto coarse bands precisely so this shape repeats, see
//!    `crate::runtime`). A lookup compares one `u64` per slot.
//! 2. **Revalidation** — a fingerprint match is a candidate, not an answer:
//!    the slot's normalised items are compared to the posed window
//!    scalar-for-scalar. Only a full match serves the cached
//!    [`ScheduleSolution`], so a hit is **bit-identical to a cold solve of
//!    the same posed window** (solves are deterministic); a fingerprint
//!    collision merely costs the compare.
//!
//! On a miss the ring recycles its oldest slot in place: the evicted slot's
//! problem re-poses itself over the new window through
//! [`ScheduleProblem::rebuild_sorted`] — reusing the item slots and solver
//! tables, and walking the caller's pre-sorted option orders instead of
//! re-sorting them — and the evicted solution's buffers become the solve
//! target. A steady replay's misses are therefore allocation-free *and*
//! sort-free.
//!
//! # The shared cross-replay cache
//!
//! Fleet sweeps replay near-identical sessions under dozens of
//! configurations, so windows recur *across* replays, not just within one.
//! The shared layer extends the ring without touching its contract:
//!
//! * [`SolveShard`] — a private write shard one fleet worker owns for one
//!   batch. Cold solves are recorded into it; nothing reads it during the
//!   batch, so workers never contend.
//! * [`SolveGeneration`] — the read-only published cache. Between batches a
//!   deterministic merge ([`SolveGeneration::publish`]) folds the previous
//!   generation and the batch's shards — **in unit order**, so the result
//!   is independent of thread scheduling — into a new shape-sorted
//!   generation.
//! * [`SolveMemo::solve_shared`] — the ring probe, then the generation
//!   probe, then a cold solve. A generation hit **mirrors the cold-solve
//!   path exactly**: it installs the entry into the ring's recycled slot,
//!   counts a ring *miss*, and returns the cached solve's
//!   `nodes_explored` — solves are deterministic, so that count equals
//!   what the dodged solve would have explored. Every downstream consumer
//!   (watchdog node charging, `RunReport` counters, the degradation
//!   ladder) therefore observes a bit-identical replay whether the shared
//!   cache is plugged in or not; only wall-clock time and the shard's own
//!   [`SolveShard::shared_hits`] counter differ.

use pes_ilp::{
    IlpError, OptionOrder, ScheduleItem, ScheduleProblem, ScheduleSolution, SolveScratch, SolveTier,
};

/// Number of recent windows the per-replay solve memoisation retains.
pub const SOLVE_CACHE_SIZE: usize = 8;

/// Counters the memo ring maintains; exposed per replay through
/// `RunReport` (and aggregated by the experiment layer) so hit rates are
/// observable instead of assumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Lookups answered from a cached slot (full revalidation passed).
    pub hits: usize,
    /// Lookups that fell through to a solve.
    pub misses: usize,
    /// Candidate slots whose shape fingerprint matched and were therefore
    /// revalidated item-for-item (counts both outcomes; `revalidations -
    /// hits` is the fingerprint-collision count).
    pub revalidations: usize,
}

impl MemoStats {
    /// Hits as a fraction of lookups (0.0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// One ring slot: the window's shape fingerprint, the posed problem (whose
/// normalised items are the revalidation key and whose tables are recycled
/// on eviction) and its solution.
#[derive(Debug, Clone)]
struct MemoSlot {
    shape: u64,
    problem: ScheduleProblem,
    solution: ScheduleSolution,
    /// The tier the slot's solve completed at: a hit serves the cached
    /// solution *and* the tier it was originally solved at, so the
    /// degradation ladder stays truthful across memoised rounds.
    tier: SolveTier,
}

/// The shape-keyed solve-memoisation ring. See the module docs.
#[derive(Debug, Clone, Default)]
pub struct SolveMemo {
    slots: Vec<MemoSlot>,
    /// Next slot to recycle on a miss.
    cursor: usize,
    /// Slot holding the window solved (or found) most recently.
    current: usize,
    stats: MemoStats,
}

/// Default number of cold solves one [`SolveShard`] retains per replay.
pub const SHARD_CAP: usize = 32;

/// One entry of the shared cross-replay cache: a solved window, whole. The
/// posed problem carries the revalidation key (normalised items, node
/// limit, incumbent gap) exactly as a ring slot does, so a generation hit
/// revalidates under the identical predicate.
#[derive(Debug, Clone)]
struct SharedEntry {
    shape: u64,
    problem: ScheduleProblem,
    solution: ScheduleSolution,
    tier: SolveTier,
}

impl SharedEntry {
    /// Whether `other` would revalidate to the same answer: identical
    /// shape, solve parameters and normalised items. Duplicates by this key
    /// hold bit-identical solutions (solves are deterministic), so the
    /// merge may keep either copy.
    fn same_key(&self, other: &SharedEntry) -> bool {
        self.shape == other.shape
            && self.problem.node_limit() == other.problem.node_limit()
            && self.problem.incumbent_gap() == other.problem.incumbent_gap()
            && self.problem.items() == other.problem.items()
    }
}

/// A fleet worker's private write shard for one batch: cold solves are
/// recorded here (bounded by a cap, deduplicated by revalidation key) and
/// folded into the next [`SolveGeneration`] by the publish phase. The shard
/// also carries the worker's shared-cache counters, keeping them out of
/// `RunReport` — a replay's report stays byte-identical with or without
/// the shared cache plugged in.
#[derive(Debug, Clone)]
pub struct SolveShard {
    entries: Vec<SharedEntry>,
    cap: usize,
    shared_hits: usize,
    shared_lookups: usize,
}

impl Default for SolveShard {
    fn default() -> Self {
        SolveShard::new()
    }
}

impl SolveShard {
    /// An empty shard retaining up to [`SHARD_CAP`] cold solves.
    pub fn new() -> Self {
        SolveShard::with_capacity(SHARD_CAP)
    }

    /// An empty shard retaining up to `cap` cold solves.
    pub fn with_capacity(cap: usize) -> Self {
        SolveShard {
            entries: Vec::new(),
            cap,
            shared_hits: 0,
            shared_lookups: 0,
        }
    }

    /// Number of cold solves recorded so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no cold solve has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ring misses answered by the shared generation through this shard.
    pub fn shared_hits(&self) -> usize {
        self.shared_hits
    }

    /// Ring misses that probed the shared generation through this shard
    /// (`shared_lookups - shared_hits` fell through to a cold solve).
    pub fn shared_lookups(&self) -> usize {
        self.shared_lookups
    }

    /// Records a cold solve, cloning the slot. Full shards and re-solves of
    /// an already-recorded window (the ring evicts, the shard remembers)
    /// are dropped.
    fn record(&mut self, slot: &MemoSlot) {
        if self.entries.len() >= self.cap {
            return;
        }
        let candidate = SharedEntry {
            shape: slot.shape,
            problem: slot.problem.clone(),
            solution: slot.solution.clone(),
            tier: slot.tier,
        };
        if self
            .entries
            .iter()
            .any(|e| e.shape == candidate.shape && e.same_key(&candidate))
        {
            return;
        }
        self.entries.push(candidate);
    }
}

/// The published read-only cross-replay cache: one immutable generation,
/// shape-sorted for binary-search probes, shared by every worker of the
/// following batch. See the module docs for the lifecycle.
#[derive(Debug, Clone, Default)]
pub struct SolveGeneration {
    /// Sorted by `shape`; ties keep fold order (previous generation first,
    /// then shards in unit order), so the first revalidated match is
    /// deterministic.
    entries: Vec<SharedEntry>,
}

impl SolveGeneration {
    /// The empty generation (every probe misses).
    pub const fn empty() -> Self {
        SolveGeneration {
            entries: Vec::new(),
        }
    }

    /// Number of published entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the generation holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds the previous generation and a batch's shards into the next
    /// generation. Deterministic by construction: entries are taken in
    /// fold order (previous generation, then `shards` in the order given —
    /// callers pass unit order, never thread-completion order),
    /// deduplicated by revalidation key (first occurrence wins; duplicates
    /// hold identical solutions anyway), capped to the `cap` **newest**
    /// entries so stale windows rotate out, and stably sorted by shape.
    pub fn publish(prev: &SolveGeneration, shards: &[SolveShard], cap: usize) -> SolveGeneration {
        let mut merged: Vec<SharedEntry> = Vec::new();
        let candidates = prev
            .entries
            .iter()
            .chain(shards.iter().flat_map(|s| s.entries.iter()));
        for candidate in candidates {
            if merged
                .iter()
                .any(|e| e.shape == candidate.shape && e.same_key(candidate))
            {
                continue;
            }
            merged.push(candidate.clone());
        }
        if merged.len() > cap {
            merged.drain(..merged.len() - cap);
        }
        merged.sort_by_key(|e| e.shape);
        SolveGeneration { entries: merged }
    }

    /// The entry answering the posed window, if any: binary search to the
    /// shape's run, then full revalidation — the same predicate as the
    /// ring's, so a generation hit is bit-identical to the cold solve it
    /// replaces.
    fn lookup(
        &self,
        items: &[ScheduleItem],
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
    ) -> Option<&SharedEntry> {
        let start = self.entries.partition_point(|e| e.shape < shape);
        self.entries[start..]
            .iter()
            .take_while(|e| e.shape == shape)
            .find(|e| {
                e.problem.node_limit() == node_limit.max(1)
                    && e.problem.incumbent_gap() == incumbent_gap.max(0.0)
                    && e.problem.items() == items
            })
    }
}

/// FNV-1a over the solver-relevant window shape: event count, then per item
/// the demand class (the planner's quantised `(t_mem, ref_cycles)` pair,
/// passed in by the caller as an opaque `(u64, u64)`) and the normalised
/// release/deadline (slack band). Collisions are harmless — the ring
/// revalidates — so a fast non-cryptographic mix is the right trade.
pub fn window_shape<'a>(
    demand_classes: impl Iterator<Item = (u64, u64)>,
    items: impl Iterator<Item = &'a ScheduleItem>,
) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        hash ^= v;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    let mut n = 0u64;
    for ((t_mem, cycles), item) in demand_classes.zip(items) {
        mix(t_mem);
        mix(cycles);
        mix(item.release_us);
        mix(item.deadline_us);
        n += 1;
    }
    mix(n);
    hash
}

impl SolveMemo {
    /// Creates an empty ring (slots are allocated on first use).
    pub fn new() -> Self {
        SolveMemo::default()
    }

    /// The counters so far.
    pub fn stats(&self) -> MemoStats {
        self.stats
    }

    /// The solution of the most recent [`SolveMemo::solve`] — either the
    /// revalidated cached solution or the fresh solve's result.
    pub fn solution(&self) -> &ScheduleSolution {
        &self.slots[self.current].solution
    }

    /// The [`SolveTier`] the most recent [`SolveMemo::solve`] completed at.
    /// A hit reports the tier of the cached solve it served (hits are
    /// bit-identical to that solve, quality tier included).
    pub fn tier(&self) -> SolveTier {
        self.slots[self.current].tier
    }

    /// Answers the posed window `items` (already normalised to start at
    /// time zero and bucketed by the planner) from the ring, solving it
    /// anytime into the recycled oldest slot on a miss. `orders`, when
    /// present, holds one pre-sorted [`OptionOrder`] per item (served by
    /// the DVFS ladder cache), so a miss re-poses without sorting; callers
    /// whose option rows are one-shot (the Oracle's exact per-event
    /// demands, which no later round re-uses) pass `None` and let the
    /// re-pose sort — pre-sorting rows nothing ever reuses is a net loss.
    /// `shape` is the window's [`window_shape`] fingerprint. Returns the
    /// number of new search nodes explored (0 on a hit); the schedule is
    /// read via [`SolveMemo::solution`].
    ///
    /// # Errors
    ///
    /// Propagates [`IlpError`] from the anytime solve (empty windows); the
    /// ring never serves a half-filled slot afterwards.
    pub fn solve(
        &mut self,
        items: &[ScheduleItem],
        orders: Option<&[OptionOrder]>,
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
        scratch: &mut SolveScratch,
    ) -> Result<usize, IlpError> {
        if let Some(slot) = self.lookup(items, shape, node_limit, incumbent_gap) {
            self.stats.hits += 1;
            self.current = slot;
            return Ok(0);
        }
        self.solve_cold(items, orders, shape, node_limit, incumbent_gap, scratch)
    }

    /// [`SolveMemo::solve`] with the shared cross-replay cache plugged in
    /// between the ring probe and the cold solve. A `shared` generation hit
    /// mirrors the cold path — the entry lands in the recycled ring slot, a
    /// ring miss is counted, the cached `nodes_explored` is returned — so
    /// the replay is bit-identical to one without the shared cache (see
    /// the module docs). Cold solves are recorded into `shard` for the
    /// next publish.
    ///
    /// # Errors
    ///
    /// Propagates [`IlpError`] exactly as [`SolveMemo::solve`] does; failed
    /// poses are recorded nowhere.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_shared(
        &mut self,
        items: &[ScheduleItem],
        orders: Option<&[OptionOrder]>,
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
        scratch: &mut SolveScratch,
        shared: &SolveGeneration,
        shard: &mut SolveShard,
    ) -> Result<usize, IlpError> {
        if let Some(slot) = self.lookup(items, shape, node_limit, incumbent_gap) {
            self.stats.hits += 1;
            self.current = slot;
            return Ok(0);
        }
        shard.shared_lookups += 1;
        if let Some(entry) = shared.lookup(items, shape, node_limit, incumbent_gap) {
            shard.shared_hits += 1;
            // Mirror the cold-solve path: same miss count, same ring slot
            // rotation, same returned node count. The ring evolves exactly
            // as if the solve had run.
            self.stats.misses += 1;
            self.ensure_slots();
            let slot = &mut self.slots[self.cursor];
            slot.problem.clone_from(&entry.problem);
            slot.solution.clone_from(&entry.solution);
            slot.shape = entry.shape;
            slot.tier = entry.tier;
            let nodes = slot.solution.nodes_explored;
            self.current = self.cursor;
            self.cursor = (self.cursor + 1) % SOLVE_CACHE_SIZE;
            return Ok(nodes);
        }
        let nodes = self.solve_cold(items, orders, shape, node_limit, incumbent_gap, scratch)?;
        shard.record(&self.slots[self.current]);
        Ok(nodes)
    }

    /// Lazily sizes the ring. Empty slots never match a real window, so
    /// pre-sizing once keeps the steady state allocation-free.
    fn ensure_slots(&mut self) {
        if self.slots.is_empty() {
            self.slots.resize_with(SOLVE_CACHE_SIZE, || MemoSlot {
                shape: 0,
                problem: ScheduleProblem::new(0, Vec::new()),
                solution: ScheduleSolution::default(),
                tier: SolveTier::Exact,
            });
        }
    }

    /// The shared miss path: recycles the oldest slot, re-poses and solves
    /// the window into it. Counts the miss.
    fn solve_cold(
        &mut self,
        items: &[ScheduleItem],
        orders: Option<&[OptionOrder]>,
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
        scratch: &mut SolveScratch,
    ) -> Result<usize, IlpError> {
        self.stats.misses += 1;
        self.ensure_slots();
        let slot = &mut self.slots[self.cursor];
        match orders {
            Some(orders) => slot.problem.rebuild_sorted(0, items, orders),
            None => slot.problem.rebuild(0, items),
        }
        slot.problem.set_node_limit(node_limit);
        slot.problem.set_incumbent_gap(incumbent_gap);
        slot.shape = shape;
        match slot.problem.solve_anytime_with(scratch, &mut slot.solution) {
            Ok(tier) => slot.tier = tier,
            Err(e) => {
                // Never let a half-filled slot answer a future lookup.
                slot.problem.rebuild(0, &[]);
                slot.shape = 0;
                return Err(e);
            }
        }
        let nodes = slot.solution.nodes_explored;
        self.current = self.cursor;
        self.cursor = (self.cursor + 1) % SOLVE_CACHE_SIZE;
        Ok(nodes)
    }

    /// The slot index answering `items`, if any: shape probe first, full
    /// revalidation on candidates. Revalidation covers the solve
    /// parameters too — a slot solved under a different node budget or
    /// incumbent gap may hold a different-quality incumbent for the same
    /// window, and serving it would break the hit-equals-cold-solve
    /// contract.
    fn lookup(
        &mut self,
        items: &[ScheduleItem],
        shape: u64,
        node_limit: usize,
        incumbent_gap: f64,
    ) -> Option<usize> {
        for (idx, slot) in self.slots.iter().enumerate() {
            if slot.shape != shape || slot.problem.items().is_empty() {
                continue;
            }
            self.stats.revalidations += 1;
            if slot.problem.node_limit() == node_limit.max(1)
                && slot.problem.incumbent_gap() == incumbent_gap.max(0.0)
                && slot.problem.items() == items
            {
                return Some(idx);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_ilp::ScheduleOption;

    fn window(slack: u64) -> Vec<ScheduleItem> {
        (0..4u64)
            .map(|i| ScheduleItem {
                release_us: 0,
                deadline_us: (i + 1) * 150_000 + slack,
                options: (0..17)
                    .map(|j| ScheduleOption {
                        choice: j,
                        duration_us: 140_000 - j as u64 * 5_000,
                        cost: 1.0 + 0.3 * (j as f64).powf(1.5),
                    })
                    .collect(),
            })
            .collect()
    }

    fn orders_for(items: &[ScheduleItem]) -> Vec<OptionOrder> {
        items
            .iter()
            .map(|item| OptionOrder::from_options(&item.options))
            .collect()
    }

    fn shape_of(items: &[ScheduleItem]) -> u64 {
        window_shape(items.iter().map(|_| (7, 11)), items.iter())
    }

    #[test]
    fn repeat_windows_hit_and_match_a_cold_solve() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        let nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(nodes > 0);
        let cold = memo.solution().clone();
        let again = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(again, 0, "second pose must be a hit");
        assert_eq!(*memo.solution(), cold);
        assert_eq!(memo.stats().hits, 1);
        assert_eq!(memo.stats().misses, 1);
        assert_eq!(memo.stats().revalidations, 1);
        assert!((memo.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn colliding_shapes_revalidate_and_fall_through() {
        let a = window(50_000);
        let b = window(90_000);
        let orders_a = orders_for(&a);
        let orders_b = orders_for(&b);
        let shape = 0x1234_5678_9abc_def0; // deliberately shared
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        memo.solve(&a, Some(&orders_a), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        let nodes = memo
            .solve(&b, Some(&orders_b), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(nodes > 0, "a collision must fall through to a solve");
        assert_eq!(memo.stats().hits, 0);
        assert_eq!(memo.stats().revalidations, 1);
        // A cold memo solves `b` to the identical solution.
        let mut cold = SolveMemo::new();
        cold.solve(&b, Some(&orders_b), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(*cold.solution(), *memo.solution());
    }

    #[test]
    fn ring_recycles_and_errors_never_poison_slots() {
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        assert!(memo
            .solve(&[], None, 0, 200_000, 0.0, &mut scratch)
            .is_err());
        // The failed pose must not be served as a hit for an empty window.
        assert!(memo
            .solve(&[], None, 0, 200_000, 0.0, &mut scratch)
            .is_err());
        // Wrap the ring and revisit the first window: it was evicted, so it
        // must be re-solved (a miss), to the same solution.
        let first = window(10_000);
        let orders_first = orders_for(&first);
        memo.solve(
            &first,
            Some(&orders_first),
            shape_of(&first),
            200_000,
            0.0,
            &mut scratch,
        )
        .unwrap();
        let sol_first = memo.solution().clone();
        for k in 0..SOLVE_CACHE_SIZE as u64 {
            let w = window(20_000 + k * 7_000);
            let o = orders_for(&w);
            memo.solve(&w, Some(&o), shape_of(&w), 200_000, 0.0, &mut scratch)
                .unwrap();
        }
        let hits_before = memo.stats().hits;
        memo.solve(
            &first,
            Some(&orders_first),
            shape_of(&first),
            200_000,
            0.0,
            &mut scratch,
        )
        .unwrap();
        assert_eq!(memo.stats().hits, hits_before, "evicted windows miss");
        assert_eq!(*memo.solution(), sol_first);
    }

    #[test]
    fn different_solve_parameters_never_reuse_a_slot() {
        // The same window posed under a different node budget or incumbent
        // gap may legitimately solve to a different-quality incumbent, so a
        // cached slot only answers calls with the parameters it was solved
        // under.
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        memo.solve(&items, Some(&orders), shape, 5_000, 0.0, &mut scratch)
            .unwrap();
        let budget_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert!(budget_nodes > 0, "a larger budget must re-solve, not reuse");
        let gap_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.01, &mut scratch)
            .unwrap();
        assert!(gap_nodes > 0, "a different gap must re-solve, not reuse");
        let hit_nodes = memo
            .solve(&items, Some(&orders), shape, 200_000, 0.01, &mut scratch)
            .unwrap();
        assert_eq!(hit_nodes, 0, "matching parameters hit");
    }

    #[test]
    fn shared_generation_hits_mirror_the_cold_solve() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut scratch = SolveScratch::new();
        // Worker A solves cold into its shard.
        let mut memo_a = SolveMemo::new();
        let mut shard_a = SolveShard::new();
        let cold_nodes = memo_a
            .solve_shared(
                &items,
                Some(&orders),
                shape,
                200_000,
                0.0,
                &mut scratch,
                &SolveGeneration::empty(),
                &mut shard_a,
            )
            .unwrap();
        assert!(cold_nodes > 0);
        assert_eq!(shard_a.len(), 1);
        assert_eq!(shard_a.shared_lookups(), 1);
        assert_eq!(shard_a.shared_hits(), 0);
        let cold_solution = memo_a.solution().clone();
        // Publish, then worker B replays the same window next batch.
        let generation = SolveGeneration::publish(&SolveGeneration::empty(), &[shard_a], 64);
        assert_eq!(generation.len(), 1);
        let mut memo_b = SolveMemo::new();
        let mut shard_b = SolveShard::new();
        let hit_nodes = memo_b
            .solve_shared(
                &items,
                Some(&orders),
                shape,
                200_000,
                0.0,
                &mut scratch,
                &generation,
                &mut shard_b,
            )
            .unwrap();
        // The mirror contract: same node count, same solution, a ring
        // *miss* on the stats, nothing recorded into B's shard.
        assert_eq!(hit_nodes, cold_nodes);
        assert_eq!(*memo_b.solution(), cold_solution);
        assert_eq!(memo_b.stats().hits, 0);
        assert_eq!(memo_b.stats().misses, 1);
        assert_eq!(shard_b.shared_hits(), 1);
        assert!(shard_b.is_empty());
        // The entry landed in B's ring: a plain re-pose is a local hit.
        let local = memo_b
            .solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(local, 0);
        assert_eq!(memo_b.stats().hits, 1);
    }

    #[test]
    fn publish_deduplicates_and_stays_deterministic() {
        let a = window(50_000);
        let b = window(90_000);
        let mut scratch = SolveScratch::new();
        let empty = SolveGeneration::empty();
        let mut shard_one = SolveShard::new();
        let mut shard_two = SolveShard::new();
        for (shard, seq) in [(&mut shard_one, [&a, &b]), (&mut shard_two, [&b, &a])] {
            let mut memo = SolveMemo::new();
            for items in seq {
                let orders = orders_for(items);
                memo.solve_shared(
                    items,
                    Some(&orders),
                    shape_of(items),
                    200_000,
                    0.0,
                    &mut scratch,
                    &empty,
                    shard,
                )
                .unwrap();
            }
        }
        // Both shards hold both windows; the fold keeps one copy of each.
        let gen1 = SolveGeneration::publish(&empty, &[shard_one.clone(), shard_two.clone()], 64);
        assert_eq!(gen1.len(), 2);
        // Republishing over the previous generation adds nothing new, and
        // the same inputs fold to the same generation.
        let gen2 = SolveGeneration::publish(&gen1, &[shard_one.clone(), shard_two.clone()], 64);
        assert_eq!(gen2.len(), 2);
        // The empty publish is the empty generation.
        assert!(SolveGeneration::publish(&empty, &[], 64).is_empty());
        assert!(SolveGeneration::publish(&empty, &[SolveShard::new()], 64).is_empty());
    }

    #[test]
    fn generation_cap_rotates_the_oldest_entries_out() {
        let mut scratch = SolveScratch::new();
        let empty = SolveGeneration::empty();
        let mut shard = SolveShard::new();
        let mut memo = SolveMemo::new();
        let windows: Vec<Vec<ScheduleItem>> = (0..3).map(|k| window(10_000 + k * 7_000)).collect();
        for items in &windows {
            let orders = orders_for(items);
            memo.solve_shared(
                items,
                Some(&orders),
                shape_of(items),
                200_000,
                0.0,
                &mut scratch,
                &empty,
                &mut shard,
            )
            .unwrap();
        }
        assert_eq!(shard.len(), 3);
        let capped = SolveGeneration::publish(&empty, &[shard], 2);
        assert_eq!(capped.len(), 2, "cap bounds the generation");
        // The newest two survive; the oldest window misses.
        let oldest = &windows[0];
        assert!(capped
            .lookup(oldest, shape_of(oldest), 200_000, 0.0)
            .is_none());
        let newest = &windows[2];
        assert!(capped
            .lookup(newest, shape_of(newest), 200_000, 0.0)
            .is_some());
    }

    #[test]
    fn shared_lookups_revalidate_solve_parameters() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut scratch = SolveScratch::new();
        let mut shard = SolveShard::new();
        let mut memo = SolveMemo::new();
        memo.solve_shared(
            &items,
            Some(&orders),
            shape,
            5_000,
            0.0,
            &mut scratch,
            &SolveGeneration::empty(),
            &mut shard,
        )
        .unwrap();
        let generation = SolveGeneration::publish(&SolveGeneration::empty(), &[shard], 64);
        // Same window, bigger budget: the published entry must not answer.
        let mut fresh = SolveMemo::new();
        let mut probe = SolveShard::new();
        fresh
            .solve_shared(
                &items,
                Some(&orders),
                shape,
                200_000,
                0.0,
                &mut scratch,
                &generation,
                &mut probe,
            )
            .unwrap();
        assert_eq!(probe.shared_lookups(), 1);
        assert_eq!(probe.shared_hits(), 0, "parameter mismatch falls through");
        assert_eq!(probe.len(), 1, "the cold solve is recorded");
    }

    #[test]
    fn hits_serve_the_tier_of_the_cached_solve() {
        let items = window(50_000);
        let orders = orders_for(&items);
        let shape = shape_of(&items);
        let mut memo = SolveMemo::new();
        let mut scratch = SolveScratch::new();
        // Starved to one node: the incumbent (greedy seed) answers.
        memo.solve(&items, Some(&orders), shape, 1, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(memo.tier(), SolveTier::Incumbent);
        let hit = memo
            .solve(&items, Some(&orders), shape, 1, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(hit, 0, "starved re-pose hits");
        assert_eq!(memo.tier(), SolveTier::Incumbent, "hit repeats its tier");
        // A full-budget solve of the same window lands in a fresh slot at
        // the exact tier.
        memo.solve(&items, Some(&orders), shape, 200_000, 0.0, &mut scratch)
            .unwrap();
        assert_eq!(memo.tier(), SolveTier::Exact);
    }
}
