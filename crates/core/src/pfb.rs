//! The Pending Frame Buffer (PFB) of the PES control unit (Sec. 5.4).
//!
//! Speculative frames produced for predicted events wait here until the
//! actual user input arrives. A matching input commits the oldest pending
//! frame; a mismatch squashes the entire buffer and reboots prediction. The
//! buffer also records its occupancy over time, which reproduces Fig. 9.

use std::collections::VecDeque;

use pes_dom::EventType;
use pes_webrt::ExecutionRecord;

/// One speculative frame waiting for its input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingFrame {
    /// The event type the frame was produced for.
    pub predicted_type: EventType,
    /// The execution that produced the frame.
    pub record: ExecutionRecord,
}

/// The Pending Frame Buffer.
///
/// # Examples
///
/// ```
/// use pes_core::PendingFrameBuffer;
///
/// let pfb = PendingFrameBuffer::new();
/// assert!(pfb.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct PendingFrameBuffer {
    frames: VecDeque<PendingFrame>,
    occupancy: Vec<(usize, usize)>,
}

impl PendingFrameBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        PendingFrameBuffer::default()
    }

    /// Number of speculative frames currently pending.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether no speculative frame is pending.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Parks a speculative frame.
    pub fn push(&mut self, frame: PendingFrame) {
        self.frames.push_back(frame);
    }

    /// The oldest pending frame, if any.
    pub fn front(&self) -> Option<&PendingFrame> {
        self.frames.front()
    }

    /// Commits the oldest pending frame if it matches the actual event type;
    /// returns the committed frame, or `None` on a mismatch (in which case
    /// the caller squashes).
    pub fn commit_front(&mut self, actual: EventType) -> Option<PendingFrame> {
        match self.frames.front() {
            Some(front) if front.predicted_type == actual => self.frames.pop_front(),
            _ => None,
        }
    }

    /// Squashes every pending frame, returning them so the caller can
    /// re-attribute their energy as misprediction waste.
    pub fn squash_all(&mut self) -> Vec<PendingFrame> {
        self.frames.drain(..).collect()
    }

    /// Allocation-free squash: visits every pending frame in order (so the
    /// caller can re-attribute its energy as misprediction waste), then
    /// clears the buffer. Returns the number of frames squashed. This is the
    /// variant the runtime's hot path uses; [`PendingFrameBuffer::squash_all`]
    /// remains for callers that want ownership.
    pub fn squash_with(&mut self, mut visit: impl FnMut(&PendingFrame)) -> usize {
        let squashed = self.frames.len();
        for frame in &self.frames {
            visit(frame);
        }
        self.frames.clear();
        squashed
    }

    /// Records the buffer occupancy as observed when the `event_index`-th
    /// actual event arrives (the Fig. 9 time series).
    pub fn record_occupancy(&mut self, event_index: usize) {
        self.occupancy.push((event_index, self.frames.len()));
    }

    /// The recorded occupancy trace: `(event index, frames pending)` samples.
    pub fn occupancy_trace(&self) -> &[(usize, usize)] {
        &self.occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::TimeUs;
    use pes_acmp::{AcmpConfig, CoreKind};
    use pes_dom::Interaction;
    use pes_webrt::EventId;

    fn frame(ty: EventType) -> PendingFrame {
        PendingFrame {
            predicted_type: ty,
            record: ExecutionRecord {
                event: EventId::new(0),
                interaction: Interaction::Tap,
                config: AcmpConfig::new(CoreKind::LittleA7, pes_acmp::units::FreqMhz::new(600)),
                started_at: TimeUs::ZERO,
                frame_ready_at: TimeUs::from_millis(5),
                busy_time: TimeUs::from_millis(5),
                speculative: true,
            },
        }
    }

    #[test]
    fn commit_requires_a_type_match_on_the_oldest_frame() {
        let mut pfb = PendingFrameBuffer::new();
        pfb.push(frame(EventType::TouchMove));
        pfb.push(frame(EventType::TouchStart));
        assert_eq!(pfb.len(), 2);
        // The actual input is a touchmove: commits the front.
        assert!(pfb.commit_front(EventType::TouchMove).is_some());
        assert_eq!(pfb.len(), 1);
        // Next actual input is a scroll but the front predicts touchstart.
        assert!(pfb.commit_front(EventType::Scroll).is_none());
        assert_eq!(pfb.len(), 1, "a mismatch does not consume the frame");
    }

    #[test]
    fn squash_drains_everything() {
        let mut pfb = PendingFrameBuffer::new();
        for _ in 0..4 {
            pfb.push(frame(EventType::TouchMove));
        }
        let squashed = pfb.squash_all();
        assert_eq!(squashed.len(), 4);
        assert!(pfb.is_empty());
        assert!(pfb.front().is_none());
    }

    #[test]
    fn squash_with_visits_in_order_without_consuming_ownership() {
        let mut pfb = PendingFrameBuffer::new();
        pfb.push(frame(EventType::TouchMove));
        pfb.push(frame(EventType::Scroll));
        let mut seen = Vec::new();
        let squashed = pfb.squash_with(|f| seen.push(f.predicted_type));
        assert_eq!(squashed, 2);
        assert_eq!(seen, vec![EventType::TouchMove, EventType::Scroll]);
        assert!(pfb.is_empty());
        assert_eq!(pfb.squash_with(|_| unreachable!("buffer is empty")), 0);
    }

    #[test]
    fn occupancy_trace_records_the_fig9_series() {
        let mut pfb = PendingFrameBuffer::new();
        pfb.record_occupancy(0);
        pfb.push(frame(EventType::TouchMove));
        pfb.push(frame(EventType::TouchMove));
        pfb.record_occupancy(1);
        pfb.commit_front(EventType::TouchMove);
        pfb.record_occupancy(2);
        assert_eq!(pfb.occupancy_trace(), &[(0, 0), (1, 2), (2, 1)]);
    }
}
