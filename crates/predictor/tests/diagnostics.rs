//! Diagnostic accuracy check across the full seen suite (also serves as the
//! end-to-end predictor integration test).

use pes_dom::EventType;
use pes_predictor::{evaluate_accuracy, LearnerConfig, SessionState, Trainer};
use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};

#[test]
#[ignore = "diagnostic: run with --ignored --nocapture to print per-app accuracy"]
fn per_app_accuracy_report() {
    let catalog = AppCatalog::paper_suite();
    let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
    let generator = TraceGenerator::new();
    let mut seen_sum = 0.0;
    let mut seen_n = 0.0;
    for app in catalog.apps() {
        let page = app.build_page();
        let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 3);
        let acc = evaluate_accuracy(&learner, &page, &traces);
        println!(
            "{:<16} seen={} accuracy={:.3}",
            app.name(),
            app.is_seen(),
            acc
        );
        if app.is_seen() {
            seen_sum += acc;
            seen_n += 1.0;
        }
    }
    println!("seen average = {:.3}", seen_sum / seen_n);

    // Confusion detail for one app.
    let app = catalog.find("cnn").unwrap();
    let page = app.build_page();
    let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 2);
    let mut confusion: std::collections::BTreeMap<(EventType, EventType), usize> =
        std::collections::BTreeMap::new();
    for trace in &traces {
        let mut state = SessionState::new(page.tree.clone());
        for (i, event) in trace.events().iter().enumerate() {
            if i > 0 {
                let (pred, conf) = learner.predict_next(&mut state);
                *confusion.entry((event.event_type(), pred)).or_default() += 1;
                if pred != event.event_type() {
                    println!(
                        "  miss at {i}: actual {:?} predicted {:?} (conf {:.2}) features {:?}",
                        event.event_type(),
                        pred,
                        conf,
                        state.features()
                    );
                }
            }
            state.observe(event);
        }
    }
    println!("confusion: {confusion:#?}");
}

#[test]
#[ignore = "diagnostic: label distribution conditioned on window features"]
fn label_distribution_report() {
    use pes_predictor::build_dataset;
    use pes_workload::{TraceGenerator, TRAINING_SEED_BASE};
    use std::collections::BTreeMap;
    let catalog = AppCatalog::paper_suite();
    let generator = TraceGenerator::new();
    let mut dataset = Vec::new();
    for app in catalog.seen_apps() {
        let page = app.build_page();
        let traces = generator.generate_many(app, &page, TRAINING_SEED_BASE, 9);
        dataset.extend(build_dataset(&page, &traces));
    }
    let mut by_key: BTreeMap<(String, u32), BTreeMap<EventType, usize>> = BTreeMap::new();
    for (f, label) in &dataset {
        let prev = EventType::ALL
            .iter()
            .enumerate()
            .find(|(i, _)| f[7 + i] > 0.5)
            .map(|(_, e)| format!("{e:?}"))
            .unwrap_or_else(|| "none".into());
        let scrolls = (f[4] * 5.0).round() as u32;
        *by_key
            .entry((prev, scrolls))
            .or_default()
            .entry(*label)
            .or_default() += 1;
    }
    for ((prev, scrolls), labels) in &by_key {
        let total: usize = labels.values().sum();
        if total < 30 {
            continue;
        }
        print!("prev={prev:<11} scrolls={scrolls} total={total:<5}");
        for (l, c) in labels {
            print!(" {:?}={:.2}", l, *c as f64 / total as f64);
        }
        println!();
    }
}
