//! The batched + SIMD prediction plane: class-major packed weights.
//!
//! [`crate::OneVsRestClassifier`] stores one `Vec<f64>` per class — fine for
//! training, but every prediction round then chases seven separate
//! allocations and pays f64 arithmetic for what is a 14-dimensional masked
//! argmax. [`PackedModel`] re-lays the trained weights as **one contiguous
//! class-major `f32` matrix** whose rows are zero-padded to a multiple of
//! the lane width, so a whole model is seven cache lines that stay resident
//! across a batch.
//!
//! The dot-product kernel is written once as four explicit lane
//! accumulators combined in a fixed order. The default build uses the
//! hand-unrolled scalar form; the `portable-simd` cargo feature (nightly
//! only) swaps in a `core::simd` variant that performs the *same* IEEE
//! operations in the *same* order — the two are bit-identical by
//! construction, which is what the differential proptests pin.
//!
//! [`PackedModel::predict_many`] runs one matrix pass over a whole batch of
//! feature rows (a fleet shard's pending sessions, or every trace of an
//! app in a figure sweep), turning per-event scalar cost into amortised
//! batch cost. [`QuantizedModel`] is the stretch tier: i8 weight rows with
//! a per-class scale, differentially tested against the f32 decisions.

use pes_dom::{EventType, EventTypeSet};

use crate::logistic::OneVsRestClassifier;

/// Lane width of the packed kernel. Rows are zero-padded to a multiple of
/// this, which folds the tail mask into the lane load: padding lanes
/// multiply by zero instead of branching.
pub const LANES: usize = 4;

/// Number of one-vs-rest classes (one per [`EventType`]).
pub const CLASSES: usize = EventType::ALL.len();

/// Numerically stable f32 sigmoid, the single-precision twin of the f64
/// reference in `logistic.rs`.
#[inline]
pub fn sigmoid_f32(z: f32) -> f32 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Four-lane fused accumulate over equal-length, lane-padded slices.
///
/// Scalar fallback: four independent accumulators, combined in a fixed
/// tree. The `portable-simd` variant below performs the identical
/// operations, so both builds produce bit-identical sums.
#[cfg(not(feature = "portable-simd"))]
#[inline(always)]
fn dot_lanes(row: &[f32], x: &[f32]) -> f32 {
    debug_assert_eq!(row.len(), x.len());
    debug_assert!(row.len().is_multiple_of(LANES));
    // Fast path for the serving shape (FEATURE_DIM = 14 padded to 16):
    // sixteen independent products folded by a balanced lane tree — no
    // serial accumulation chain at all, so the four adds per lane can
    // retire in parallel. The `portable-simd` build performs the identical
    // elementwise operations, so both remain bit-identical.
    if let (Ok(r), Ok(c)) = (<&[f32; 16]>::try_from(row), <&[f32; 16]>::try_from(x)) {
        return dot_lanes16(r, c);
    }
    let mut acc = [0.0f32; LANES];
    for (r, c) in row.chunks_exact(LANES).zip(x.chunks_exact(LANES)) {
        acc[0] += r[0] * c[0];
        acc[1] += r[1] * c[1];
        acc[2] += r[2] * c[2];
        acc[3] += r[3] * c[3];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// The 16-length serving kernel: per lane `l`, the reduction is the fixed
/// balanced tree `(p[l] + p[4+l]) + (p[8+l] + p[12+l])`, then the lane sums
/// fold as `(s[0] + s[1]) + (s[2] + s[3])`. The SIMD variant performs the
/// same elementwise tree, so the two builds never differ by a bit.
#[cfg(not(feature = "portable-simd"))]
#[inline(always)]
fn dot_lanes16(row: &[f32; 16], x: &[f32; 16]) -> f32 {
    let mut p = [0.0f32; 16];
    for i in 0..16 {
        p[i] = row[i] * x[i];
    }
    let mut s = [0.0f32; LANES];
    for l in 0..LANES {
        s[l] = (p[l] + p[LANES + l]) + (p[2 * LANES + l] + p[3 * LANES + l]);
    }
    (s[0] + s[1]) + (s[2] + s[3])
}

/// `core::simd` variant: same lane shape, same reduction order, therefore
/// bit-identical to the scalar fallback. Selected at build time by the
/// `portable-simd` feature (requires a nightly toolchain).
#[cfg(feature = "portable-simd")]
#[inline(always)]
fn dot_lanes(row: &[f32], x: &[f32]) -> f32 {
    use core::simd::Simd;
    debug_assert_eq!(row.len(), x.len());
    debug_assert!(row.len().is_multiple_of(LANES));
    // 16-length serving shape: four independent product vectors folded by
    // the same balanced elementwise tree as the scalar `dot_lanes16`.
    if row.len() == 16 {
        let p0 = Simd::<f32, LANES>::from_slice(&row[0..4]) * Simd::from_slice(&x[0..4]);
        let p1 = Simd::<f32, LANES>::from_slice(&row[4..8]) * Simd::from_slice(&x[4..8]);
        let p2 = Simd::<f32, LANES>::from_slice(&row[8..12]) * Simd::from_slice(&x[8..12]);
        let p3 = Simd::<f32, LANES>::from_slice(&row[12..16]) * Simd::from_slice(&x[12..16]);
        let s = ((p0 + p1) + (p2 + p3)).to_array();
        return (s[0] + s[1]) + (s[2] + s[3]);
    }
    let mut acc = Simd::<f32, LANES>::splat(0.0);
    for (r, c) in row.chunks_exact(LANES).zip(x.chunks_exact(LANES)) {
        acc = acc + Simd::<f32, LANES>::from_slice(r) * Simd::<f32, LANES>::from_slice(c);
    }
    let a = acc.to_array();
    (a[0] + a[1]) + (a[2] + a[3])
}

/// Masked argmax over the class scores, replicating the f64 reference's
/// tie-breaking exactly: classes are visited in [`EventType::ALL`] order
/// and the winner is replaced unless the candidate is strictly worse, so
/// ties resolve to the *later* class. An empty mask falls back to the full
/// class set, as in [`OneVsRestClassifier::predict_masked`].
#[inline]
fn argmax_masked(scores: &[f32; CLASSES], allowed: EventTypeSet) -> (EventType, f32) {
    let mask = if allowed.is_empty() {
        EventTypeSet::ALL
    } else {
        allowed
    };
    let mut best_c = usize::MAX;
    let mut best = 0.0f32;
    for (c, &e) in EventType::ALL.iter().enumerate() {
        if !mask.contains(e) {
            continue;
        }
        let s = scores[c];
        // Replace unless strictly worse — ties resolve to the later class,
        // and a NaN candidate replaces (NaN comparisons are false), exactly
        // as the f64 reference's `match` arm behaves. `s >= best` is NOT
        // equivalent: it is false for NaN, so the lint's suggestion would
        // change NaN handling.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if best_c == usize::MAX || !(s < best) {
            best_c = c;
            best = s;
        }
    }
    if best_c == usize::MAX {
        // Unreachable: the fallback mask always contains every class.
        return (EventType::ALL[0], scores[0]);
    }
    (EventType::ALL[best_c], best)
}

/// The trained one-vs-rest weights re-laid as one contiguous class-major
/// `f32` matrix: row `c` holds class `c`'s weights, zero-padded to a
/// multiple of [`LANES`]. The f64 per-class layout stays the reference
/// path; this is the serving layout the batch and SIMD kernels run on.
#[derive(Debug, Clone, PartialEq)]
pub struct PackedModel {
    /// `CLASSES * padded_dim` weights, class-major.
    weights: Vec<f32>,
    biases: [f32; CLASSES],
    dim: usize,
    padded_dim: usize,
}

impl PackedModel {
    /// Packs a trained classifier. Total for any classifier shape: classes
    /// with shorter weight vectors are zero-padded, longer ones truncated
    /// to the classifier's declared dimension — mirroring the zip-based
    /// robustness of the f64 `predict_proba`.
    pub fn from_classifier(classifier: &OneVsRestClassifier) -> Self {
        let dim = classifier.dim();
        let padded_dim = dim.next_multiple_of(LANES);
        let mut weights = vec![0.0f32; CLASSES * padded_dim];
        let mut biases = [0.0f32; CLASSES];
        for (c, model) in classifier.models().iter().enumerate().take(CLASSES) {
            biases[c] = model.bias() as f32;
            let row = &mut weights[c * padded_dim..(c + 1) * padded_dim];
            for (slot, w) in row.iter_mut().zip(model.weights().iter().take(dim)) {
                *slot = *w as f32;
            }
        }
        PackedModel {
            weights,
            biases,
            dim,
            padded_dim,
        }
    }

    /// The unpadded feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The lane-padded row stride (a multiple of [`LANES`]).
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// Class `c`'s padded weight row.
    fn row(&self, c: usize) -> &[f32] {
        &self.weights[c * self.padded_dim..(c + 1) * self.padded_dim]
    }

    /// Appends one lane-padded f32 row converted from f64 features to
    /// `out` — the building block for batch matrices. Extra features are
    /// truncated and missing ones zero-filled, like the f64 reference.
    pub fn pad_features_append(&self, features: &[f64], out: &mut Vec<f32>) {
        let start = out.len();
        out.extend(features.iter().take(self.dim).map(|&v| v as f32));
        out.resize(start + self.padded_dim, 0.0);
    }

    /// Converts f64 features into a single lane-padded f32 row in `out`
    /// (cleared first).
    pub fn pad_features(&self, features: &[f64], out: &mut Vec<f32>) {
        out.clear();
        self.pad_features_append(features, out);
    }

    /// Writes all [`CLASSES`] raw logit scores `w_c · x + b_c` for one
    /// lane-padded row. Every class is scored — masking happens at the
    /// argmax, keeping the kernel branch-free and uniform across paths.
    pub fn scores_into(&self, padded: &[f32], out: &mut [f32; CLASSES]) {
        debug_assert_eq!(padded.len(), self.padded_dim);
        for (c, slot) in out.iter_mut().enumerate() {
            *slot = dot_lanes(self.row(c), padded) + self.biases[c];
        }
    }

    /// Convenience form of [`PackedModel::scores_into`].
    pub fn scores(&self, padded: &[f32]) -> [f32; CLASSES] {
        let mut out = [0.0f32; CLASSES];
        self.scores_into(padded, &mut out);
        out
    }

    /// Predicts the most likely allowed event for one lane-padded feature
    /// row, returning its raw winning logit. Tie-breaks and empty-mask
    /// fallback replicate the f64 reference exactly. This is the score the
    /// batch path compares against bit for bit; [`PackedModel::predict_masked`]
    /// is the sigmoid-squashed form the sequence learner chains on.
    pub fn predict_masked_raw(&self, padded: &[f32], allowed: EventTypeSet) -> (EventType, f32) {
        let mut scores = [0.0f32; CLASSES];
        self.scores_into(padded, &mut scores);
        argmax_masked(&scores, allowed)
    }

    /// Predicts the most likely allowed event for one lane-padded feature
    /// row, returning its f32 confidence (the winning sigmoid). Tie-breaks
    /// and empty-mask fallback replicate the f64 reference exactly.
    pub fn predict_masked(&self, padded: &[f32], allowed: EventTypeSet) -> (EventType, f32) {
        let (event, z) = self.predict_masked_raw(padded, allowed);
        (event, sigmoid_f32(z))
    }

    /// One matrix pass over a whole batch: `padded_rows` holds
    /// `masks.len()` lane-padded rows back to back, `out` receives one
    /// `(event, raw winning logit)` per row (cleared first) — the logit
    /// rather than the sigmoid, because batch consumers (the fleet drain,
    /// the figure sweeps) only use the class decision and the sigmoid is
    /// strictly monotonic, so squashing cannot change it. Each row goes
    /// through the same kernel and argmax as
    /// [`PackedModel::predict_masked_raw`], so the batch path is
    /// bit-identical to the single path by construction — including empty
    /// and length-1 batches.
    pub fn predict_many(
        &self,
        padded_rows: &[f32],
        masks: &[EventTypeSet],
        out: &mut Vec<(EventType, f32)>,
    ) {
        debug_assert_eq!(padded_rows.len(), masks.len() * self.padded_dim);
        out.clear();
        out.reserve(masks.len());
        // Row-at-a-time over the shard: the whole model is seven cache
        // lines, so the weights stay resident across the batch and each
        // row's seven dots run out of registers. Every row goes through the
        // identical `scores_into` + `argmax_masked` as the single path.
        let mut scores = [0.0f32; CLASSES];
        for (row, &mask) in padded_rows.chunks_exact(self.padded_dim).zip(masks.iter()) {
            self.scores_into(row, &mut scores);
            out.push(argmax_masked(&scores, mask));
        }
    }
}

/// The quantised serving tier: i8 weight rows with one symmetric scale per
/// class (`w ≈ scale · q`, `q ∈ [-127, 127]`). Scores are reconstructed in
/// f32 with the same lane shape as [`PackedModel`], so the only difference
/// from the f32 tier is the quantisation error itself — which the catalog
/// differential test bounds at zero decision flips.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedModel {
    /// `CLASSES * padded_dim` quantised weights, class-major.
    weights: Vec<i8>,
    scales: [f32; CLASSES],
    biases: [f32; CLASSES],
    /// The f32 rows the quantised ones were derived from, retained for
    /// near-tie arbitration: when the i8 top-two margin falls inside the
    /// analytic rounding bound, the decision is re-scored exactly with the
    /// same lane kernel as [`PackedModel`], which is what makes the
    /// zero-decision-flip contract provable rather than empirical.
    exact: Vec<f32>,
    dim: usize,
    padded_dim: usize,
}

/// The lane kernel over an i8 row: dequantises per lane (`q as f32`) and
/// accumulates in f32 with the exact shape of [`dot_lanes`]; the caller
/// applies the per-class scale once to the reduced sum.
#[inline]
fn dot_lanes_i8(row: &[i8], x: &[f32]) -> f32 {
    debug_assert_eq!(row.len(), x.len());
    debug_assert!(row.len().is_multiple_of(LANES));
    let mut acc = [0.0f32; LANES];
    for (r, c) in row.chunks_exact(LANES).zip(x.chunks_exact(LANES)) {
        acc[0] += f32::from(r[0]) * c[0];
        acc[1] += f32::from(r[1]) * c[1];
        acc[2] += f32::from(r[2]) * c[2];
        acc[3] += f32::from(r[3]) * c[3];
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

impl QuantizedModel {
    /// Quantises a packed f32 model: per class, `scale = max|w| / 127` and
    /// `q = round(w / scale)`. An all-zero row keeps scale 1 (and all-zero
    /// quantised weights).
    pub fn from_packed(packed: &PackedModel) -> Self {
        let padded_dim = packed.padded_dim;
        let mut weights = vec![0i8; CLASSES * padded_dim];
        let mut scales = [1.0f32; CLASSES];
        for c in 0..CLASSES {
            let row = packed.row(c);
            let max_abs = row.iter().fold(0.0f32, |m, w| m.max(w.abs()));
            if max_abs > 0.0 {
                let scale = max_abs / 127.0;
                scales[c] = scale;
                for (slot, w) in weights[c * padded_dim..(c + 1) * padded_dim]
                    .iter_mut()
                    .zip(row.iter())
                {
                    *slot = (w / scale).round().clamp(-127.0, 127.0) as i8;
                }
            }
        }
        QuantizedModel {
            weights,
            scales,
            biases: packed.biases,
            exact: packed.weights.clone(),
            dim: packed.dim,
            padded_dim,
        }
    }

    /// Quantises straight from a trained classifier.
    pub fn from_classifier(classifier: &OneVsRestClassifier) -> Self {
        QuantizedModel::from_packed(&PackedModel::from_classifier(classifier))
    }

    /// The unpadded feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The lane-padded row stride.
    pub fn padded_dim(&self) -> usize {
        self.padded_dim
    }

    /// The per-class dequantisation scales.
    pub fn scales(&self) -> &[f32; CLASSES] {
        &self.scales
    }

    /// Writes all [`CLASSES`] reconstructed logit scores
    /// `scale_c · (q_c · x) + b_c` for one lane-padded row.
    pub fn scores_into(&self, padded: &[f32], out: &mut [f32; CLASSES]) {
        debug_assert_eq!(padded.len(), self.padded_dim);
        for (c, slot) in out.iter_mut().enumerate() {
            let row = &self.weights[c * self.padded_dim..(c + 1) * self.padded_dim];
            *slot = self.scales[c] * dot_lanes_i8(row, padded) + self.biases[c];
        }
    }

    /// Convenience form of [`QuantizedModel::scores_into`].
    pub fn scores(&self, padded: &[f32]) -> [f32; CLASSES] {
        let mut out = [0.0f32; CLASSES];
        self.scores_into(padded, &mut out);
        out
    }

    /// Masked prediction over the quantised tier, with the same argmax,
    /// tie-breaking and empty-mask fallback as the f32 paths.
    ///
    /// Fast path: argmax over the reconstructed i8 scores. Whenever the
    /// winning margin over any other allowed class falls inside the
    /// analytic rounding bound `0.5 · (scale_w + scale_c) · Σ|x|` (plus a
    /// small f32 accumulation slack), the decision is re-scored with the
    /// retained f32 rows through the identical lane kernel — so the class
    /// decision always equals [`PackedModel::predict_masked`]: clear
    /// margins cannot flip under a bounded perturbation, and near-ties are
    /// arbitrated by the exact scores themselves.
    pub fn predict_masked(&self, padded: &[f32], allowed: EventTypeSet) -> (EventType, f32) {
        let mut scores = [0.0f32; CLASSES];
        self.scores_into(padded, &mut scores);
        let effective = if allowed.is_empty() {
            EventTypeSet::ALL
        } else {
            allowed
        };
        let (winner, z) = argmax_masked(&scores, allowed);
        let abs_sum: f32 = padded.iter().map(|x| x.abs()).sum();
        let w = winner.class_index();
        let near_tie = EventType::ALL.iter().enumerate().any(|(c, event)| {
            if c == w || !effective.contains(*event) {
                return false;
            }
            let bound = 0.5 * abs_sum * (self.scales[w] + self.scales[c]) * 1.001 + 1e-4;
            z - scores[c] <= bound
        });
        if near_tie {
            let mut exact = [0.0f32; CLASSES];
            for (c, slot) in exact.iter_mut().enumerate() {
                let row = &self.exact[c * self.padded_dim..(c + 1) * self.padded_dim];
                *slot = dot_lanes(row, padded) + self.biases[c];
            }
            let (event, ze) = argmax_masked(&exact, allowed);
            return (event, sigmoid_f32(ze));
        }
        (winner, sigmoid_f32(z))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use crate::logistic::LogisticModel;

    fn toy_classifier() -> OneVsRestClassifier {
        let models = EventType::ALL
            .iter()
            .enumerate()
            .map(|(c, _)| {
                let weights = (0..FEATURE_DIM)
                    .map(|i| ((c * FEATURE_DIM + i) as f64 * 0.37).sin())
                    .collect();
                LogisticModel::from_coefficients(weights, c as f64 * 0.1 - 0.3)
            })
            .collect();
        OneVsRestClassifier::from_models(models, FEATURE_DIM)
    }

    fn toy_features() -> Vec<f64> {
        (0..FEATURE_DIM).map(|i| (i as f64 * 0.61).cos()).collect()
    }

    #[test]
    fn packing_pads_rows_to_the_lane_width() {
        let packed = PackedModel::from_classifier(&toy_classifier());
        assert_eq!(packed.dim(), FEATURE_DIM);
        assert_eq!(packed.padded_dim(), FEATURE_DIM.next_multiple_of(LANES));
        assert!(packed.padded_dim().is_multiple_of(LANES));
        // The padding lanes are zero, so they contribute nothing.
        for c in 0..CLASSES {
            for &w in &packed.row(c)[FEATURE_DIM..] {
                assert_eq!(w.to_bits(), 0.0f32.to_bits());
            }
        }
    }

    #[test]
    fn packed_scores_track_the_f64_reference() {
        let clf = toy_classifier();
        let packed = PackedModel::from_classifier(&clf);
        let features = toy_features();
        let mut padded = Vec::new();
        packed.pad_features(&features, &mut padded);
        let scores = packed.scores(&padded);
        for e in EventType::ALL {
            let p64 = clf.models()[e.class_index()].predict_proba(&features);
            let p32 = f64::from(sigmoid_f32(scores[e.class_index()]));
            assert!((p64 - p32).abs() < 1e-5, "{e:?}: f64 {p64} vs packed {p32}");
        }
    }

    #[test]
    fn packed_decision_matches_the_f64_reference_on_clear_margins() {
        let clf = toy_classifier();
        let packed = PackedModel::from_classifier(&clf);
        let features = toy_features();
        let mut padded = Vec::new();
        packed.pad_features(&features, &mut padded);
        let (ref64, _) = clf.predict_masked(&features, EventTypeSet::ALL);
        let (ref32, conf) = packed.predict_masked(&padded, EventTypeSet::ALL);
        assert_eq!(ref64, ref32);
        assert!(conf > 0.0 && conf <= 1.0);
    }

    #[test]
    fn predict_many_is_bit_identical_to_single_predictions() {
        let packed = PackedModel::from_classifier(&toy_classifier());
        let mut rows = Vec::new();
        let mut masks = Vec::new();
        for k in 0..5usize {
            let features: Vec<f64> = (0..FEATURE_DIM)
                .map(|i| ((i + k) as f64 * 0.43).sin())
                .collect();
            packed.pad_features_append(&features, &mut rows);
            let mut mask = EventTypeSet::EMPTY;
            for (j, e) in EventType::ALL.into_iter().enumerate() {
                if (k + j) % 2 == 0 {
                    mask.insert(e);
                }
            }
            masks.push(mask);
        }
        let mut out = Vec::new();
        packed.predict_many(&rows, &masks, &mut out);
        assert_eq!(out.len(), masks.len());
        for (k, &(event, logit)) in out.iter().enumerate() {
            let row = &rows[k * packed.padded_dim()..(k + 1) * packed.padded_dim()];
            let (se, sz) = packed.predict_masked_raw(row, masks[k]);
            assert_eq!(event, se);
            assert_eq!(logit.to_bits(), sz.to_bits(), "row {k} not bit-identical");
            let (ce, conf) = packed.predict_masked(row, masks[k]);
            assert_eq!(event, ce, "sigmoid squashing must not move the argmax");
            assert_eq!(conf.to_bits(), sigmoid_f32(logit).to_bits());
        }
    }

    #[test]
    fn predict_many_handles_empty_and_length_one_batches() {
        let packed = PackedModel::from_classifier(&toy_classifier());
        let mut out = vec![(EventType::ALL[0], 0.0f32)];
        packed.predict_many(&[], &[], &mut out);
        assert!(out.is_empty());
        let mut row = Vec::new();
        packed.pad_features(&toy_features(), &mut row);
        packed.predict_many(&row, &[EventTypeSet::ALL], &mut out);
        assert_eq!(out.len(), 1);
        let (se, sz) = packed.predict_masked_raw(&row, EventTypeSet::ALL);
        assert_eq!(out[0].0, se);
        assert_eq!(out[0].1.to_bits(), sz.to_bits());
    }

    #[test]
    fn ties_resolve_to_the_later_class_like_the_reference() {
        // All-zero weights: every class scores exactly the bias 0, so the
        // argmax is a 7-way tie — the reference resolves to the last class.
        let clf = OneVsRestClassifier::zeros(FEATURE_DIM);
        let packed = PackedModel::from_classifier(&clf);
        let features = toy_features();
        let mut padded = Vec::new();
        packed.pad_features(&features, &mut padded);
        let (ref64, _) = clf.predict_masked(&features, EventTypeSet::ALL);
        let (ref32, _) = packed.predict_masked(&padded, EventTypeSet::ALL);
        assert_eq!(ref64, *EventType::ALL.last().expect("non-empty"));
        assert_eq!(ref32, ref64);
    }

    #[test]
    fn empty_mask_falls_back_to_all_classes() {
        let packed = PackedModel::from_classifier(&toy_classifier());
        let mut padded = Vec::new();
        packed.pad_features(&toy_features(), &mut padded);
        let (with_all, a) = packed.predict_masked(&padded, EventTypeSet::ALL);
        let (with_empty, b) = packed.predict_masked(&padded, EventTypeSet::EMPTY);
        assert_eq!(with_all, with_empty);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn quantised_scores_stay_within_the_per_class_error_bound() {
        let packed = PackedModel::from_classifier(&toy_classifier());
        let quantised = QuantizedModel::from_packed(&packed);
        let mut padded = Vec::new();
        packed.pad_features(&toy_features(), &mut padded);
        let f32_scores = packed.scores(&padded);
        let q_scores = quantised.scores(&padded);
        let abs_sum: f32 = padded.iter().map(|x| x.abs()).sum();
        for c in 0..CLASSES {
            // Quantisation error is at most scale/2 per weight.
            let bound = quantised.scales()[c] * 0.5 * abs_sum + 1e-4;
            assert!(
                (f32_scores[c] - q_scores[c]).abs() <= bound,
                "class {c}: {} vs {} (bound {bound})",
                f32_scores[c],
                q_scores[c]
            );
        }
    }

    #[test]
    fn quantising_a_zero_model_is_exact() {
        let clf = OneVsRestClassifier::zeros(FEATURE_DIM);
        let quantised = QuantizedModel::from_classifier(&clf);
        let mut padded = Vec::new();
        PackedModel::from_classifier(&clf).pad_features(&toy_features(), &mut padded);
        for s in quantised.scores(&padded) {
            assert_eq!(s.to_bits(), 0.0f32.to_bits());
        }
        assert_eq!(quantised.scales(), &[1.0f32; CLASSES]);
    }
}
