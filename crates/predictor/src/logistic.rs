//! Logistic-regression models for next-event prediction.
//!
//! The event sequence learner employs a set of logistic models, one per
//! possible next event, each estimating `ln(p / (1 - p)) = xβ`; the event
//! with the highest probability is deemed the next event (Sec. 5.2). The
//! paper chooses logistic regression over heavier sequence models (LSTMs)
//! because it reaches sufficient accuracy at microsecond-scale inference
//! cost (Sec. 6.3).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use pes_dom::{EventType, EventTypeSet};

use crate::features::FeatureVector;

/// A single binary logistic model `p = sigmoid(w · x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticModel {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticModel {
    /// Creates a zero-initialised model for `dim` features.
    pub fn zeros(dim: usize) -> Self {
        LogisticModel {
            weights: vec![0.0; dim],
            bias: 0.0,
        }
    }

    /// Creates a model from explicit coefficients.
    pub fn from_coefficients(weights: Vec<f64>, bias: f64) -> Self {
        LogisticModel { weights, bias }
    }

    /// The feature dimension the model expects.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// The learned weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The probability `p(y = 1 | x)`. Extra features are ignored and missing
    /// features are treated as zero, so the model is robust to callers built
    /// against a different feature revision.
    pub fn predict_proba(&self, features: &[f64]) -> f64 {
        let z: f64 = self
            .weights
            .iter()
            .zip(features.iter())
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// One epoch of stochastic gradient descent over `(features, label)`
    /// pairs with learning rate `lr` and L2 regularisation `l2`.
    pub fn sgd_epoch(&mut self, samples: &[(&FeatureVector, bool)], lr: f64, l2: f64) {
        for (x, y) in samples {
            let p = self.predict_proba(x);
            let error = p - f64::from(*y);
            for (w, xi) in self.weights.iter_mut().zip(x.iter()) {
                *w -= lr * (error * xi + l2 * *w);
            }
            self.bias -= lr * error;
        }
    }
}

/// A one-vs-rest classifier over the seven DOM event types.
///
/// # Examples
///
/// ```
/// use pes_predictor::OneVsRestClassifier;
/// use pes_dom::EventType;
///
/// let untrained = OneVsRestClassifier::zeros(3);
/// let (event, confidence) = untrained.predict(&vec![0.1, 0.2, 0.3], None);
/// assert!(EventType::ALL.contains(&event));
/// assert!(confidence > 0.0 && confidence <= 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OneVsRestClassifier {
    models: Vec<LogisticModel>,
    dim: usize,
}

impl OneVsRestClassifier {
    /// Creates a zero-initialised classifier for `dim` features.
    pub fn zeros(dim: usize) -> Self {
        OneVsRestClassifier {
            models: EventType::ALL
                .iter()
                .map(|_| LogisticModel::zeros(dim))
                .collect(),
            dim,
        }
    }

    /// Creates a classifier from explicit per-class models (indexed by
    /// [`EventType::class_index`]). Missing classes are zero-filled and
    /// extras truncated, so any model list yields a full class set.
    pub fn from_models(models: Vec<LogisticModel>, dim: usize) -> Self {
        let mut models = models;
        models.truncate(EventType::ALL.len());
        while models.len() < EventType::ALL.len() {
            models.push(LogisticModel::zeros(dim));
        }
        OneVsRestClassifier { models, dim }
    }

    /// The feature dimension the classifier expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-class binary models, indexed by [`EventType::class_index`].
    pub fn models(&self) -> &[LogisticModel] {
        &self.models
    }

    /// Per-class probabilities (not normalised across classes — each is an
    /// independent one-vs-rest estimate, exactly as in the paper).
    pub fn probabilities(&self, features: &[f64]) -> Vec<(EventType, f64)> {
        EventType::ALL
            .iter()
            .map(|e| (*e, self.models[e.class_index()].predict_proba(features)))
            .collect()
    }

    /// Predicts the most likely next event and its confidence (the winning
    /// model's probability). When `allowed` is provided, only those classes
    /// compete — this is the LNES masking of Sec. 5.2; if the mask is empty
    /// the full class set is used.
    pub fn predict(&self, features: &[f64], allowed: Option<&[EventType]>) -> (EventType, f64) {
        let mask = match allowed {
            Some(types) => types.iter().copied().collect(),
            None => EventTypeSet::ALL,
        };
        self.predict_masked(features, mask)
    }

    /// [`OneVsRestClassifier::predict`] with the mask as a bitset: the
    /// allocation-free form the sequence learner calls on every step of
    /// every prediction round. An empty mask falls back to the full class
    /// set. Ties resolve to the later class in [`EventType::ALL`] order,
    /// matching the slice-based `predict`.
    pub fn predict_masked(&self, features: &[f64], allowed: EventTypeSet) -> (EventType, f64) {
        let mask = if allowed.is_empty() {
            EventTypeSet::ALL
        } else {
            allowed
        };
        let mut winner: Option<(EventType, f64)> = None;
        for e in EventType::ALL {
            if !mask.contains(e) {
                continue;
            }
            let p = self.models[e.class_index()].predict_proba(features);
            debug_assert!(p.is_finite(), "probabilities are finite");
            match winner {
                Some((_, best)) if p < best => {}
                _ => winner = Some((e, p)),
            }
        }
        match winner {
            Some(w) => w,
            // Unreachable: the fallback mask always contains every class.
            None => (EventType::ALL[0], 0.0),
        }
    }

    /// Trains the classifier with stochastic gradient descent.
    ///
    /// `dataset` holds `(features, label)` pairs; training shuffles the data
    /// each epoch with a deterministic RNG so results are reproducible.
    pub fn train(
        &mut self,
        dataset: &[(FeatureVector, EventType)],
        epochs: usize,
        lr: f64,
        l2: f64,
        seed: u64,
    ) {
        if dataset.is_empty() {
            return;
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        // One reusable sample buffer across all epochs and classes instead
        // of an allocation per (epoch, class) pair.
        let mut samples: Vec<(&FeatureVector, bool)> = Vec::with_capacity(dataset.len());
        for _ in 0..epochs {
            order.shuffle(&mut rng);
            for event_type in EventType::ALL {
                let class = event_type.class_index();
                samples.clear();
                samples.extend(
                    order
                        .iter()
                        .map(|&i| (&dataset[i].0, dataset[i].1 == event_type)),
                );
                self.models[class].sgd_epoch(&samples, lr, l2);
            }
        }
    }

    /// Fraction of samples whose true label is the classifier's top choice.
    pub fn accuracy(&self, dataset: &[(FeatureVector, EventType)]) -> f64 {
        if dataset.is_empty() {
            return 0.0;
        }
        let correct = dataset
            .iter()
            .filter(|(x, y)| self.predict(x, None).0 == *y)
            .count();
        correct as f64 / dataset.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!(sigmoid(1_000.0).is_finite());
        assert!(sigmoid(-1_000.0).is_finite());
    }

    #[test]
    fn zero_model_predicts_one_half() {
        let m = LogisticModel::zeros(4);
        assert!((m.predict_proba(&[1.0, 2.0, 3.0, 4.0]) - 0.5).abs() < 1e-12);
        assert_eq!(m.dim(), 4);
    }

    #[test]
    fn explicit_coefficients_behave_as_expected() {
        let m = LogisticModel::from_coefficients(vec![2.0, -1.0], 0.5);
        assert!(m.predict_proba(&[3.0, 0.0]) > 0.99);
        assert!(m.predict_proba(&[0.0, 5.0]) < 0.05);
        assert_eq!(m.weights(), &[2.0, -1.0]);
        assert_eq!(m.bias(), 0.5);
        // Shorter feature vectors are padded with zeros.
        assert!((m.predict_proba(&[]) - sigmoid(0.5)).abs() < 1e-12);
    }

    fn separable_dataset() -> Vec<(FeatureVector, EventType)> {
        // Three classes, each activated by one dominant feature.
        let mut data = Vec::new();
        for i in 0..60 {
            let noise = (i % 7) as f64 * 0.01;
            data.push((vec![1.0, noise, 0.0], EventType::Scroll));
            data.push((vec![noise, 1.0, 0.0], EventType::Click));
            data.push((vec![0.0, noise, 1.0], EventType::Navigate));
        }
        data
    }

    #[test]
    fn training_learns_a_separable_problem() {
        let data = separable_dataset();
        let mut clf = OneVsRestClassifier::zeros(3);
        let before = clf.accuracy(&data);
        clf.train(&data, 60, 0.3, 1e-4, 7);
        let after = clf.accuracy(&data);
        assert!(after > 0.95, "accuracy after training: {after}");
        assert!(after > before);
    }

    #[test]
    fn training_is_deterministic_given_the_seed() {
        let data = separable_dataset();
        let mut a = OneVsRestClassifier::zeros(3);
        let mut b = OneVsRestClassifier::zeros(3);
        a.train(&data, 20, 0.3, 1e-4, 11);
        b.train(&data, 20, 0.3, 1e-4, 11);
        assert_eq!(a, b);
        let mut c = OneVsRestClassifier::zeros(3);
        c.train(&data, 20, 0.3, 1e-4, 12);
        assert_ne!(a, c);
    }

    #[test]
    fn lnes_masking_restricts_the_prediction() {
        let data = separable_dataset();
        let mut clf = OneVsRestClassifier::zeros(3);
        clf.train(&data, 60, 0.3, 1e-4, 7);
        // A clearly "scroll" feature vector, but scroll is not allowed by the
        // (hypothetical) LNES: the classifier must pick among the allowed.
        let features = vec![1.0, 0.0, 0.0];
        let (unmasked, _) = clf.predict(&features, None);
        assert_eq!(unmasked, EventType::Scroll);
        let (masked, _) = clf.predict(&features, Some(&[EventType::Click, EventType::Navigate]));
        assert_ne!(masked, EventType::Scroll);
        // An empty mask falls back to the full class set.
        let (fallback, _) = clf.predict(&features, Some(&[]));
        assert_eq!(fallback, EventType::Scroll);
    }

    #[test]
    fn empty_dataset_is_a_no_op() {
        let mut clf = OneVsRestClassifier::zeros(3);
        let untouched = clf.clone();
        clf.train(&[], 10, 0.3, 1e-4, 0);
        assert_eq!(clf, untouched);
        assert_eq!(clf.accuracy(&[]), 0.0);
    }

    #[test]
    fn probabilities_cover_every_class() {
        let clf = OneVsRestClassifier::zeros(5);
        let probs = clf.probabilities(&[0.0; 5]);
        assert_eq!(probs.len(), EventType::ALL.len());
        for (_, p) in probs {
            assert!((p - 0.5).abs() < 1e-12);
        }
    }
}
