//! # pes-predictor — the hybrid learning-analytical event predictor
//!
//! The prediction half of PES (Feng & Zhu, ISCA 2019, Sec. 5.2): user events
//! within an interaction session exhibit strong temporal correlation, so a
//! set of per-class logistic models over the Table 1 features predicts the
//! type of the immediate next event; the DOM analyzer's Likely-Next-Event-Set
//! narrows the candidate classes to those the application logic allows; and
//! the sequence learner chains predictions recurrently until the cumulative
//! confidence drops below a threshold (70 % by default), producing the
//! predicted event sequence the optimizer schedules speculatively.
//!
//! * [`SessionState`] — the live session context (DOM, viewport, recent-event
//!   window) and the feature extraction of Table 1,
//! * [`OneVsRestClassifier`] / [`LogisticModel`] — the statistical model,
//! * [`EventSequenceLearner`] — confidence-chained multi-step prediction with
//!   LNES masking,
//! * [`Trainer`] — offline training on generated traces plus the Fig. 8
//!   accuracy evaluation.
//!
//! # Examples
//!
//! ```no_run
//! use pes_predictor::{evaluate_accuracy, LearnerConfig, Trainer};
//! use pes_workload::{AppCatalog, TraceGenerator, EVAL_SEED_BASE};
//!
//! let catalog = AppCatalog::paper_suite();
//! let learner = Trainer::new().train_learner(&catalog, LearnerConfig::paper_defaults());
//!
//! let app = catalog.find("ebay").unwrap();
//! let page = app.build_page();
//! let eval = TraceGenerator::new().generate_many(app, &page, EVAL_SEED_BASE, 3);
//! let accuracy = evaluate_accuracy(&learner, &page, &eval);
//! assert!(accuracy > 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![cfg_attr(feature = "portable-simd", feature(portable_simd))]

pub mod features;
pub mod learner;
pub mod logistic;
pub mod packed;
pub mod trainer;

pub use features::{FeatureVector, HistoryWindow, SessionState, FEATURE_DIM, HISTORY_WINDOW};
pub use learner::{EventSequenceLearner, LearnerConfig, PredictScratch, PredictedEvent};
pub use logistic::{LogisticModel, OneVsRestClassifier};
pub use packed::{sigmoid_f32, PackedModel, QuantizedModel, CLASSES, LANES};
pub use trainer::{
    build_dataset, evaluate_accuracy, evaluate_accuracy_batched, TrainError, Trainer,
    TrainingConfig,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SessionState>();
        assert_send_sync::<OneVsRestClassifier>();
        assert_send_sync::<EventSequenceLearner>();
        assert_send_sync::<Trainer>();
    }
}
