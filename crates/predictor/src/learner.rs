//! The event sequence learner: recurrent multi-step prediction with a
//! cumulative-confidence cutoff (Sec. 5.2).
//!
//! Every step predicts the type of the immediate next event from the current
//! session features, restricted to the Likely-Next-Event-Set derived from
//! the DOM; the predicted event is fed back into a scratch copy of the
//! session state to predict the subsequent event, until the product of the
//! per-event confidences drops below the configured threshold (70 % by
//! default). The number of events predicted ahead is the *prediction degree*.

use pes_acmp::units::TimeUs;
use pes_acmp::CpuDemand;
use pes_dom::{EventType, EventTypeSet};
use pes_webrt::{EventId, WebEvent};

use crate::features::{FeatureVector, SessionState, FEATURE_DIM};
use crate::logistic::OneVsRestClassifier;
use crate::packed::PackedModel;

/// One predicted future event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictedEvent {
    /// The predicted event type.
    pub event_type: EventType,
    /// The confidence (probability) of this individual prediction.
    pub confidence: f64,
    /// The cumulative confidence of the sequence up to and including this
    /// event.
    pub cumulative_confidence: f64,
}

/// Configuration of the sequence learner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerConfig {
    /// Prediction stops once the cumulative confidence of the sequence would
    /// fall below this threshold (the paper uses 70 %).
    pub confidence_threshold: f64,
    /// Hard cap on the prediction degree.
    pub max_degree: usize,
    /// Whether the DOM-derived LNES masks the candidate classes (the
    /// "predictor design" ablation of Sec. 6.5 turns this off).
    pub use_lnes: bool,
    /// Whether prediction rounds run on the packed f32 plane
    /// ([`PackedModel`]) instead of the per-class f64 reference path. Off
    /// by default: the reference path keeps the pinned goldens bit-stable,
    /// the packed plane serves the batch/fleet tiers.
    pub use_packed: bool,
}

impl Default for LearnerConfig {
    fn default() -> Self {
        LearnerConfig {
            confidence_threshold: 0.70,
            max_degree: 8,
            use_lnes: true,
            use_packed: false,
        }
    }
}

impl LearnerConfig {
    /// The paper's default configuration (70 % threshold, LNES enabled).
    pub fn paper_defaults() -> Self {
        LearnerConfig::default()
    }

    /// Returns a copy with a different confidence threshold (clamped to
    /// `[0, 1]`), used by the Fig. 14 sensitivity sweep.
    pub fn with_confidence_threshold(mut self, threshold: f64) -> Self {
        self.confidence_threshold = threshold.clamp(0.0, 1.0);
        self
    }

    /// Returns a copy with DOM (LNES) masking enabled or disabled.
    pub fn with_lnes(mut self, use_lnes: bool) -> Self {
        self.use_lnes = use_lnes;
        self
    }

    /// Returns a copy with the packed f32 prediction plane enabled or
    /// disabled.
    pub fn with_packed(mut self, use_packed: bool) -> Self {
        self.use_packed = use_packed;
        self
    }
}

/// Reusable buffers for [`EventSequenceLearner::predict_sequence_with`]: the
/// scratch session the predictions are fed back into, the feature vector and
/// the output sequence. Holding one of these per replay makes prediction
/// rounds run without cloning the session state or allocating — the scratch
/// session shares the live session's DOM through its `Arc` and only the
/// small history window is copied per round.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    session: Option<SessionState>,
    features: FeatureVector,
    /// Lane-padded f32 row for the packed plane (unused on the reference
    /// path).
    features32: Vec<f32>,
    out: Vec<PredictedEvent>,
}

impl PredictScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        PredictScratch::default()
    }
}

/// The event sequence learner.
///
/// # Examples
///
/// ```
/// use pes_predictor::{EventSequenceLearner, LearnerConfig, OneVsRestClassifier, SessionState};
/// use pes_predictor::features::FEATURE_DIM;
/// use pes_dom::PageBuilder;
///
/// let page = PageBuilder::new(360).nav_bar(3).article_list(6, true).text_block(2_000).build();
/// let learner = EventSequenceLearner::new(
///     OneVsRestClassifier::zeros(FEATURE_DIM),
///     LearnerConfig::paper_defaults(),
/// );
/// let state = SessionState::new(page.tree.clone());
/// // An untrained classifier has 0.5 confidence everywhere, which is below
/// // the 70 % threshold, so no events are predicted ahead.
/// assert!(learner.predict_sequence(&state).is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventSequenceLearner {
    classifier: OneVsRestClassifier,
    /// The classifier's weights re-laid for the batch/SIMD plane; built
    /// eagerly (seven padded f32 rows — a few hundred bytes) so every
    /// learner can serve both paths.
    packed: PackedModel,
    config: LearnerConfig,
}

impl EventSequenceLearner {
    /// Creates a learner from a trained classifier and a configuration.
    pub fn new(classifier: OneVsRestClassifier, config: LearnerConfig) -> Self {
        let packed = PackedModel::from_classifier(&classifier);
        EventSequenceLearner {
            classifier,
            packed,
            config,
        }
    }

    /// The learner configuration.
    pub fn config(&self) -> &LearnerConfig {
        &self.config
    }

    /// Replaces the configuration (used by sensitivity sweeps).
    pub fn set_config(&mut self, config: LearnerConfig) {
        self.config = config;
    }

    /// The underlying classifier.
    pub fn classifier(&self) -> &OneVsRestClassifier {
        &self.classifier
    }

    /// The packed class-major f32 twin of the classifier — the model the
    /// batch (`predict_many`) and SIMD paths run on.
    pub fn packed(&self) -> &PackedModel {
        &self.packed
    }

    /// Predicts the type of the immediate next event from the current session
    /// state, together with its confidence. Takes the state mutably so the
    /// session's incremental analyzer can lazily resynchronise its cached
    /// viewport aggregates; the logical session state is not changed.
    pub fn predict_next(&self, state: &mut SessionState) -> (EventType, f64) {
        let mut features = Vec::with_capacity(FEATURE_DIM);
        self.predict_next_into(state, &mut features)
    }

    /// [`EventSequenceLearner::predict_next`] writing the features into a
    /// caller-owned buffer: the allocation-free step of a prediction round.
    fn predict_next_into(
        &self,
        state: &mut SessionState,
        features: &mut FeatureVector,
    ) -> (EventType, f64) {
        state.features_into(features);
        let allowed = if self.config.use_lnes {
            state.allowed_types()
        } else {
            EventTypeSet::ALL
        };
        self.classifier.predict_masked(features, allowed)
    }

    /// The packed-plane twin of [`predict_next_into`]: same features and
    /// mask, inference on the class-major f32 matrix. The confidence is
    /// the packed plane's f32 sigmoid widened to f64.
    ///
    /// [`predict_next_into`]: EventSequenceLearner::predict_next_into
    fn predict_next_packed_into(
        &self,
        state: &mut SessionState,
        features: &mut FeatureVector,
        features32: &mut Vec<f32>,
    ) -> (EventType, f64) {
        state.features_into(features);
        let allowed = if self.config.use_lnes {
            state.allowed_types()
        } else {
            EventTypeSet::ALL
        };
        self.packed.pad_features(features, features32);
        let (event, confidence) = self.packed.predict_masked(features32, allowed);
        (event, f64::from(confidence))
    }

    /// [`EventSequenceLearner::predict_next`] on the packed f32 plane,
    /// regardless of [`LearnerConfig::use_packed`] — the differential
    /// tests' handle on the packed single-prediction path.
    pub fn predict_next_packed(&self, state: &mut SessionState) -> (EventType, f64) {
        let mut features = Vec::with_capacity(FEATURE_DIM);
        let mut features32 = Vec::new();
        self.predict_next_packed_into(state, &mut features, &mut features32)
    }

    /// Predicts a sequence of future events. Prediction continues while the
    /// cumulative confidence stays at or above the threshold and the degree
    /// stays below the configured cap.
    ///
    /// Convenience form of [`EventSequenceLearner::predict_sequence_with`]
    /// that allocates a fresh scratch; hot callers (the PES runtime) hold a
    /// [`PredictScratch`] per replay instead.
    pub fn predict_sequence(&self, state: &SessionState) -> Vec<PredictedEvent> {
        let mut scratch = PredictScratch::new();
        self.predict_sequence_with(state, &mut scratch);
        std::mem::take(&mut scratch.out)
    }

    /// Predicts a sequence of future events using caller-owned buffers: no
    /// session clone (the scratch session is rebuilt in place, sharing the
    /// live session's DOM) and no per-round allocation in the steady state.
    /// The returned slice lives in `scratch` and is valid until the next
    /// call.
    pub fn predict_sequence_with<'a>(
        &self,
        state: &SessionState,
        scratch: &'a mut PredictScratch,
    ) -> &'a [PredictedEvent] {
        scratch.out.clear();
        // Reuse the scratch session across rounds: `clone_from` bumps the
        // shared tree's refcount and reuses the history window's ring buffer.
        let session = match &mut scratch.session {
            Some(session) => {
                session.clone_from(state);
                session
            }
            None => scratch.session.insert(state.clone()),
        };
        let mut cumulative = 1.0;
        for step in 0..self.config.max_degree {
            let (event_type, confidence) = if self.config.use_packed {
                self.predict_next_packed_into(
                    session,
                    &mut scratch.features,
                    &mut scratch.features32,
                )
            } else {
                self.predict_next_into(session, &mut scratch.features)
            };
            let next_cumulative = cumulative * confidence;
            if next_cumulative < self.config.confidence_threshold {
                break;
            }
            cumulative = next_cumulative;
            scratch.out.push(PredictedEvent {
                event_type,
                confidence,
                cumulative_confidence: cumulative,
            });
            // Feed the prediction back: the scratch session observes a
            // synthetic event of the predicted type (no concrete target — the
            // learner predicts types, not nodes).
            let synthetic = WebEvent::new(
                EventId::new(step as u64),
                event_type,
                None,
                TimeUs::ZERO,
                CpuDemand::ZERO,
            );
            session.observe(&synthetic);
        }
        &scratch.out
    }

    /// The prediction degree (sequence length) the learner would produce from
    /// the given state.
    pub fn prediction_degree(&self, state: &SessionState) -> usize {
        let mut scratch = PredictScratch::new();
        self.prediction_degree_with(state, &mut scratch)
    }

    /// [`EventSequenceLearner::prediction_degree`] with caller-owned buffers.
    pub fn prediction_degree_with(
        &self,
        state: &SessionState,
        scratch: &mut PredictScratch,
    ) -> usize {
        self.predict_sequence_with(state, scratch).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::FEATURE_DIM;
    use crate::logistic::LogisticModel;
    use pes_dom::PageBuilder;

    /// A hand-built classifier that is always very confident the next event
    /// is a scroll.
    fn confident_scroll_classifier() -> OneVsRestClassifier {
        let mut models: Vec<LogisticModel> = Vec::new();
        for e in EventType::ALL {
            let bias = if e == EventType::Scroll { 4.0 } else { -4.0 };
            models.push(LogisticModel::from_coefficients(
                vec![0.0; FEATURE_DIM],
                bias,
            ));
        }
        let mut clf = OneVsRestClassifier::zeros(FEATURE_DIM);
        // Replace by re-creating: OneVsRestClassifier does not expose mutable
        // models, so emulate confidence via training on a biased dataset.
        let dataset: Vec<(Vec<f64>, EventType)> = (0..400)
            .map(|i| {
                let mut f = vec![0.0; FEATURE_DIM];
                f[0] = (i % 10) as f64 / 10.0;
                (f, EventType::Scroll)
            })
            .collect();
        clf.train(&dataset, 80, 0.5, 0.0, 3);
        drop(models);
        clf
    }

    fn state() -> SessionState {
        let page = PageBuilder::new(360)
            .nav_bar(3)
            .article_list(8, true)
            .text_block(2_500)
            .build();
        SessionState::new(page.tree.clone())
    }

    #[test]
    fn config_builders_clamp_and_override() {
        let c = LearnerConfig::paper_defaults()
            .with_confidence_threshold(1.5)
            .with_lnes(false);
        assert_eq!(c.confidence_threshold, 1.0);
        assert!(!c.use_lnes);
        assert_eq!(LearnerConfig::default().confidence_threshold, 0.70);
    }

    #[test]
    fn untrained_classifier_predicts_nothing_ahead() {
        let learner = EventSequenceLearner::new(
            OneVsRestClassifier::zeros(FEATURE_DIM),
            LearnerConfig::paper_defaults(),
        );
        assert!(learner.predict_sequence(&state()).is_empty());
        assert_eq!(learner.prediction_degree(&state()), 0);
    }

    #[test]
    fn confident_classifier_predicts_until_the_threshold_or_cap() {
        let learner = EventSequenceLearner::new(
            confident_scroll_classifier(),
            LearnerConfig::paper_defaults(),
        );
        let seq = learner.predict_sequence(&state());
        assert!(!seq.is_empty());
        assert!(seq.len() <= learner.config().max_degree);
        // Cumulative confidence is non-increasing and stays above threshold.
        for w in seq.windows(2) {
            assert!(w[1].cumulative_confidence <= w[0].cumulative_confidence + 1e-12);
        }
        for p in &seq {
            assert!(p.cumulative_confidence >= learner.config().confidence_threshold);
            assert_eq!(p.event_type, EventType::Scroll);
        }
    }

    #[test]
    fn a_stricter_threshold_shortens_the_sequence() {
        let clf = confident_scroll_classifier();
        let relaxed = EventSequenceLearner::new(
            clf.clone(),
            LearnerConfig::paper_defaults().with_confidence_threshold(0.3),
        );
        let strict = EventSequenceLearner::new(
            clf,
            LearnerConfig::paper_defaults().with_confidence_threshold(0.999),
        );
        let s = state();
        assert!(relaxed.prediction_degree(&s) >= strict.prediction_degree(&s));
    }

    #[test]
    fn lnes_masking_changes_predictions_when_the_dom_disallows_a_class() {
        // Build a page with *no* scrollable content and no scroll listener, so
        // the LNES cannot contain move events.
        let page = PageBuilder::new(360).nav_bar(3).build();
        let mut state = SessionState::new(page.tree.clone());
        let clf = confident_scroll_classifier();
        let with_lnes =
            EventSequenceLearner::new(clf.clone(), LearnerConfig::paper_defaults().with_lnes(true));
        let without_lnes =
            EventSequenceLearner::new(clf, LearnerConfig::paper_defaults().with_lnes(false));
        let (masked, _) = with_lnes.predict_next(&mut state);
        let (unmasked, _) = without_lnes.predict_next(&mut state);
        assert_ne!(
            masked,
            EventType::Scroll,
            "LNES must exclude scrolling on a short page"
        );
        assert_eq!(unmasked, EventType::Scroll);
    }

    #[test]
    fn set_config_takes_effect() {
        let mut learner = EventSequenceLearner::new(
            confident_scroll_classifier(),
            LearnerConfig::paper_defaults(),
        );
        let before = learner.prediction_degree(&state());
        learner.set_config(LearnerConfig::paper_defaults().with_confidence_threshold(0.9999));
        let after = learner.prediction_degree(&state());
        assert!(after <= before);
    }
}
