//! Feature extraction for the event sequence learner (Table 1).
//!
//! The predictor combines *application-inherent* features (clickable-region
//! and visible-link percentages within the viewport, computed by the DOM
//! analyzer) with *interaction-dependent* features computed over a window of
//! the five most recent events (distance to the previous click, number of
//! navigations, number of scrolls). The window additionally encodes the most
//! recent event's type; the paper folds this information into its
//! five-variable model through the window construction, while the synthetic
//! user model used in this reproduction needs it explicitly — see DESIGN.md.

use std::collections::VecDeque;
use std::sync::Arc;

use pes_dom::{
    DomAnalyzer, DomTree, EventType, EventTypeSet, IncrementalAnalyzer, NodeId, Viewport,
};
use pes_webrt::WebEvent;

/// The number of recent events considered by the interaction-dependent
/// features (Sec. 5.2: "a window of the five most recent events").
pub const HISTORY_WINDOW: usize = 5;

/// The dense feature vector fed to the logistic models.
///
/// Layout: `[clickable_fraction, link_fraction, click_distance,
/// navigations_in_window, scrolls_in_window, events_since_last_navigation,
/// events_since_last_tap, prev_event_one_hot(7)]`, all scaled to roughly
/// `[0, 1]`.
pub type FeatureVector = Vec<f64>;

/// Number of features produced by [`SessionState::features`].
pub const FEATURE_DIM: usize = 7 + EventType::ALL.len();

/// A sliding window over the most recent events of the interaction session.
#[derive(Debug, Default, PartialEq)]
pub struct HistoryWindow {
    events: VecDeque<(EventType, Option<(i64, i64)>)>,
}

impl Clone for HistoryWindow {
    fn clone(&self) -> Self {
        HistoryWindow {
            events: self.events.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        // Entries are `Copy`, so this reuses the existing ring allocation —
        // the prediction scratch clones a window every round.
        self.events.clone_from(&source.events);
    }
}

impl HistoryWindow {
    /// Creates an empty window.
    pub fn new() -> Self {
        HistoryWindow::default()
    }

    /// Records an observed event and, for taps, the centre of its target.
    pub fn push(&mut self, event_type: EventType, click_position: Option<(i64, i64)>) {
        self.events.push_back((event_type, click_position));
        while self.events.len() > HISTORY_WINDOW {
            self.events.pop_front();
        }
    }

    /// Number of events currently in the window (at most [`HISTORY_WINDOW`]).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The most recent event type, if any.
    pub fn last_event(&self) -> Option<EventType> {
        self.events.back().map(|(e, _)| *e)
    }

    /// Number of navigation-class events (load / navigate) in the window.
    pub fn navigations(&self) -> usize {
        self.events
            .iter()
            .filter(|(e, _)| e.is_navigation())
            .count()
    }

    /// Number of move-class events (scroll / touchmove) in the window.
    pub fn scrolls(&self) -> usize {
        self.events.iter().filter(|(e, _)| e.is_move()).count()
    }

    /// Number of tap-class events in the window.
    pub fn taps(&self) -> usize {
        self.events.iter().filter(|(e, _)| e.is_tap()).count()
    }

    /// Number of events since the most recent navigation-class event in the
    /// window (1 = the previous event was a navigation); [`HISTORY_WINDOW`]
    /// when the window contains no navigation.
    pub fn events_since_last_navigation(&self) -> usize {
        self.events
            .iter()
            .rev()
            .position(|(e, _)| e.is_navigation())
            .map(|p| p + 1)
            .unwrap_or(HISTORY_WINDOW)
    }

    /// Number of events since the most recent tap-class event in the window;
    /// [`HISTORY_WINDOW`] when the window contains no tap.
    pub fn events_since_last_tap(&self) -> usize {
        self.events
            .iter()
            .rev()
            .position(|(e, _)| e.is_tap())
            .map(|p| p + 1)
            .unwrap_or(HISTORY_WINDOW)
    }

    /// Euclidean distance in pixels between the two most recent tap targets
    /// in the window, if at least two taps with known positions exist.
    pub fn click_distance(&self) -> Option<f64> {
        let clicks: Vec<(i64, i64)> = self
            .events
            .iter()
            .filter_map(|(e, pos)| if e.is_tap() { *pos } else { None })
            .collect();
        if clicks.len() < 2 {
            return None;
        }
        let a = clicks[clicks.len() - 2];
        let b = clicks[clicks.len() - 1];
        Some((((a.0 - b.0).pow(2) + (a.1 - b.1).pow(2)) as f64).sqrt())
    }
}

/// The live state of one interaction session as the predictor sees it: the
/// application's DOM (mutated by observed events), the viewport, and the
/// recent-event window. Both the online predictor and the offline trainer
/// replay events through this state to obtain consistent features.
///
/// The DOM is held behind an [`Arc`] and cloned copy-on-write only when an
/// observed event actually mutates the tree (menu toggles). Sessions over
/// the same page — every replay of an application, and the scratch copy the
/// learner feeds predictions back into — therefore share one tree, and
/// cloning a `SessionState` costs a reference-count bump plus the small
/// history window instead of a full DOM copy.
#[derive(Debug)]
pub struct SessionState {
    tree: Arc<DomTree>,
    viewport: Viewport,
    history: HistoryWindow,
    analyzer: DomAnalyzer,
    /// Delta-maintained viewport aggregates and LNES bitmask — the
    /// per-prediction-step fast path. Purely a cache: it self-validates
    /// against the tree's `TreeStamp` and the viewport, so it is *not*
    /// copied by `clone_from` (the scratch session's own cache usually
    /// resynchronises by a cheap scroll delta instead).
    inc: IncrementalAnalyzer,
}

impl Clone for SessionState {
    fn clone(&self) -> Self {
        SessionState {
            tree: Arc::clone(&self.tree),
            viewport: self.viewport,
            history: self.history.clone(),
            analyzer: self.analyzer,
            inc: IncrementalAnalyzer::new(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        if !Arc::ptr_eq(&self.tree, &source.tree) {
            self.tree = Arc::clone(&source.tree);
        }
        self.viewport = source.viewport;
        self.history.clone_from(&source.history);
        self.analyzer = source.analyzer;
        // `self.inc` is deliberately kept: stamp validation re-syncs it.
    }
}

impl SessionState {
    /// Creates a session over a (shared) application page tree, e.g.
    /// `SessionState::new(page.tree.clone())` for a [`pes_dom::BuiltPage`].
    pub fn new(tree: Arc<DomTree>) -> Self {
        SessionState {
            tree,
            viewport: Viewport::phone(),
            history: HistoryWindow::new(),
            analyzer: DomAnalyzer::new(),
            inc: IncrementalAnalyzer::new(),
        }
    }

    /// The session's current DOM.
    pub fn tree(&self) -> &DomTree {
        &self.tree
    }

    /// The session's current viewport.
    pub fn viewport(&self) -> &Viewport {
        &self.viewport
    }

    /// The recent-event window.
    pub fn history(&self) -> &HistoryWindow {
        &self.history
    }

    /// The DOM analyzer used for feature extraction and LNES queries.
    pub fn analyzer(&self) -> &DomAnalyzer {
        &self.analyzer
    }

    /// The centre of a node, used as the position of a tap.
    fn node_center(&self, node: Option<NodeId>) -> Option<(i64, i64)> {
        node.and_then(|id| self.tree.node(id).ok())
            .map(|n| n.rect().center())
    }

    /// Records an observed event: updates the history window and applies the
    /// event's memoized DOM effect (scrolling the viewport, toggling menus,
    /// resetting on navigation). Unknown targets or missing listeners are
    /// tolerated — the DOM state simply does not change.
    pub fn observe(&mut self, event: &WebEvent) {
        let position = if event.event_type().is_tap() {
            self.node_center(event.target())
        } else {
            None
        };
        self.history.push(event.event_type(), position);

        let effect = match event.target() {
            Some(target) => self
                .tree
                .node(target)
                .ok()
                .and_then(|n| n.listener(event.event_type())),
            None => {
                // Document-level events: use the root's listener when present,
                // otherwise fall back to the canonical effect of the type.
                let root_effect = self
                    .tree
                    .node(self.tree.root())
                    .ok()
                    .and_then(|n| n.listener(event.event_type()));
                root_effect.or(match event.event_type() {
                    EventType::Scroll | EventType::TouchMove => {
                        Some(pes_dom::CallbackEffect::ScrollBy(400))
                    }
                    EventType::Load | EventType::Navigate => {
                        Some(pes_dom::CallbackEffect::Navigate)
                    }
                    _ => None,
                })
            }
        };
        if let Some(effect) = effect {
            if effect.mutates_tree() {
                // Copy-on-write: only menu toggles and similar structural
                // effects force this session onto a private tree copy.
                // Stale targets cannot occur for effects memoized on this
                // tree.
                let pre = self.tree.stamp();
                let applied = Arc::make_mut(&mut self.tree)
                    .apply_effect(effect, &mut self.viewport)
                    .is_ok();
                if applied {
                    if let pes_dom::CallbackEffect::ToggleVisibility(target) = effect {
                        // Keep the incremental aggregates on the delta path:
                        // re-fold only the toggled subtree instead of letting
                        // the stamp mismatch force a full rescan.
                        self.inc.note_toggle(pre, &self.tree, target);
                    }
                }
            } else {
                // Scrolls and navigations only move the viewport; the shared
                // tree stays shared.
                let _ = DomTree::apply_viewport_effect(effect, &mut self.viewport);
            }
        }
    }

    /// The feature vector describing "what comes next" from the current
    /// state.
    pub fn features(&mut self) -> FeatureVector {
        let mut features = Vec::with_capacity(FEATURE_DIM);
        self.features_into(&mut features);
        features
    }

    /// Writes the feature vector into `out` (cleared first), reusing the
    /// buffer's capacity — the allocation-free path the learner uses on
    /// every prediction step. The viewport aggregates come from the
    /// incremental analyzer, so in the steady state this costs O(1) in the
    /// DOM size rather than a full-tree scan.
    pub fn features_into(&mut self, out: &mut FeatureVector) {
        let vp = self
            .inc
            .viewport_features(&self.analyzer, &self.tree, &self.viewport);
        // Normalise the click distance by the viewport diagonal.
        let diag = ((self.viewport.width().pow(2) + self.viewport.height().pow(2)) as f64).sqrt();
        let distance = self
            .history
            .click_distance()
            .map(|d| (d / diag).min(2.0))
            .unwrap_or(0.0);
        out.clear();
        out.extend_from_slice(&[
            vp.clickable_region_fraction,
            vp.visible_link_fraction,
            distance,
            self.history.navigations() as f64 / HISTORY_WINDOW as f64,
            self.history.scrolls() as f64 / HISTORY_WINDOW as f64,
            self.history.events_since_last_navigation() as f64 / HISTORY_WINDOW as f64,
            self.history.events_since_last_tap() as f64 / HISTORY_WINDOW as f64,
        ]);
        let mut one_hot = [0.0; EventType::ALL.len()];
        if let Some(last) = self.history.last_event() {
            one_hot[last.class_index()] = 1.0;
        }
        out.extend_from_slice(&one_hot);
        debug_assert_eq!(out.len(), FEATURE_DIM);
    }

    /// The Likely-Next-Event-Set for the current DOM state.
    pub fn lnes(&self) -> pes_dom::Lnes {
        self.analyzer.lnes(&self.tree, &self.viewport)
    }

    /// The event *types* of the Likely-Next-Event-Set as an allocation-free
    /// bitmask — exactly the set `self.lnes().event_types()` would return,
    /// served from the incremental analyzer's delta-maintained aggregates.
    pub fn allowed_types(&mut self) -> EventTypeSet {
        self.inc
            .lnes_types(&self.analyzer, &self.tree, &self.viewport)
    }

    /// How the incremental analyzer has kept itself in sync over this
    /// session (rebuilds vs deltas); exposed for tests and diagnostics.
    pub fn incremental_stats(&self) -> pes_dom::IncrementalStats {
        self.inc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::TimeUs;
    use pes_acmp::CpuDemand;
    use pes_dom::PageBuilder;
    use pes_webrt::EventId;

    fn page_state() -> (pes_dom::BuiltPage, SessionState) {
        let page = PageBuilder::new(360)
            .nav_bar(4)
            .collapsible_menu(4)
            .article_list(10, true)
            .search_form()
            .text_block(2_000)
            .build();
        let state = SessionState::new(page.tree.clone());
        (page, state)
    }

    fn ev(id: u64, ty: EventType, target: Option<NodeId>, ms: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(id),
            ty,
            target,
            TimeUs::from_millis(ms),
            CpuDemand::ZERO,
        )
    }

    #[test]
    fn history_window_is_bounded_to_five() {
        let mut w = HistoryWindow::new();
        assert!(w.is_empty());
        for i in 0..10 {
            w.push(EventType::Scroll, None);
            assert!(w.len() <= HISTORY_WINDOW, "at step {i}");
        }
        assert_eq!(w.len(), HISTORY_WINDOW);
        assert_eq!(w.scrolls(), HISTORY_WINDOW);
        assert_eq!(w.last_event(), Some(EventType::Scroll));
    }

    #[test]
    fn history_window_counts_by_interaction_class() {
        let mut w = HistoryWindow::new();
        w.push(EventType::Load, None);
        w.push(EventType::Scroll, None);
        w.push(EventType::TouchMove, None);
        w.push(EventType::Click, Some((10, 10)));
        w.push(EventType::Navigate, None);
        assert_eq!(w.navigations(), 2);
        assert_eq!(w.scrolls(), 2);
        assert_eq!(w.taps(), 1);
        assert_eq!(w.click_distance(), None, "only one positioned click");
        assert_eq!(w.events_since_last_navigation(), 1);
        assert_eq!(w.events_since_last_tap(), 2);
        let empty = HistoryWindow::new();
        assert_eq!(empty.events_since_last_navigation(), HISTORY_WINDOW);
        assert_eq!(empty.events_since_last_tap(), HISTORY_WINDOW);
    }

    #[test]
    fn click_distance_uses_the_two_most_recent_taps() {
        let mut w = HistoryWindow::new();
        w.push(EventType::Click, Some((0, 0)));
        w.push(EventType::Scroll, None);
        w.push(EventType::TouchStart, Some((30, 40)));
        assert!((w.click_distance().unwrap() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn feature_vector_has_the_documented_dimension_and_range() {
        let (page, mut state) = page_state();
        state.observe(&ev(0, EventType::Load, None, 0));
        state.observe(&ev(1, EventType::Click, page.links.first().copied(), 10));
        let f = state.features();
        assert_eq!(f.len(), FEATURE_DIM);
        for (i, v) in f.iter().enumerate() {
            assert!(*v >= 0.0 && *v <= 2.0, "feature {i} out of range: {v}");
        }
        // Exactly one previous-event bit is set.
        let hot: f64 = f[7..].iter().sum();
        assert!((hot - 1.0).abs() < 1e-9);
    }

    #[test]
    fn scrolling_moves_the_viewport_and_changes_features() {
        let (_page, mut state) = page_state();
        state.observe(&ev(0, EventType::Load, None, 0));
        let before = state.viewport().scroll_y();
        state.observe(&ev(1, EventType::Scroll, None, 500));
        state.observe(&ev(2, EventType::Scroll, None, 900));
        assert!(state.viewport().scroll_y() > before);
        let f = state.features();
        assert!(f[4] > 0.0, "scroll count feature should be positive");
    }

    #[test]
    fn navigation_resets_the_viewport() {
        let (_page, mut state) = page_state();
        state.observe(&ev(0, EventType::Load, None, 0));
        state.observe(&ev(1, EventType::Scroll, None, 100));
        state.observe(&ev(2, EventType::Scroll, None, 200));
        assert!(state.viewport().scroll_y() > 0);
        state.observe(&ev(3, EventType::Navigate, None, 300));
        assert_eq!(state.viewport().scroll_y(), 0);
    }

    #[test]
    fn menu_tap_expands_the_menu_in_the_session_dom() {
        let (page, mut state) = page_state();
        let menu_item = page.menu_items[0];
        assert!(!state.tree().is_effectively_displayed(menu_item));
        state.observe(&ev(
            0,
            EventType::Click,
            page.menu_buttons.first().copied(),
            0,
        ));
        assert!(state.tree().is_effectively_displayed(menu_item));
        // The LNES now includes the menu items as click targets.
        assert!(state
            .lnes()
            .nodes_for(EventType::Click)
            .contains(&menu_item));
    }

    #[test]
    fn session_queries_stay_on_the_delta_path() {
        // The performance contract of the incremental analyzer: across a
        // whole session of scrolls, menu toggles and navigations — with
        // feature and LNES queries between every event, as the learner
        // issues them — only the very first query pays a full rebuild.
        let (page, mut state) = page_state();
        state.features();
        state.allowed_types();
        let menu_button = page.menu_buttons[0];
        let events = [
            ev(0, EventType::Load, None, 0),
            ev(1, EventType::Scroll, None, 100),
            ev(2, EventType::Scroll, None, 200),
            ev(3, EventType::Click, Some(menu_button), 300),
            ev(4, EventType::TouchMove, None, 400),
            ev(5, EventType::Click, Some(menu_button), 500),
            ev(6, EventType::Navigate, None, 600),
            ev(7, EventType::Scroll, None, 700),
        ];
        for event in &events {
            state.observe(event);
            state.features();
            state.allowed_types();
        }
        let stats = state.incremental_stats();
        assert_eq!(stats.rebuilds, 1, "session must run on deltas: {stats:?}");
        assert!(stats.scroll_deltas > 0, "{stats:?}");
        assert!(stats.scroll_resets > 0, "{stats:?}");
        assert_eq!(
            stats.toggle_deltas, 2,
            "both menu toggles take the fast path: {stats:?}"
        );
    }

    #[test]
    fn unknown_targets_are_tolerated() {
        let (_page, mut state) = page_state();
        // A target id that does not exist in this tree.
        let bogus = ev(0, EventType::Click, None, 0);
        state.observe(&bogus);
        assert_eq!(state.history().len(), 1);
    }
}
