//! Offline predictor training and accuracy evaluation (Sec. 5.5, Sec. 6.2).
//!
//! The paper records ~100 interaction traces across the 12 seen applications,
//! trains one global event-sequence model on all of them (the DOM analysis
//! then specialises predictions per application at runtime), and evaluates on
//! freshly collected traces from new users — including six applications never
//! seen during training. The reproduction mirrors that protocol with seeded
//! synthetic traces: training traces come from the [`pes_workload::TRAINING_SEED_BASE`]
//! seed range, evaluation traces from the disjoint [`pes_workload::EVAL_SEED_BASE`] range.

use std::fmt;

use pes_dom::{BuiltPage, EventType, EventTypeSet};
use pes_workload::{AppCatalog, AppProfile, Trace, TraceGenerator, TRAINING_SEED_BASE};

use crate::features::{FeatureVector, SessionState, FEATURE_DIM};
use crate::learner::{EventSequenceLearner, LearnerConfig};
use crate::logistic::OneVsRestClassifier;

/// Typed errors of the fallible training entry points. The infallible
/// `train*` convenience methods keep their historical lenient semantics
/// (an empty dataset yields a zero classifier); callers that want
/// misconfigurations surfaced instead of absorbed use the `try_*` forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// The concatenated dataset holds no samples — training would silently
    /// return an untrained (all-0.5) classifier.
    EmptyDataset,
    /// A sample's feature row does not match [`FEATURE_DIM`]; SGD would
    /// silently truncate or zero-pad it.
    DimensionMismatch {
        /// The dimension training expects ([`FEATURE_DIM`]).
        expected: usize,
        /// The offending sample's dimension.
        got: usize,
        /// Index of the offending sample in the concatenated dataset.
        sample: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::EmptyDataset => write!(f, "training dataset is empty"),
            TrainError::DimensionMismatch {
                expected,
                got,
                sample,
            } => write!(f, "sample {sample} has {got} features, expected {expected}"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingConfig {
    /// Training traces generated per seen application (the paper records
    /// "over 100" traces across 12 applications, i.e. roughly 9 per app).
    pub traces_per_app: usize,
    /// SGD epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// L2 regularisation strength.
    pub l2: f64,
    /// RNG seed for shuffling.
    pub seed: u64,
}

impl Default for TrainingConfig {
    fn default() -> Self {
        TrainingConfig {
            traces_per_app: 9,
            epochs: 60,
            learning_rate: 0.45,
            l2: 1e-5,
            seed: 2019,
        }
    }
}

/// Builds a supervised dataset from traces of one application: the features
/// observed *before* each event paired with that event's type. The initial
/// page load is never a prediction target (prediction starts once a session
/// is underway).
pub fn build_dataset(page: &BuiltPage, traces: &[Trace]) -> Vec<(FeatureVector, EventType)> {
    let mut dataset = Vec::with_capacity(traces.iter().map(|t| t.len().saturating_sub(1)).sum());
    for trace in traces {
        let mut state = SessionState::new(page.tree.clone());
        for (i, event) in trace.events().iter().enumerate() {
            if i > 0 {
                dataset.push((state.features(), event.event_type()));
            }
            state.observe(event);
        }
    }
    dataset
}

/// The trainer: generates training traces, builds the global dataset and fits
/// the one-vs-rest classifier.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Trainer {
    config: TrainingConfig,
}

impl Trainer {
    /// Creates a trainer with the default configuration.
    pub fn new() -> Self {
        Trainer {
            config: TrainingConfig::default(),
        }
    }

    /// Creates a trainer with an explicit configuration.
    pub fn with_config(config: TrainingConfig) -> Self {
        Trainer { config }
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainingConfig {
        &self.config
    }

    /// Builds the training dataset of one application: its page, its seeded
    /// training traces and the per-event feature/label samples. Each app's
    /// dataset is independent of every other app's — the unit of work the
    /// experiment drivers fan out over scoped threads.
    pub fn app_dataset(&self, app: &AppProfile) -> Vec<(FeatureVector, EventType)> {
        let page = app.build_page();
        let traces = TraceGenerator::new().generate_many(
            app,
            &page,
            TRAINING_SEED_BASE + app_offset(app),
            self.config.traces_per_app,
        );
        build_dataset(&page, &traces)
    }

    /// Fits the one-vs-rest classifier on per-application datasets supplied
    /// in catalog order. Concatenation order is part of the training
    /// protocol (the SGD shuffle is seeded over the concatenated dataset),
    /// so callers building datasets in parallel must still yield them in the
    /// serial order for byte-identical models.
    pub fn train_from_app_datasets<I>(&self, datasets: I) -> OneVsRestClassifier
    where
        I: IntoIterator<Item = Vec<(FeatureVector, EventType)>>,
    {
        let mut dataset = Vec::new();
        for app_dataset in datasets {
            dataset.extend(app_dataset);
        }
        self.fit(&dataset)
    }

    /// [`Trainer::train_from_app_datasets`] surfacing misconfigurations as
    /// typed errors instead of absorbing them: an empty dataset and
    /// wrong-dimension feature rows are rejected rather than silently
    /// yielding an untrained or truncated model.
    pub fn try_train_from_app_datasets<I>(
        &self,
        datasets: I,
    ) -> Result<OneVsRestClassifier, TrainError>
    where
        I: IntoIterator<Item = Vec<(FeatureVector, EventType)>>,
    {
        let mut dataset = Vec::new();
        for app_dataset in datasets {
            dataset.extend(app_dataset);
        }
        if dataset.is_empty() {
            return Err(TrainError::EmptyDataset);
        }
        for (sample, (features, _)) in dataset.iter().enumerate() {
            if features.len() != FEATURE_DIM {
                return Err(TrainError::DimensionMismatch {
                    expected: FEATURE_DIM,
                    got: features.len(),
                    sample,
                });
            }
        }
        Ok(self.fit(&dataset))
    }

    /// Fits a fresh classifier on an already-concatenated dataset.
    fn fit(&self, dataset: &[(FeatureVector, EventType)]) -> OneVsRestClassifier {
        let mut classifier = OneVsRestClassifier::zeros(FEATURE_DIM);
        classifier.train(
            dataset,
            self.config.epochs,
            self.config.learning_rate,
            self.config.l2,
            self.config.seed,
        );
        classifier
    }

    /// Trains the global event-sequence classifier on training traces from
    /// every *seen* application in the catalog (Sec. 5.5: "the event sequence
    /// model is trained using training traces from all applications").
    pub fn train(&self, catalog: &AppCatalog) -> OneVsRestClassifier {
        self.train_from_app_datasets(catalog.seen_apps().map(|app| self.app_dataset(app)))
    }

    /// [`Trainer::train`] with typed errors: a catalog with no seen apps
    /// (or otherwise empty training data) is rejected instead of yielding
    /// an untrained classifier.
    pub fn try_train(&self, catalog: &AppCatalog) -> Result<OneVsRestClassifier, TrainError> {
        self.try_train_from_app_datasets(catalog.seen_apps().map(|app| self.app_dataset(app)))
    }

    /// Convenience: trains and wraps the classifier into a sequence learner
    /// with the given configuration.
    pub fn train_learner(
        &self,
        catalog: &AppCatalog,
        config: LearnerConfig,
    ) -> EventSequenceLearner {
        EventSequenceLearner::new(self.train(catalog), config)
    }

    /// [`Trainer::train_learner`] with typed errors.
    pub fn try_train_learner(
        &self,
        catalog: &AppCatalog,
        config: LearnerConfig,
    ) -> Result<EventSequenceLearner, TrainError> {
        Ok(EventSequenceLearner::new(self.try_train(catalog)?, config))
    }
}

fn app_offset(app: &AppProfile) -> u64 {
    // Deterministic, per-app disjoint seed offsets.
    app.name()
        .bytes()
        .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64))
        % 1_000
        * 101
}

/// One-step-ahead prediction accuracy over evaluation traces of a single
/// application: the fraction of events whose type the learner predicts
/// correctly from the state immediately before them (the Fig. 8 metric).
///
/// Accepts owned traces or shared `Arc<Trace>` handles (the form the
/// experiment drivers' scenario cache holds).
pub fn evaluate_accuracy<T: std::borrow::Borrow<Trace>>(
    learner: &EventSequenceLearner,
    page: &BuiltPage,
    traces: &[T],
) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for trace in traces {
        let trace = trace.borrow();
        let mut state = SessionState::new(page.tree.clone());
        for (i, event) in trace.events().iter().enumerate() {
            if i > 0 {
                let (predicted, _) = learner.predict_next(&mut state);
                total += 1;
                if predicted == event.event_type() {
                    correct += 1;
                }
            }
            state.observe(event);
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

/// The batched twin of [`evaluate_accuracy`]: all of an app's evaluation
/// traces advance in lockstep and each step runs **one**
/// [`crate::PackedModel::predict_many`] matrix pass over every still-active
/// session, instead of one scalar inference per (trace, event). Decisions
/// are the packed plane's f32 decisions — bit-identical to
/// [`EventSequenceLearner::predict_next_packed`] per event, because the
/// batch path reuses the single path's kernel.
pub fn evaluate_accuracy_batched<T: std::borrow::Borrow<Trace>>(
    learner: &EventSequenceLearner,
    page: &BuiltPage,
    traces: &[T],
) -> f64 {
    let packed = learner.packed();
    let use_lnes = learner.config().use_lnes;
    let mut states: Vec<SessionState> = traces
        .iter()
        .map(|_| SessionState::new(page.tree.clone()))
        .collect();
    let max_len = traces.iter().map(|t| t.borrow().len()).max().unwrap_or(0);
    let mut features = Vec::with_capacity(FEATURE_DIM);
    let mut rows: Vec<f32> = Vec::new();
    let mut masks: Vec<EventTypeSet> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    let mut decisions: Vec<(EventType, f32)> = Vec::new();
    let mut total = 0usize;
    let mut correct = 0usize;
    for i in 0..max_len {
        // Gather one feature row + LNES mask per still-active session.
        rows.clear();
        masks.clear();
        active.clear();
        if i > 0 {
            for (t, trace) in traces.iter().enumerate() {
                if i >= trace.borrow().len() {
                    continue;
                }
                let state = &mut states[t];
                state.features_into(&mut features);
                packed.pad_features_append(&features, &mut rows);
                masks.push(if use_lnes {
                    state.allowed_types()
                } else {
                    EventTypeSet::ALL
                });
                active.push(t);
            }
            // One matrix pass over the whole shard of pending sessions.
            packed.predict_many(&rows, &masks, &mut decisions);
            for (&t, &(predicted, _)) in active.iter().zip(decisions.iter()) {
                total += 1;
                if predicted == traces[t].borrow().events()[i].event_type() {
                    correct += 1;
                }
            }
        }
        for (t, trace) in traces.iter().enumerate() {
            let trace = trace.borrow();
            if i < trace.len() {
                states[t].observe(&trace.events()[i]);
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        correct as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_workload::EVAL_SEED_BASE;

    fn small_trainer() -> Trainer {
        Trainer::with_config(TrainingConfig {
            traces_per_app: 3,
            epochs: 18,
            ..TrainingConfig::default()
        })
    }

    #[test]
    fn dataset_has_one_sample_per_non_initial_event() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("bbc").unwrap();
        let page = app.build_page();
        let traces = TraceGenerator::new().generate_many(app, &page, 1, 2);
        let dataset = build_dataset(&page, &traces);
        let expected: usize = traces.iter().map(|t| t.len() - 1).sum();
        assert_eq!(dataset.len(), expected);
        for (features, _) in &dataset {
            assert_eq!(features.len(), FEATURE_DIM);
        }
    }

    #[test]
    fn training_is_deterministic() {
        let catalog = AppCatalog::paper_suite();
        let trainer = small_trainer();
        assert_eq!(trainer.train(&catalog), trainer.train(&catalog));
    }

    #[test]
    fn trained_predictor_beats_a_majority_class_guesser_on_seen_apps() {
        let catalog = AppCatalog::paper_suite();
        let learner = small_trainer().train_learner(&catalog, LearnerConfig::paper_defaults());
        let generator = TraceGenerator::new();
        let mut accuracies = Vec::new();
        let mut majority_baselines = Vec::new();
        for app in catalog.seen_apps().take(4) {
            let page = app.build_page();
            let traces = generator.generate_many(app, &page, EVAL_SEED_BASE, 2);
            accuracies.push(evaluate_accuracy(&learner, &page, &traces));
            // Majority baseline: always predict the most common class.
            let mut counts = [0usize; EventType::ALL.len()];
            for t in &traces {
                for (i, e) in t.events().iter().enumerate() {
                    if i > 0 {
                        counts[e.event_type().class_index()] += 1;
                    }
                }
            }
            let total: usize = counts.iter().sum();
            majority_baselines.push(*counts.iter().max().unwrap() as f64 / total.max(1) as f64);
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&accuracies) > avg(&majority_baselines) + 0.05,
            "learned accuracy {:.3} vs majority {:.3}",
            avg(&accuracies),
            avg(&majority_baselines)
        );
        assert!(
            avg(&accuracies) > 0.7,
            "accuracy too low: {:.3}",
            avg(&accuracies)
        );
    }

    #[test]
    fn accuracy_on_empty_traces_is_zero() {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find("bbc").unwrap();
        let page = app.build_page();
        let learner = EventSequenceLearner::new(
            OneVsRestClassifier::zeros(FEATURE_DIM),
            LearnerConfig::paper_defaults(),
        );
        assert_eq!(evaluate_accuracy::<Trace>(&learner, &page, &[]), 0.0);
    }

    #[test]
    fn default_config_matches_paper_protocol() {
        let c = TrainingConfig::default();
        // Roughly 100 traces across 12 apps.
        assert!((90..=130).contains(&(c.traces_per_app * 12)));
    }
}
