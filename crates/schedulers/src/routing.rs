//! Breaker-forced tier routing: the reactive serving tiers a fleet circuit
//! breaker can route a unit to while it is open.
//!
//! The fleet driver (`pes_sim::fleet`) watches per-shard unit outcomes; when
//! a shard's breaker opens, its units bypass the proactive optimizer and are
//! served reactively until the breaker half-opens again. This module is the
//! schedulers-side half of that routing: [`RoutedTier`] names the two
//! reactive destinations (this crate sits *below* `pes-core`, so it mirrors
//! the bottom two rungs of the core degradation ladder rather than
//! importing it), and [`scheduler_for`] mints the reactive scheduler that
//! serves each one — [`Ebs`] for the QoS-aware reactive tier,
//! [`FloorGovernor`] for the conservative profiling floor.

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, CoreKind, Platform};
use pes_webrt::WebEvent;

use crate::context::{ScheduleContext, Scheduler};
use crate::ebs::Ebs;

/// Where an open circuit breaker routes a unit: the bottom two rungs of the
/// core degradation ladder, reachable without the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RoutedTier {
    /// Reactive QoS-aware serving (EBS-equivalent): per-event
    /// minimum-energy configuration under the event's QoS target.
    Reactive,
    /// The conservative floor: every event runs at a profiling operating
    /// point, ignoring demand estimates entirely. Never fast, never a
    /// runaway.
    OndemandFloor,
}

impl RoutedTier {
    /// Human-readable tier name (matches the core ladder's naming).
    pub fn name(self) -> &'static str {
        match self {
            RoutedTier::Reactive => "Reactive",
            RoutedTier::OndemandFloor => "OndemandFloor",
        }
    }
}

/// The reactive scheduler serving a routed tier.
pub fn scheduler_for(platform: &Platform, tier: RoutedTier) -> Box<dyn Scheduler + Send> {
    match tier {
        RoutedTier::Reactive => Box::new(Ebs::new(platform)),
        RoutedTier::OndemandFloor => Box::new(FloorGovernor::new(platform)),
    }
}

/// The degradation floor as a standalone reactive scheduler: every event is
/// served at one of the two big-core profiling operating points (the same
/// pair [`crate::DemandProfiler`] uses for cold-start events), alternating
/// deterministically. This is what a breaker-opened shard degrades to when
/// even EBS's estimate-driven choices are suspect — the configuration
/// depends on nothing the workload can poison.
#[derive(Debug, Clone)]
pub struct FloorGovernor {
    points: [AcmpConfig; 2],
    served: usize,
}

impl FloorGovernor {
    /// Creates the floor governor for a platform, picking the same
    /// mid-range/high big-core pair the demand profiler profiles with.
    pub fn new(platform: &Platform) -> Self {
        let big: Vec<AcmpConfig> = platform
            .configs()
            .iter()
            .copied()
            .filter(|c| c.core() == CoreKind::BigA15 || c.core().is_big())
            .collect();
        let hi = *big.last().unwrap_or(&platform.max_performance_config());
        let mid = big
            .get(big.len() / 2)
            .copied()
            .unwrap_or_else(|| platform.max_performance_config());
        FloorGovernor {
            points: [mid, hi],
            served: 0,
        }
    }
}

impl Scheduler for FloorGovernor {
    fn name(&self) -> &str {
        "OndemandFloor"
    }

    fn schedule_event(&mut self, _ctx: &ScheduleContext<'_>, _event: &WebEvent) -> AcmpConfig {
        let config = self.points[self.served % 2];
        self.served += 1;
        config
    }

    fn on_event_complete(
        &mut self,
        _ctx: &ScheduleContext<'_>,
        _event: &WebEvent,
        _config: &AcmpConfig,
        _busy_time: TimeUs,
        _finished_at: TimeUs,
    ) {
    }

    fn reset(&mut self) {
        self.served = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::DvfsModel;
    use pes_webrt::{EventId, QosPolicy};

    fn ctx<'a>(
        platform: &'a Platform,
        dvfs: &'a DvfsModel<'a>,
        qos: &'a QosPolicy,
    ) -> ScheduleContext<'a> {
        ScheduleContext {
            platform,
            dvfs,
            qos,
            start_time: TimeUs::ZERO,
            current_config: platform.min_power_config(),
        }
    }

    #[test]
    fn floor_governor_alternates_big_core_profiling_points() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let ctx = ctx(&platform, &dvfs, &qos);
        let mut floor = FloorGovernor::new(&platform);
        let event = WebEvent::new(
            EventId::new(0),
            pes_dom::EventType::Click,
            None,
            TimeUs::ZERO,
            pes_acmp::CpuDemand::ZERO,
        );
        let a = floor.schedule_event(&ctx, &event);
        let b = floor.schedule_event(&ctx, &event);
        let c = floor.schedule_event(&ctx, &event);
        assert_ne!(a.frequency(), b.frequency(), "points alternate");
        assert_eq!(a, c, "alternation has period two");
        assert!(a.core().is_big() && b.core().is_big());
        floor.reset();
        assert_eq!(floor.schedule_event(&ctx, &event), a);
    }

    #[test]
    fn routed_tiers_mint_the_matching_scheduler() {
        let platform = Platform::exynos_5410();
        let reactive = scheduler_for(&platform, RoutedTier::Reactive);
        let floor = scheduler_for(&platform, RoutedTier::OndemandFloor);
        assert_eq!(reactive.name(), "EBS");
        assert_eq!(floor.name(), "OndemandFloor");
        assert_eq!(RoutedTier::Reactive.name(), "Reactive");
        assert!(RoutedTier::Reactive < RoutedTier::OndemandFloor);
    }
}
