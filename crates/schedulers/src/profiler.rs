//! Online per-event-type workload profiling (Sec. 5.3).
//!
//! Both EBS and PES estimate an event's `Tmem` / `Ndep` demand before
//! executing it. The first two times an event type is encountered it is
//! executed at two different (profiling) frequencies; the two latency
//! observations are then solved against Eqn. 1 to recover the demand, which
//! is subsequently refined with an exponential moving average as more
//! executions of the same event type are observed.
//!
//! The EWMA estimates are *noisy by construction* — per-event workloads on
//! the evaluation traces vary by double-digit percentages around their
//! profile, so the estimate drifts on every observation. Consumers that
//! need stable values derive them on their side: the PES planner quantises
//! each estimate onto a relative 1/32 grid and holds the result with a
//! hysteresis band (`pes_core`'s planning layer), which is what lets its
//! shape-keyed solve memoisation revalidate re-planned windows while the
//! raw estimates here keep moving. Reactive consumers (EBS, the runtime's
//! fallback) use the raw estimates directly.

use std::collections::BTreeMap;

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, CoreKind, CpuDemand, DvfsModel, Platform};
use pes_dom::EventType;

/// Per-event-type profiling state.
#[derive(Debug, Clone, Default)]
struct TypeProfile {
    observations: Vec<(AcmpConfig, TimeUs)>,
    estimate: Option<CpuDemand>,
    samples: usize,
}

/// The online demand profiler.
///
/// # Examples
///
/// ```
/// use pes_acmp::{DvfsModel, Platform};
/// use pes_dom::EventType;
/// use pes_schedulers::DemandProfiler;
///
/// let platform = Platform::exynos_5410();
/// let profiler = DemandProfiler::new(&platform);
/// // Before any observation the profiler has no estimate and asks for the
/// // first profiling configuration.
/// assert!(profiler.estimate(EventType::Click).is_none());
/// let dvfs = DvfsModel::new(&platform);
/// let cfg = profiler.profiling_config(EventType::Click, &dvfs);
/// assert!(cfg.core().is_big());
/// ```
#[derive(Debug, Clone)]
pub struct DemandProfiler {
    profiles: BTreeMap<EventType, TypeProfile>,
    profiling_configs: [AcmpConfig; 2],
    ewma_alpha: f64,
}

impl DemandProfiler {
    /// Creates a profiler for a platform. The two profiling configurations
    /// are mid-range and high big-core operating points, so a cold-start
    /// event is served reasonably fast while still exposing two distinct
    /// frequencies for the Eqn. 1 system solve.
    pub fn new(platform: &Platform) -> Self {
        let big: Vec<AcmpConfig> = platform
            .configs()
            .iter()
            .copied()
            .filter(|c| c.core() == CoreKind::BigA15 || c.core().is_big())
            .collect();
        let hi = *big.last().unwrap_or(&platform.max_performance_config());
        let mid = big
            .get(big.len() / 2)
            .copied()
            .unwrap_or_else(|| platform.max_performance_config());
        DemandProfiler {
            profiles: BTreeMap::new(),
            profiling_configs: [mid, hi],
            ewma_alpha: 0.3,
        }
    }

    /// Whether the profiler still needs profiling runs for this event type.
    pub fn needs_profiling(&self, event_type: EventType) -> bool {
        self.profiles
            .get(&event_type)
            .map(|p| p.estimate.is_none())
            .unwrap_or(true)
    }

    /// The configuration to use for the next profiling run of this event
    /// type (alternating between the two profiling operating points).
    pub fn profiling_config(&self, event_type: EventType, _dvfs: &DvfsModel<'_>) -> AcmpConfig {
        let seen = self
            .profiles
            .get(&event_type)
            .map(|p| p.observations.len())
            .unwrap_or(0);
        self.profiling_configs[seen % 2]
    }

    /// The current demand estimate for an event type, if one exists.
    pub fn estimate(&self, event_type: EventType) -> Option<CpuDemand> {
        self.profiles.get(&event_type).and_then(|p| p.estimate)
    }

    /// Number of observations recorded for an event type.
    pub fn samples(&self, event_type: EventType) -> usize {
        self.profiles
            .get(&event_type)
            .map(|p| p.samples)
            .unwrap_or(0)
    }

    /// Records a measured execution: the configuration it ran on and the
    /// busy (execution) time. Once two observations at distinct frequencies
    /// on the same core kind exist, the demand is recovered and subsequently
    /// refined with an EWMA of per-execution recovered demands.
    pub fn observe(
        &mut self,
        event_type: EventType,
        config: AcmpConfig,
        busy_time: TimeUs,
        dvfs: &DvfsModel<'_>,
    ) {
        let alpha = self.ewma_alpha;
        let profile = self.profiles.entry(event_type).or_default();
        profile.samples += 1;
        match profile.estimate {
            None => {
                // Pair the new observation against the accumulated ones. Old
                // pairs need no re-try: recovery is deterministic, so a pair
                // that failed when its later half arrived fails forever —
                // the previous all-pairs rescan was O(k²) per observation
                // and, on replays whose speculative commits keep landing on
                // one configuration (so recovery starves), it dominated the
                // Oracle's per-event accounting. Pairs that cannot solve
                // (same frequency or different core kinds) are skipped
                // before `recover_demand` can build its error.
                let fresh = (config, busy_time);
                for i in 0..profile.observations.len() {
                    let prior = profile.observations[i];
                    if prior.0.core() != config.core() || prior.0.frequency() == config.frequency()
                    {
                        continue;
                    }
                    if let Ok(demand) = dvfs.recover_demand(prior, fresh) {
                        profile.estimate = Some(demand);
                        profile.observations.clear();
                        break;
                    }
                }
                if profile.estimate.is_none() {
                    profile.observations.push(fresh);
                }
            }
            Some(current) => {
                // Single-observation refinement: assume the memory fraction of
                // the current estimate and update the cycle count to match the
                // measured time, then blend with the EWMA.
                let cfg_time_mem = current.t_mem().min(busy_time);
                let compute_time = busy_time.saturating_sub(cfg_time_mem);
                let cycles_on_core =
                    compute_time.as_micros() as f64 * config.frequency().as_mhz() as f64;
                let ref_cycles = cycles_on_core * config.core().ipc_relative_to_a7();
                let observed = CpuDemand::new(
                    cfg_time_mem,
                    pes_acmp::units::CpuCycles::new(ref_cycles.round() as u64),
                );
                let blend = |old: f64, new: f64| old * (1.0 - alpha) + new * alpha;
                profile.estimate = Some(CpuDemand::new(
                    TimeUs::from_micros(
                        blend(
                            current.t_mem().as_micros() as f64,
                            observed.t_mem().as_micros() as f64,
                        )
                        .round() as u64,
                    ),
                    pes_acmp::units::CpuCycles::new(
                        blend(
                            current.ref_cycles().get() as f64,
                            observed.ref_cycles().get() as f64,
                        )
                        .round() as u64,
                    ),
                ));
            }
        }
    }

    /// Clears all profiling state (new session).
    pub fn reset(&mut self) {
        self.profiles.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;

    fn setup() -> (Platform, CpuDemand) {
        (
            Platform::exynos_5410(),
            CpuDemand::new(TimeUs::from_millis(10), CpuCycles::new(300_000_000)),
        )
    }

    #[test]
    fn two_profiling_runs_recover_the_demand() {
        let (platform, true_demand) = setup();
        let dvfs = DvfsModel::new(&platform);
        let mut profiler = DemandProfiler::new(&platform);
        assert!(profiler.needs_profiling(EventType::Click));

        for _ in 0..2 {
            let cfg = profiler.profiling_config(EventType::Click, &dvfs);
            let busy = dvfs.execution_time(&true_demand, &cfg);
            profiler.observe(EventType::Click, cfg, busy, &dvfs);
        }
        assert!(!profiler.needs_profiling(EventType::Click));
        let est = profiler.estimate(EventType::Click).unwrap();
        let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
        assert!(rel(est.ref_cycles().get(), true_demand.ref_cycles().get()) < 0.05);
        assert!(rel(est.t_mem().as_micros(), true_demand.t_mem().as_micros()) < 0.05);
        assert_eq!(profiler.samples(EventType::Click), 2);
    }

    #[test]
    fn profiling_configs_alternate_and_are_fast_enough() {
        let (platform, _) = setup();
        let dvfs = DvfsModel::new(&platform);
        let mut profiler = DemandProfiler::new(&platform);
        let first = profiler.profiling_config(EventType::Load, &dvfs);
        profiler.observe(EventType::Load, first, TimeUs::from_millis(100), &dvfs);
        let second = profiler.profiling_config(EventType::Load, &dvfs);
        assert_ne!(first.frequency(), second.frequency());
        assert!(first.core().is_big() && second.core().is_big());
    }

    #[test]
    fn later_observations_track_drifting_workloads() {
        let (platform, true_demand) = setup();
        let dvfs = DvfsModel::new(&platform);
        let mut profiler = DemandProfiler::new(&platform);
        for _ in 0..2 {
            let cfg = profiler.profiling_config(EventType::Click, &dvfs);
            profiler.observe(
                EventType::Click,
                cfg,
                dvfs.execution_time(&true_demand, &cfg),
                &dvfs,
            );
        }
        let before = profiler.estimate(EventType::Click).unwrap();
        // The workload doubles; feed several observations of the new demand.
        let heavier = true_demand.scale(2.0);
        let cfg = platform.max_performance_config();
        for _ in 0..10 {
            profiler.observe(
                EventType::Click,
                cfg,
                dvfs.execution_time(&heavier, &cfg),
                &dvfs,
            );
        }
        let after = profiler.estimate(EventType::Click).unwrap();
        assert!(after.ref_cycles().get() > before.ref_cycles().get());
    }

    #[test]
    fn reset_clears_estimates() {
        let (platform, true_demand) = setup();
        let dvfs = DvfsModel::new(&platform);
        let mut profiler = DemandProfiler::new(&platform);
        for _ in 0..2 {
            let cfg = profiler.profiling_config(EventType::Scroll, &dvfs);
            profiler.observe(
                EventType::Scroll,
                cfg,
                dvfs.execution_time(&true_demand, &cfg),
                &dvfs,
            );
        }
        assert!(profiler.estimate(EventType::Scroll).is_some());
        profiler.reset();
        assert!(profiler.estimate(EventType::Scroll).is_none());
        assert_eq!(profiler.samples(EventType::Scroll), 0);
    }

    #[test]
    fn per_type_estimates_are_independent() {
        let (platform, true_demand) = setup();
        let dvfs = DvfsModel::new(&platform);
        let mut profiler = DemandProfiler::new(&platform);
        for _ in 0..2 {
            let cfg = profiler.profiling_config(EventType::Click, &dvfs);
            profiler.observe(
                EventType::Click,
                cfg,
                dvfs.execution_time(&true_demand, &cfg),
                &dvfs,
            );
        }
        assert!(profiler.estimate(EventType::Click).is_some());
        assert!(profiler.estimate(EventType::Scroll).is_none());
        assert!(profiler.needs_profiling(EventType::Scroll));
    }
}
