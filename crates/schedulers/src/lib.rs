//! # pes-schedulers — reactive ACMP scheduling baselines
//!
//! The baselines PES is evaluated against (Feng & Zhu, ISCA 2019, Sec. 6.1):
//!
//! * [`InteractiveGovernor`] — Android's default, QoS-agnostic interactivity
//!   governor (85 % utilisation threshold),
//! * [`OndemandGovernor`] — the energy-leaning utilisation governor, shown in
//!   the Fig. 13 Pareto analysis,
//! * [`Ebs`] — the state-of-the-art reactive QoS-aware scheduler (Zhu et al.,
//!   HPCA'15): per-event minimum-energy configuration under the event's QoS
//!   target, with online Eqn. 1 workload profiling ([`DemandProfiler`]) that
//!   PES reuses.
//!
//! All of them implement the [`Scheduler`] trait consumed by the reactive
//! simulation loop in `pes-sim`; the Oracle and PES itself are proactive and
//! live in `pes-core`.
//!
//! # Examples
//!
//! ```
//! use pes_schedulers::{Ebs, InteractiveGovernor, Scheduler};
//! use pes_acmp::Platform;
//!
//! let platform = Platform::exynos_5410();
//! let schedulers: Vec<Box<dyn Scheduler>> = vec![
//!     Box::new(InteractiveGovernor::new()),
//!     Box::new(Ebs::new(&platform)),
//! ];
//! assert_eq!(schedulers[0].name(), "Interactive");
//! assert_eq!(schedulers[1].name(), "EBS");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod context;
pub mod ebs;
pub mod governors;
pub mod profiler;
pub mod routing;

pub use context::{ScheduleContext, Scheduler};
pub use ebs::Ebs;
pub use governors::{InteractiveGovernor, OndemandGovernor};
pub use profiler::DemandProfiler;
pub use routing::{scheduler_for, FloorGovernor, RoutedTier};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<InteractiveGovernor>();
        assert_send_sync::<OndemandGovernor>();
        assert_send_sync::<Ebs>();
        assert_send_sync::<DemandProfiler>();
    }
}
