//! The reactive-scheduler interface.
//!
//! Reactive schedulers (the Android governors and EBS) pick one ACMP
//! configuration per outstanding event, right before it executes (Sec. 4.1).
//! The simulator calls [`Scheduler::schedule_event`] when an event is about
//! to run and [`Scheduler::on_event_complete`] when it finishes, so that
//! utilisation-driven and history-driven policies can maintain their state.

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, DvfsModel, Platform};
use pes_webrt::{QosPolicy, WebEvent};

/// Everything a reactive scheduler may consult when deciding a configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleContext<'a> {
    /// The hardware platform.
    pub platform: &'a Platform,
    /// The DVFS latency/energy model bound to the platform.
    pub dvfs: &'a DvfsModel<'a>,
    /// The QoS policy in force.
    pub qos: &'a QosPolicy,
    /// The time at which the event will start executing
    /// (`max(cpu_free_at, arrival)`).
    pub start_time: TimeUs,
    /// The configuration the hardware is currently set to.
    pub current_config: AcmpConfig,
}

/// A reactive, per-event scheduler.
pub trait Scheduler {
    /// Human-readable policy name (used in reports and figures).
    fn name(&self) -> &str;

    /// Chooses the configuration the next outstanding event will run on.
    fn schedule_event(&mut self, ctx: &ScheduleContext<'_>, event: &WebEvent) -> AcmpConfig;

    /// Notifies the scheduler that an event finished executing: which
    /// configuration it ran on, how long it was busy, and when it finished.
    fn on_event_complete(
        &mut self,
        ctx: &ScheduleContext<'_>,
        event: &WebEvent,
        config: &AcmpConfig,
        busy_time: TimeUs,
        finished_at: TimeUs,
    );

    /// Clears per-session state before replaying a new trace.
    fn reset(&mut self);

    /// Events this session the scheduler served with a conservative
    /// fallback because their type had no demand estimate (fault-plane
    /// starvation, hostile traces). Mirrors the proactive runtime's
    /// `RunReport::unprofiled_fallbacks`; purely reactive policies that
    /// never consult a profiler report zero.
    fn unprofiled_fallbacks(&self) -> usize {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::Platform;

    /// A trivial scheduler used to exercise the trait object path.
    #[derive(Debug, Default)]
    struct AlwaysFastest {
        completions: usize,
    }

    impl Scheduler for AlwaysFastest {
        fn name(&self) -> &str {
            "always-fastest"
        }
        fn schedule_event(&mut self, ctx: &ScheduleContext<'_>, _event: &WebEvent) -> AcmpConfig {
            ctx.platform.max_performance_config()
        }
        fn on_event_complete(
            &mut self,
            _ctx: &ScheduleContext<'_>,
            _event: &WebEvent,
            _config: &AcmpConfig,
            _busy_time: TimeUs,
            _finished_at: TimeUs,
        ) {
            self.completions += 1;
        }
        fn reset(&mut self) {
            self.completions = 0;
        }
    }

    #[test]
    fn trait_is_object_safe_and_usable() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let ctx = ScheduleContext {
            platform: &platform,
            dvfs: &dvfs,
            qos: &qos,
            start_time: TimeUs::ZERO,
            current_config: platform.min_power_config(),
        };
        let mut sched: Box<dyn Scheduler> = Box::<AlwaysFastest>::default();
        let event = WebEvent::new(
            pes_webrt::EventId::new(0),
            pes_dom::EventType::Click,
            None,
            TimeUs::ZERO,
            pes_acmp::CpuDemand::ZERO,
        );
        let cfg = sched.schedule_event(&ctx, &event);
        assert_eq!(cfg, platform.max_performance_config());
        sched.on_event_complete(
            &ctx,
            &event,
            &cfg,
            TimeUs::from_millis(1),
            TimeUs::from_millis(1),
        );
        sched.reset();
        assert_eq!(sched.name(), "always-fastest");
    }
}
