//! The Android CPU governors used as QoS-agnostic baselines (Sec. 6.1).
//!
//! Both governors are utilisation-driven and know nothing about events or
//! QoS targets. Because the simulator schedules at event granularity, the
//! within-event frequency ramp of the real governors is approximated: when
//! an event keeps the CPU busy longer than the governor's sampling period,
//! the governor will have ramped up long before the event finishes, so the
//! event is modelled as running at the ramped-up operating point; events
//! shorter than a sampling period run at whatever operating point the
//! governor had settled on while idle. This reproduces the two behaviours
//! the paper reports: `Interactive` spends the vast majority of busy time at
//! the big cluster's maximum frequency (high energy), yet still misses
//! deadlines for events that finish within one sampling period at a low
//! operating point, while `Ondemand` favours low frequencies and trades much
//! larger QoS violations for energy.

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, CoreKind, UtilizationTracker};
use pes_webrt::WebEvent;

use crate::context::{ScheduleContext, Scheduler};

/// The Android `Interactive` governor: the default interactivity-oriented
/// CPU governor (85 % utilisation threshold, aggressive ramp-up).
#[derive(Debug, Clone)]
pub struct InteractiveGovernor {
    tracker: UtilizationTracker,
    sampling_period: TimeUs,
    hispeed_threshold: f64,
    last_busy_end: TimeUs,
}

impl InteractiveGovernor {
    /// Creates the governor with its Android defaults: 20 ms sampling, 85 %
    /// hi-speed threshold.
    pub fn new() -> Self {
        InteractiveGovernor {
            tracker: UtilizationTracker::new(TimeUs::from_millis(100)),
            sampling_period: TimeUs::from_millis(20),
            hispeed_threshold: 0.85,
            last_busy_end: TimeUs::ZERO,
        }
    }

    fn idle_config(&self, ctx: &ScheduleContext<'_>, utilization: f64) -> AcmpConfig {
        // While not saturated the governor tracks load proportionally on the
        // big cluster (the browser main thread is HMP-placed on big cores).
        // Every shipped `Platform` constructor builds at least one cluster,
        // but the invariant lives in pes-acmp, not here: a clusterless
        // platform keeps whatever configuration the hardware is already in
        // rather than panicking mid-replay.
        let Some(big) = ctx
            .platform
            .cluster_for(CoreKind::BigA15)
            .or_else(|| ctx.platform.clusters().first())
        else {
            return ctx.current_config;
        };
        let min = big.min_frequency().as_mhz() as f64;
        let max = big.max_frequency().as_mhz() as f64;
        let target = min + utilization * (max - min);
        AcmpConfig::new(
            big.core_kind(),
            big.snap_up(pes_acmp::units::FreqMhz::new(target as u32)),
        )
    }
}

impl Default for InteractiveGovernor {
    fn default() -> Self {
        InteractiveGovernor::new()
    }
}

impl Scheduler for InteractiveGovernor {
    fn name(&self) -> &str {
        "Interactive"
    }

    fn schedule_event(&mut self, ctx: &ScheduleContext<'_>, event: &WebEvent) -> AcmpConfig {
        let utilization = self.tracker.utilization(ctx.start_time);
        let resting = self.idle_config(ctx, utilization);
        if utilization >= self.hispeed_threshold {
            return ctx.platform.max_performance_config();
        }
        // Within-event ramp approximation: if the event will keep the CPU
        // busy beyond one sampling period at the resting operating point, the
        // governor saturates and the event effectively runs at max speed.
        let at_resting = ctx.dvfs.execution_time(&event.demand(), &resting);
        if at_resting > self.sampling_period {
            ctx.platform.max_performance_config()
        } else {
            resting
        }
    }

    fn on_event_complete(
        &mut self,
        _ctx: &ScheduleContext<'_>,
        _event: &WebEvent,
        _config: &AcmpConfig,
        busy_time: TimeUs,
        finished_at: TimeUs,
    ) {
        let start = finished_at.saturating_sub(busy_time);
        self.tracker.record(self.last_busy_end, start, false);
        self.tracker.record(start, finished_at, true);
        self.last_busy_end = finished_at;
    }

    fn reset(&mut self) {
        self.tracker.reset();
        self.last_busy_end = TimeUs::ZERO;
    }
}

/// The Android `Ondemand` governor: energy-leaning utilisation scaling with a
/// long sampling period; rarely used for interactive workloads because of its
/// poor responsiveness (Fig. 13).
#[derive(Debug, Clone)]
pub struct OndemandGovernor {
    tracker: UtilizationTracker,
    sampling_period: TimeUs,
    up_threshold: f64,
    last_busy_end: TimeUs,
}

impl OndemandGovernor {
    /// Creates the governor with its classic defaults (100 ms sampling, 95 %
    /// up-threshold).
    pub fn new() -> Self {
        OndemandGovernor {
            tracker: UtilizationTracker::new(TimeUs::from_millis(300)),
            sampling_period: TimeUs::from_millis(100),
            up_threshold: 0.95,
            last_busy_end: TimeUs::ZERO,
        }
    }
}

impl Default for OndemandGovernor {
    fn default() -> Self {
        OndemandGovernor::new()
    }
}

impl Scheduler for OndemandGovernor {
    fn name(&self) -> &str {
        "Ondemand"
    }

    fn schedule_event(&mut self, ctx: &ScheduleContext<'_>, event: &WebEvent) -> AcmpConfig {
        let utilization = self.tracker.utilization(ctx.start_time);
        // Ondemand parks work on the little cluster until utilisation builds
        // up, then steps the big cluster frequency proportionally.
        let little = ctx
            .platform
            .cluster_for(CoreKind::LittleA7)
            .unwrap_or_else(|| &ctx.platform.clusters()[0]);
        let big = ctx
            .platform
            .cluster_for(CoreKind::BigA15)
            .unwrap_or_else(|| &ctx.platform.clusters()[0]);
        let resting = if utilization < 0.3 {
            AcmpConfig::new(little.core_kind(), little.max_frequency())
        } else {
            let min = big.min_frequency().as_mhz() as f64;
            let max = big.max_frequency().as_mhz() as f64;
            let target = min + utilization * (max - min);
            AcmpConfig::new(
                big.core_kind(),
                big.snap_up(pes_acmp::units::FreqMhz::new(target as u32)),
            )
        };
        if utilization >= self.up_threshold {
            return ctx.platform.max_performance_config();
        }
        // Within-event ramp: ondemand only reaches a high operating point
        // after a full (long) sampling period of saturation, and even then it
        // steps rather than jumps; long events end up at a high-but-not-peak
        // big configuration.
        let at_resting = ctx.dvfs.execution_time(&event.demand(), &resting);
        if at_resting > self.sampling_period {
            let stepped = big.step_down(big.max_frequency());
            AcmpConfig::new(big.core_kind(), stepped)
        } else {
            resting
        }
    }

    fn on_event_complete(
        &mut self,
        _ctx: &ScheduleContext<'_>,
        _event: &WebEvent,
        _config: &AcmpConfig,
        busy_time: TimeUs,
        finished_at: TimeUs,
    ) {
        let start = finished_at.saturating_sub(busy_time);
        self.tracker.record(self.last_busy_end, start, false);
        self.tracker.record(start, finished_at, true);
        self.last_busy_end = finished_at;
    }

    fn reset(&mut self) {
        self.tracker.reset();
        self.last_busy_end = TimeUs::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;
    use pes_acmp::{CpuDemand, DvfsModel, Platform};
    use pes_dom::EventType;
    use pes_webrt::{EventId, QosPolicy};

    fn ctx<'a>(
        platform: &'a Platform,
        dvfs: &'a DvfsModel<'a>,
        qos: &'a QosPolicy,
        start_ms: u64,
    ) -> ScheduleContext<'a> {
        ScheduleContext {
            platform,
            dvfs,
            qos,
            start_time: TimeUs::from_millis(start_ms),
            current_config: platform.min_power_config(),
        }
    }

    fn event(ty: EventType, mcycles: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(0),
            ty,
            None,
            TimeUs::ZERO,
            CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(mcycles * 1_000_000)),
        )
    }

    #[test]
    fn interactive_runs_long_events_at_peak() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let mut gov = InteractiveGovernor::new();
        let cfg = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 0),
            &event(EventType::Load, 2_000),
        );
        assert_eq!(cfg, platform.max_performance_config());
        let tap = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 0),
            &event(EventType::Click, 400),
        );
        assert_eq!(tap, platform.max_performance_config());
    }

    #[test]
    fn interactive_leaves_tiny_events_at_the_resting_point_after_idle() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let mut gov = InteractiveGovernor::new();
        // Long idle: utilisation is zero, resting point is the lowest big
        // frequency; a tiny move event finishes within one sampling period.
        let cfg = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 5_000),
            &event(EventType::Scroll, 10),
        );
        assert!(cfg.core().is_big());
        assert!(cfg.frequency() < platform.max_performance_config().frequency());
    }

    #[test]
    fn interactive_saturated_utilisation_jumps_to_peak() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let mut gov = InteractiveGovernor::new();
        // Report a solid 100 ms of busy time right before the decision point.
        gov.on_event_complete(
            &ctx(&platform, &dvfs, &qos, 100),
            &event(EventType::Load, 100),
            &platform.max_performance_config(),
            TimeUs::from_millis(100),
            TimeUs::from_millis(100),
        );
        let cfg = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 100),
            &event(EventType::Scroll, 5),
        );
        assert_eq!(cfg, platform.max_performance_config());
    }

    #[test]
    fn ondemand_prefers_low_power_after_idle_and_never_peaks_for_long_events() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let mut gov = OndemandGovernor::new();
        let small = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 5_000),
            &event(EventType::Scroll, 10),
        );
        assert_eq!(small.core(), CoreKind::LittleA7);
        let long = gov.schedule_event(
            &ctx(&platform, &dvfs, &qos, 5_000),
            &event(EventType::Load, 2_000),
        );
        assert!(long.core().is_big());
        assert!(long.frequency() < platform.max_performance_config().frequency());
    }

    #[test]
    fn governors_reset_cleanly() {
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let qos = QosPolicy::paper_defaults();
        let mut gov = InteractiveGovernor::new();
        gov.on_event_complete(
            &ctx(&platform, &dvfs, &qos, 50),
            &event(EventType::Load, 100),
            &platform.max_performance_config(),
            TimeUs::from_millis(50),
            TimeUs::from_millis(50),
        );
        gov.reset();
        assert_eq!(gov.tracker.utilization(TimeUs::from_millis(50)), 0.0);
        let mut od = OndemandGovernor::new();
        od.reset();
        assert_eq!(od.name(), "Ondemand");
        assert_eq!(gov.name(), "Interactive");
    }
}
