//! EBS — the Event-Based Scheduler of Zhu et al. (HPCA'15), the
//! state-of-the-art *reactive*, QoS-aware baseline the paper compares
//! against (Sec. 4.2, Sec. 6.1).
//!
//! Before executing an event, EBS predicts the ACMP configuration that meets
//! the event's QoS target with the minimum energy, using the Eqn. 1 workload
//! estimate recovered online by the [`DemandProfiler`]. It schedules events
//! one at a time and never looks ahead, which is precisely the limitation PES
//! removes.

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, DvfsLadder, LadderCache};
use pes_webrt::WebEvent;

use crate::context::{ScheduleContext, Scheduler};
use crate::profiler::DemandProfiler;

/// The EBS scheduler.
#[derive(Debug, Clone)]
pub struct Ebs {
    profiler: DemandProfiler,
    /// Demand-keyed memo over the precomputed DVFS ladder: the profiled
    /// estimate of an event type only changes when a new observation lands,
    /// so most decisions re-evaluate a demand this cache already holds.
    ladder_cache: LadderCache,
    /// Events served by the conservative profiling configuration because
    /// their type had no demand estimate *after* the profiling guard —
    /// possible when a fault plane starves the profiler (see
    /// [`Scheduler::unprofiled_fallbacks`]).
    unprofiled_fallbacks: usize,
}

impl Ebs {
    /// Creates an EBS instance for a platform.
    pub fn new(platform: &pes_acmp::Platform) -> Self {
        Ebs {
            profiler: DemandProfiler::new(platform),
            ladder_cache: LadderCache::new(),
            unprofiled_fallbacks: 0,
        }
    }

    /// Read access to the online profiler (shared logic with PES).
    pub fn profiler(&self) -> &DemandProfiler {
        &self.profiler
    }
}

impl Scheduler for Ebs {
    fn name(&self) -> &str {
        "EBS"
    }

    fn schedule_event(&mut self, ctx: &ScheduleContext<'_>, event: &WebEvent) -> AcmpConfig {
        // Cold start: run the two profiling executions at the designated
        // profiling operating points.
        if self.profiler.needs_profiling(event.event_type()) {
            return self.profiler.profiling_config(event.event_type(), ctx.dvfs);
        }
        // A profiled type normally has an estimate, but fault-plane
        // starvation (or a hostile trace) can deliver a type the profiler
        // never completed: fall back to the conservative profiling
        // configuration — the same ladder floor the proactive runtime's
        // `reactive_config` takes — instead of panicking.
        let Some(estimate) = self.profiler.estimate(event.event_type()) else {
            self.unprofiled_fallbacks += 1;
            return self.profiler.profiling_config(event.event_type(), ctx.dvfs);
        };
        // The event's remaining latency budget: its deadline minus the time
        // at which it will actually start executing (queueing delay included,
        // which is exactly why interference hurts a reactive policy).
        let deadline = event.arrival() + ctx.qos.target_for_event(event.event_type());
        let budget = deadline.saturating_sub(ctx.start_time);
        let points = self.ladder_cache.points(ctx.dvfs.ladder(), &estimate);
        match DvfsLadder::cheapest_within(points, budget) {
            Some(cfg) => cfg,
            // Even the fastest configuration cannot make it (Type I): spend
            // peak performance to minimise the damage, as the paper observes
            // conventional schedulers do.
            None => ctx.platform.max_performance_config(),
        }
    }

    fn on_event_complete(
        &mut self,
        ctx: &ScheduleContext<'_>,
        event: &WebEvent,
        config: &AcmpConfig,
        busy_time: TimeUs,
        _finished_at: TimeUs,
    ) {
        self.profiler
            .observe(event.event_type(), *config, busy_time, ctx.dvfs);
    }

    fn reset(&mut self) {
        self.profiler.reset();
        self.ladder_cache.clear();
        self.unprofiled_fallbacks = 0;
    }

    fn unprofiled_fallbacks(&self) -> usize {
        self.unprofiled_fallbacks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;
    use pes_acmp::{CpuDemand, DvfsModel, Platform};
    use pes_dom::EventType;
    use pes_webrt::{EventId, QosPolicy};

    fn event(id: u64, ty: EventType, at_ms: u64, mcycles: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(id),
            ty,
            None,
            TimeUs::from_millis(at_ms),
            CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(mcycles * 1_000_000)),
        )
    }

    struct Fixture {
        platform: Platform,
        qos: QosPolicy,
    }

    impl Fixture {
        fn new() -> Self {
            Fixture {
                platform: Platform::exynos_5410(),
                qos: QosPolicy::paper_defaults(),
            }
        }
    }

    fn warm_up(ebs: &mut Ebs, fixture: &Fixture, ty: EventType, mcycles: u64) {
        let dvfs = DvfsModel::new(&fixture.platform);
        for i in 0..2 {
            let ev = event(i, ty, 0, mcycles);
            let ctx = ScheduleContext {
                platform: &fixture.platform,
                dvfs: &dvfs,
                qos: &fixture.qos,
                start_time: TimeUs::ZERO,
                current_config: fixture.platform.min_power_config(),
            };
            let cfg = ebs.schedule_event(&ctx, &ev);
            let busy = dvfs.execution_time(&ev.demand(), &cfg);
            ebs.on_event_complete(&ctx, &ev, &cfg, busy, busy);
        }
    }

    #[test]
    fn cold_start_uses_profiling_configs() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        let ctx = ScheduleContext {
            platform: &fixture.platform,
            dvfs: &dvfs,
            qos: &fixture.qos,
            start_time: TimeUs::ZERO,
            current_config: fixture.platform.min_power_config(),
        };
        let cfg = ebs.schedule_event(&ctx, &event(0, EventType::Click, 0, 300));
        assert!(
            cfg.core().is_big(),
            "profiling runs happen on the big cluster"
        );
        assert!(ebs.profiler().needs_profiling(EventType::Click));
    }

    #[test]
    fn unprofiled_fallbacks_start_zero_and_reset_clears_them() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        assert_eq!(ebs.unprofiled_fallbacks(), 0);
        warm_up(&mut ebs, &fixture, EventType::Click, 300);
        let ctx = ScheduleContext {
            platform: &fixture.platform,
            dvfs: &dvfs,
            qos: &fixture.qos,
            start_time: TimeUs::from_millis(1_000),
            current_config: fixture.platform.min_power_config(),
        };
        ebs.schedule_event(&ctx, &event(9, EventType::Click, 1_000, 300));
        // The healthy path — profiling guard or served estimate — never
        // counts a fallback; the counter only moves on the starvation
        // branch, and a session reset clears it.
        assert_eq!(ebs.unprofiled_fallbacks(), 0);
        ebs.unprofiled_fallbacks = 3;
        ebs.reset();
        assert_eq!(ebs.unprofiled_fallbacks(), 0);
    }

    #[test]
    fn after_profiling_ebs_picks_the_cheapest_feasible_config() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        warm_up(&mut ebs, &fixture, EventType::Click, 300);
        // A tap with no queueing delay has its whole 300 ms budget available.
        let ev = event(9, EventType::Click, 1_000, 300);
        let ctx = ScheduleContext {
            platform: &fixture.platform,
            dvfs: &dvfs,
            qos: &fixture.qos,
            start_time: TimeUs::from_millis(1_000),
            current_config: fixture.platform.min_power_config(),
        };
        let cfg = ebs.schedule_event(&ctx, &ev);
        // Must meet the deadline with the estimated demand...
        let est = ebs.profiler().estimate(EventType::Click).unwrap();
        assert!(dvfs.execution_time(&est, &cfg) <= TimeUs::from_millis(300));
        // ...and must not simply be the maximum-performance configuration.
        assert!(cfg != fixture.platform.max_performance_config());
    }

    #[test]
    fn queueing_delay_forces_a_faster_configuration() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        warm_up(&mut ebs, &fixture, EventType::Click, 300);
        let ev = event(9, EventType::Click, 1_000, 300);
        let relaxed_ctx = ScheduleContext {
            platform: &fixture.platform,
            dvfs: &dvfs,
            qos: &fixture.qos,
            start_time: TimeUs::from_millis(1_000),
            current_config: fixture.platform.min_power_config(),
        };
        let relaxed = ebs.schedule_event(&relaxed_ctx, &ev);
        // The same event, but the CPU only frees up 200 ms after the arrival:
        // only 100 ms of budget remain.
        let squeezed_ctx = ScheduleContext {
            start_time: TimeUs::from_millis(1_200),
            ..relaxed_ctx
        };
        let squeezed = ebs.schedule_event(&squeezed_ctx, &ev);
        assert!(
            squeezed.effective_throughput_mhz() > relaxed.effective_throughput_mhz(),
            "interference should push EBS to a faster configuration"
        );
    }

    #[test]
    fn infeasible_budgets_fall_back_to_peak_performance() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        warm_up(&mut ebs, &fixture, EventType::Scroll, 200);
        // A move event whose profiled demand cannot fit in 33 ms at all.
        let ev = event(9, EventType::Scroll, 1_000, 200);
        let ctx = ScheduleContext {
            platform: &fixture.platform,
            dvfs: &dvfs,
            qos: &fixture.qos,
            start_time: TimeUs::from_millis(1_000),
            current_config: fixture.platform.min_power_config(),
        };
        assert_eq!(
            ebs.schedule_event(&ctx, &ev),
            fixture.platform.max_performance_config()
        );
    }

    #[test]
    fn ladder_cached_decisions_match_the_reference_model() {
        let fixture = Fixture::new();
        let dvfs = DvfsModel::new(&fixture.platform);
        let mut ebs = Ebs::new(&fixture.platform);
        warm_up(&mut ebs, &fixture, EventType::Click, 300);
        let estimate = ebs.profiler().estimate(EventType::Click).unwrap();
        // Sweep queueing delays: every budget must produce exactly the
        // decision the pre-ladder per-call model makes, and repeated
        // decisions on the same estimate must come from the memo.
        for delay_ms in [0u64, 50, 100, 150, 200, 250, 280, 299] {
            let ev = event(9, EventType::Click, 1_000, 300);
            let ctx = ScheduleContext {
                platform: &fixture.platform,
                dvfs: &dvfs,
                qos: &fixture.qos,
                start_time: TimeUs::from_millis(1_000 + delay_ms),
                current_config: fixture.platform.min_power_config(),
            };
            let chosen = ebs.schedule_event(&ctx, &ev);
            let deadline = ev.arrival() + fixture.qos.target_for_event(EventType::Click);
            let budget = deadline.saturating_sub(ctx.start_time);
            let reference = dvfs
                .cheapest_config_within_reference(&estimate, budget)
                .unwrap_or_else(|| fixture.platform.max_performance_config());
            assert_eq!(chosen, reference, "decision diverged at delay {delay_ms}ms");
        }
        let (hits, misses) = ebs.ladder_cache.stats();
        assert!(
            hits >= 7,
            "repeated estimates must hit the memo: {hits}/{misses}"
        );
    }

    #[test]
    fn reset_returns_to_cold_start() {
        let fixture = Fixture::new();
        let mut ebs = Ebs::new(&fixture.platform);
        warm_up(&mut ebs, &fixture, EventType::Click, 300);
        assert!(!ebs.profiler().needs_profiling(EventType::Click));
        ebs.reset();
        assert!(ebs.profiler().needs_profiling(EventType::Click));
        assert_eq!(ebs.name(), "EBS");
    }
}
