//! The display refresh (VSync) clock.
//!
//! Frames produced by the rendering engine are only shown at the next display
//! refresh, which arrives at 60 Hz on the mobile devices the paper targets
//! (Sec. 2, Fig. 1). The event latency therefore includes an idle period
//! between frame readiness and the next VSync.

use pes_acmp::units::TimeUs;

/// A fixed-rate VSync clock.
///
/// # Examples
///
/// ```
/// use pes_webrt::VsyncClock;
/// use pes_acmp::units::TimeUs;
///
/// let clock = VsyncClock::sixty_hz();
/// // A frame ready at 20 ms is displayed at the second refresh (~33.3 ms).
/// let shown = clock.next_refresh_at_or_after(TimeUs::from_millis(20));
/// assert_eq!(shown.as_micros(), 33_334);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsyncClock {
    period: TimeUs,
}

impl VsyncClock {
    /// The 60 Hz clock used by most mobile displays (16.667 ms period).
    pub fn sixty_hz() -> Self {
        VsyncClock {
            period: TimeUs::from_micros(16_667),
        }
    }

    /// A clock with an arbitrary refresh period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn with_period(period: TimeUs) -> Self {
        assert!(!period.is_zero(), "vsync period must be non-zero");
        VsyncClock { period }
    }

    /// The refresh period.
    pub fn period(&self) -> TimeUs {
        self.period
    }

    /// The refresh rate in Hz.
    pub fn refresh_rate_hz(&self) -> f64 {
        1_000_000.0 / self.period.as_micros() as f64
    }

    /// The first VSync instant at or after `t`. A frame that becomes ready
    /// exactly on a VSync is shown at that VSync.
    pub fn next_refresh_at_or_after(&self, t: TimeUs) -> TimeUs {
        let period = self.period.as_micros();
        let ticks = t.as_micros().div_ceil(period);
        TimeUs::from_micros(ticks * period)
    }

    /// The idle time between a frame becoming ready at `t` and it being
    /// displayed.
    pub fn wait_from(&self, t: TimeUs) -> TimeUs {
        self.next_refresh_at_or_after(t).saturating_sub(t)
    }
}

impl Default for VsyncClock {
    fn default() -> Self {
        VsyncClock::sixty_hz()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_hz_period_and_rate() {
        let c = VsyncClock::sixty_hz();
        assert_eq!(c.period(), TimeUs::from_micros(16_667));
        assert!((c.refresh_rate_hz() - 60.0).abs() < 0.1);
        assert_eq!(c, VsyncClock::default());
    }

    #[test]
    fn frame_on_the_boundary_is_shown_immediately() {
        let c = VsyncClock::with_period(TimeUs::from_millis(10));
        assert_eq!(
            c.next_refresh_at_or_after(TimeUs::from_millis(30)),
            TimeUs::from_millis(30)
        );
        assert_eq!(c.wait_from(TimeUs::from_millis(30)), TimeUs::ZERO);
    }

    #[test]
    fn frame_between_boundaries_waits_for_the_next_one() {
        let c = VsyncClock::with_period(TimeUs::from_millis(10));
        assert_eq!(
            c.next_refresh_at_or_after(TimeUs::from_millis(31)),
            TimeUs::from_millis(40)
        );
        assert_eq!(c.wait_from(TimeUs::from_millis(31)), TimeUs::from_millis(9));
    }

    #[test]
    fn time_zero_is_a_refresh() {
        let c = VsyncClock::sixty_hz();
        assert_eq!(c.next_refresh_at_or_after(TimeUs::ZERO), TimeUs::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = VsyncClock::with_period(TimeUs::ZERO);
    }
}
