//! The display refresh (VSync) clock and the presentation-feedback frame
//! scheduler.
//!
//! Frames produced by the rendering engine are only shown at the next display
//! refresh, which arrives at 60 Hz on the mobile devices the paper targets
//! (Sec. 2, Fig. 1). The event latency therefore includes an idle period
//! between frame readiness and the next VSync.
//!
//! Two ways of finding that refresh instant live here:
//!
//! * [`VsyncClock::next_refresh_at_or_after`] — the *reference* path: a
//!   `div_ceil` against absolute time, re-derived per event. Retained
//!   verbatim so the differential tests can pin the feedback path against
//!   it bit for bit.
//! * [`FrameScheduler`] — the fast path: predicts the next presentation
//!   from the last presentation's [`PresentationFeedback`] plus the refresh
//!   interval and a pending-commit latency hint, stepping along the VSync
//!   grid instead of dividing. Exact by construction (see the invariant on
//!   [`FrameScheduler::presentation_at`]).

use pes_acmp::units::TimeUs;

use crate::frame::PresentationFeedback;

/// A fixed-rate VSync clock.
///
/// # Examples
///
/// ```
/// use pes_webrt::VsyncClock;
/// use pes_acmp::units::TimeUs;
///
/// let clock = VsyncClock::sixty_hz();
/// // A frame ready at 20 ms is displayed at the second refresh (~33.3 ms).
/// let shown = clock.next_refresh_at_or_after(TimeUs::from_millis(20));
/// assert_eq!(shown.as_micros(), 33_334);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VsyncClock {
    period: TimeUs,
}

impl VsyncClock {
    /// The 60 Hz clock used by most mobile displays (16.667 ms period).
    pub fn sixty_hz() -> Self {
        VsyncClock {
            period: TimeUs::from_micros(16_667),
        }
    }

    /// A clock with an arbitrary refresh period.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero.
    pub fn with_period(period: TimeUs) -> Self {
        assert!(!period.is_zero(), "vsync period must be non-zero");
        VsyncClock { period }
    }

    /// The refresh period.
    pub fn period(&self) -> TimeUs {
        self.period
    }

    /// The refresh rate in Hz.
    pub fn refresh_rate_hz(&self) -> f64 {
        1_000_000.0 / self.period.as_micros() as f64
    }

    /// The first VSync instant at or after `t`. A frame that becomes ready
    /// exactly on a VSync is shown at that VSync.
    pub fn next_refresh_at_or_after(&self, t: TimeUs) -> TimeUs {
        let period = self.period.as_micros();
        let ticks = t.as_micros().div_ceil(period);
        TimeUs::from_micros(ticks * period)
    }

    /// The idle time between a frame becoming ready at `t` and it being
    /// displayed.
    pub fn wait_from(&self, t: TimeUs) -> TimeUs {
        self.next_refresh_at_or_after(t).saturating_sub(t)
    }
}

impl Default for VsyncClock {
    fn default() -> Self {
        VsyncClock::sixty_hz()
    }
}

/// How many grid steps the feedback path walks before conceding to the
/// reference `div_ceil`. Consecutive commits land within a few refreshes of
/// each other, so the walk almost always terminates in 0–2 steps; a long
/// idle gap (or a commit far in the past) costs one bounded walk attempt
/// plus the division it would have paid anyway.
const MAX_FEEDBACK_STEPS: u64 = 8;

/// A feedback-driven frame scheduler: predicts the presentation instant of
/// the next committed frame from the last presentation, the refresh
/// interval, and the number of produced-but-uncommitted frames, in the style
/// of a Wayland compositor's frame scheduler.
///
/// The per-event reference path re-derives the VSync grid from absolute
/// time with a 64-bit division per commit. This scheduler instead keeps the
/// last [`PresentationFeedback`] and *steps* along the grid from it —
/// integer adds and compares, no division, no wall clock, fully
/// deterministic. When the target lies further than `MAX_FEEDBACK_STEPS`
/// refreshes from the seeded guess (cold start, long idle gaps, a fault
/// that pushed a commit far ahead), it falls back to the reference
/// arithmetic, so the answer is **always** bit-identical to
/// [`VsyncClock::next_refresh_at_or_after`].
///
/// # Examples
///
/// ```
/// use pes_webrt::{FrameScheduler, VsyncClock};
/// use pes_acmp::units::TimeUs;
///
/// let clock = VsyncClock::sixty_hz();
/// let mut frames = FrameScheduler::new(clock);
/// // First frame: no feedback yet, resolved by the reference arithmetic.
/// let first = frames.presentation_at(TimeUs::from_millis(20));
/// assert_eq!(first, clock.next_refresh_at_or_after(TimeUs::from_millis(20)));
/// // Subsequent frames step from the recorded feedback — same answers.
/// let second = frames.presentation_at(TimeUs::from_millis(40));
/// assert_eq!(second, clock.next_refresh_at_or_after(TimeUs::from_millis(40)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameScheduler {
    clock: VsyncClock,
    /// Feedback from the last presentation, `None` until the first commit
    /// (and again after a refresh-interval change, which moves the grid).
    feedback: Option<PresentationFeedback>,
    /// Frames produced by the engine but not yet committed or squashed —
    /// the Pending Frame Buffer depth, as the scheduler sees it. Used only
    /// to seed the grid walk; correctness never depends on it.
    pending_commits: u32,
    /// Presentations answered by the feedback walk (telemetry).
    feedback_hits: u64,
    /// Presentations that fell back to the reference arithmetic (cold
    /// start, long gaps, backlog beyond the walk bound; telemetry).
    cold_predictions: u64,
}

impl FrameScheduler {
    /// Creates a scheduler with no presentation feedback yet.
    pub fn new(clock: VsyncClock) -> Self {
        FrameScheduler {
            clock,
            feedback: None,
            pending_commits: 0,
            feedback_hits: 0,
            cold_predictions: 0,
        }
    }

    /// The underlying VSync clock.
    pub fn clock(&self) -> &VsyncClock {
        &self.clock
    }

    /// Replaces the VSync clock. A different refresh period moves the
    /// whole presentation grid, so any recorded feedback is discarded and
    /// the next prediction resolves cold (mid-replay refresh-rate changes
    /// stay exact).
    pub fn set_clock(&mut self, clock: VsyncClock) {
        if clock.period() != self.clock.period() {
            self.feedback = None;
        }
        self.clock = clock;
    }

    /// The last presentation feedback, if any frame has been presented.
    pub fn feedback(&self) -> Option<PresentationFeedback> {
        self.feedback
    }

    /// Frames produced but not yet committed or squashed.
    pub fn pending_commits(&self) -> u32 {
        self.pending_commits
    }

    /// Predictions served by the feedback walk.
    pub fn feedback_hits(&self) -> u64 {
        self.feedback_hits
    }

    /// Predictions that resolved through the reference arithmetic.
    pub fn cold_predictions(&self) -> u64 {
        self.cold_predictions
    }

    /// Notes that the engine produced a frame whose commit is still
    /// outstanding (it entered the Pending Frame Buffer).
    pub fn frame_produced(&mut self) {
        self.pending_commits = self.pending_commits.saturating_add(1);
    }

    /// Notes that an outstanding frame left the buffer (committed or
    /// squashed).
    pub fn frame_retired(&mut self) {
        self.pending_commits = self.pending_commits.saturating_sub(1);
    }

    /// The presentation instant for a frame visible from `visible_from`,
    /// recording the result as the next prediction's feedback.
    ///
    /// # Invariant
    ///
    /// Always equals `self.clock().next_refresh_at_or_after(visible_from)`.
    /// Every recorded presentation is an exact multiple of the period (time
    /// zero is a VSync), so stepping whole periods from it stays on the
    /// same absolute grid the reference division derives; when the bounded
    /// walk cannot reach the target it *runs* the reference division. The
    /// differential proptests and the frame-scheduler cold-path suite pin
    /// this equality.
    pub fn presentation_at(&mut self, visible_from: TimeUs) -> TimeUs {
        let presented_at = match self.predict(visible_from) {
            Some(stepped) => {
                self.feedback_hits += 1;
                stepped
            }
            None => {
                self.cold_predictions += 1;
                self.clock.next_refresh_at_or_after(visible_from)
            }
        };
        self.feedback = Some(PresentationFeedback {
            presented_at,
            refresh: self.clock.period(),
        });
        presented_at
    }

    /// The bounded grid walk: seed at the last presentation plus one
    /// refresh per pending commit, then correct towards the unique grid
    /// point in `[visible_from, visible_from + period)`. `None` when there
    /// is no feedback or the target is out of walking range.
    fn predict(&self, visible_from: TimeUs) -> Option<TimeUs> {
        let feedback = self.feedback?;
        let period = self.clock.period().as_micros();
        let target_floor = visible_from.as_micros();
        let latency = u64::from(self.pending_commits).saturating_add(1);
        let mut candidate = feedback
            .presented_at
            .as_micros()
            .checked_add(period.checked_mul(latency)?)?;
        // Out-of-range targets concede to the reference division up front:
        // one multiply and one compare instead of a doomed full-length walk
        // (long inter-event gaps would otherwise pay the walk *and* the
        // division on every commit).
        let reach = period.checked_mul(MAX_FEEDBACK_STEPS)?;
        if candidate < target_floor {
            // Walk up until the refresh is at or after frame visibility:
            // `k = ceil(deficit / period)` steps, in range iff `k` is at
            // most `MAX_FEEDBACK_STEPS` iff `deficit <= reach`.
            if target_floor - candidate > reach {
                return None;
            }
            while candidate < target_floor {
                candidate += period;
            }
        } else {
            // Walk down while a whole earlier refresh still covers the
            // frame: `m = floor(excess / period)` steps, in range iff
            // `excess < reach + period`.
            let excess = candidate - target_floor;
            if excess >= reach.checked_add(period)? {
                return None;
            }
            while candidate - target_floor >= period {
                candidate -= period;
            }
        }
        Some(TimeUs::from_micros(candidate))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixty_hz_period_and_rate() {
        let c = VsyncClock::sixty_hz();
        assert_eq!(c.period(), TimeUs::from_micros(16_667));
        assert!((c.refresh_rate_hz() - 60.0).abs() < 0.1);
        assert_eq!(c, VsyncClock::default());
    }

    #[test]
    fn frame_on_the_boundary_is_shown_immediately() {
        let c = VsyncClock::with_period(TimeUs::from_millis(10));
        assert_eq!(
            c.next_refresh_at_or_after(TimeUs::from_millis(30)),
            TimeUs::from_millis(30)
        );
        assert_eq!(c.wait_from(TimeUs::from_millis(30)), TimeUs::ZERO);
    }

    #[test]
    fn frame_between_boundaries_waits_for_the_next_one() {
        let c = VsyncClock::with_period(TimeUs::from_millis(10));
        assert_eq!(
            c.next_refresh_at_or_after(TimeUs::from_millis(31)),
            TimeUs::from_millis(40)
        );
        assert_eq!(c.wait_from(TimeUs::from_millis(31)), TimeUs::from_millis(9));
    }

    #[test]
    fn time_zero_is_a_refresh() {
        let c = VsyncClock::sixty_hz();
        assert_eq!(c.next_refresh_at_or_after(TimeUs::ZERO), TimeUs::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = VsyncClock::with_period(TimeUs::ZERO);
    }

    /// Every `presentation_at` answer must equal the reference division —
    /// the invariant the engine's commit path relies on.
    fn assert_parity(frames: &mut FrameScheduler, visible_from: TimeUs) {
        let reference = frames.clock().next_refresh_at_or_after(visible_from);
        assert_eq!(
            frames.presentation_at(visible_from),
            reference,
            "feedback prediction diverged from the reference at {visible_from}"
        );
    }

    #[test]
    fn first_frame_before_any_feedback_resolves_cold_and_exact() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        assert!(frames.feedback().is_none());
        assert_parity(&mut frames, TimeUs::from_millis(20));
        assert_eq!(frames.cold_predictions(), 1);
        assert_eq!(frames.feedback_hits(), 0);
        let fb = frames.feedback().expect("first commit records feedback");
        assert_eq!(fb.presented_at, TimeUs::from_micros(33_334));
        assert_eq!(fb.refresh, TimeUs::from_micros(16_667));
        // The second, nearby frame is answered by the feedback walk.
        assert_parity(&mut frames, TimeUs::from_millis(30));
        assert_eq!(frames.feedback_hits(), 1);
    }

    #[test]
    fn dense_commit_streams_stay_on_the_feedback_path() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        let mut t = 5_000u64;
        for step in [3_000, 16_000, 16_667, 1, 40_000, 0, 33_334, 12_345] {
            t += step;
            assert_parity(&mut frames, TimeUs::from_micros(t));
        }
        // All but the cold first prediction walked from feedback.
        assert_eq!(frames.cold_predictions(), 1);
        assert_eq!(frames.feedback_hits(), 7);
    }

    #[test]
    fn saturated_pending_backlog_keeps_predictions_exact() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        assert_parity(&mut frames, TimeUs::from_millis(10));
        // A deep speculative backlog seeds the walk far ahead of the next
        // commit; the walk must come back down without losing exactness.
        for _ in 0..40 {
            frames.frame_produced();
        }
        assert_eq!(frames.pending_commits(), 40);
        assert_parity(&mut frames, TimeUs::from_millis(18));
        for _ in 0..40 {
            frames.frame_retired();
        }
        assert_eq!(frames.pending_commits(), 0);
        // Retiring below zero saturates instead of wrapping.
        frames.frame_retired();
        assert_eq!(frames.pending_commits(), 0);
        assert_parity(&mut frames, TimeUs::from_millis(35));
    }

    #[test]
    fn commits_regressing_behind_the_last_presentation_stay_exact() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        // A late-vsync fault can push one commit several periods ahead; the
        // next commit then lands *before* the recorded presentation.
        assert_parity(&mut frames, TimeUs::from_millis(500));
        // ~24 refreshes back: beyond the walk bound, resolved cold.
        assert_parity(&mut frames, TimeUs::from_millis(110));
        assert_eq!(frames.cold_predictions(), 2);
        // ~7 refreshes back: within the bound, walked down exactly.
        assert_parity(&mut frames, TimeUs::from_millis(1));
        assert_eq!(frames.cold_predictions(), 2);
        assert_eq!(frames.feedback_hits(), 1);
    }

    #[test]
    fn long_idle_gaps_fall_back_to_the_reference_arithmetic() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        assert_parity(&mut frames, TimeUs::from_millis(5));
        let cold_before = frames.cold_predictions();
        // A two-second gap is ~120 refreshes — beyond the walk bound.
        assert_parity(&mut frames, TimeUs::from_secs(2));
        assert_eq!(frames.cold_predictions(), cold_before + 1);
        // The fallback still re-seeds the feedback for the frames after it.
        assert_parity(&mut frames, TimeUs::from_micros(2_005_000));
        assert_eq!(frames.cold_predictions(), cold_before + 1);
    }

    #[test]
    fn refresh_interval_change_mid_replay_resets_feedback_and_stays_exact() {
        let mut frames = FrameScheduler::new(VsyncClock::sixty_hz());
        assert_parity(&mut frames, TimeUs::from_millis(20));
        assert!(frames.feedback().is_some());
        // Switch to a 120 Hz panel mid-replay: the grid moves, so the
        // feedback must be dropped and the next prediction resolved cold.
        frames.set_clock(VsyncClock::with_period(TimeUs::from_micros(8_333)));
        assert!(frames.feedback().is_none());
        let cold_before = frames.cold_predictions();
        assert_parity(&mut frames, TimeUs::from_millis(25));
        assert_eq!(frames.cold_predictions(), cold_before + 1);
        assert_parity(&mut frames, TimeUs::from_millis(26));
        // Setting the same period keeps the feedback warm.
        frames.set_clock(VsyncClock::with_period(TimeUs::from_micros(8_333)));
        assert!(frames.feedback().is_some());
        assert_parity(&mut frames, TimeUs::from_millis(27));
    }
}
