//! The execution engine: a single-main-thread model of the Web runtime
//! executing events on ACMP hardware.
//!
//! Both the reactive baselines (Interactive, Ondemand, EBS) and the proactive
//! schedulers (PES, Oracle) drive the same engine so that time, energy and
//! QoS accounting are identical across policies: the engine owns the current
//! simulated time, the active ACMP configuration, the energy meter, the VSync
//! clock and the per-event outcome log.

use std::sync::Arc;

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{
    AcmpConfig, ActivityKind, CpuDemand, DvfsLadder, DvfsModel, EnergyMeter, Platform,
    TransitionModel,
};
use pes_dom::Interaction;

use crate::event::{EventId, WebEvent};
use crate::ledger::FrameLedger;
use crate::pipeline::RenderPipeline;
use crate::qos::{QosOutcome, QosPolicy};
use crate::vsync::{FrameScheduler, VsyncClock};

/// The record of one event execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionRecord {
    /// The executed event.
    pub event: EventId,
    /// The interaction class of the event.
    pub interaction: Interaction,
    /// The configuration the event ran on.
    pub config: AcmpConfig,
    /// When execution started.
    pub started_at: TimeUs,
    /// When the frame became ready.
    pub frame_ready_at: TimeUs,
    /// Pure execution (busy) time.
    pub busy_time: TimeUs,
    /// Whether the execution was speculative (ahead of the triggering input).
    pub speculative: bool,
}

/// The engine.
///
/// # Examples
///
/// ```
/// use pes_acmp::{CpuDemand, Platform};
/// use pes_acmp::units::{CpuCycles, TimeUs};
/// use pes_dom::EventType;
/// use pes_webrt::{EventId, ExecutionEngine, QosPolicy, WebEvent};
///
/// let platform = Platform::exynos_5410();
/// let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
/// let event = WebEvent::new(
///     EventId::new(0),
///     EventType::Click,
///     None,
///     TimeUs::from_millis(10),
///     CpuDemand::new(TimeUs::from_millis(3), CpuCycles::new(50_000_000)),
/// );
/// let record = engine.execute_event(&event, &platform.max_performance_config(), false);
/// let outcome = engine.commit(&event, record.frame_ready_at);
/// assert!(!outcome.violated());
/// ```
#[derive(Debug, Clone)]
pub struct ExecutionEngine<'p> {
    platform: &'p Platform,
    dvfs: DvfsModel<'p>,
    pipeline: RenderPipeline,
    /// Presentation scheduling: predicts each commit's display instant from
    /// the last presentation's feedback instead of re-deriving the VSync
    /// grid per event (the reference arithmetic stays available through
    /// [`FrameScheduler::clock`]).
    frames: FrameScheduler,
    qos: QosPolicy,
    transitions: TransitionModel,
    meter: EnergyMeter<'p>,
    /// Deferred energy samples plus frame/violation counters, flushed into
    /// the meter once per frame commit (see [`FrameLedger`]).
    ledger: FrameLedger,
    /// When set, the engine keeps the pre-ledger behaviour: every sample is
    /// metered the moment it happens and every commit runs the per-event
    /// `div_ceil`. The differential suites replay both engines over the
    /// same inputs and require bit-identical energy and outcomes.
    reference_accounting: bool,
    current_config: AcmpConfig,
    cpu_free_at: TimeUs,
    outcomes: Vec<(EventId, QosOutcome)>,
    records: Vec<ExecutionRecord>,
}

impl<'p> ExecutionEngine<'p> {
    /// Creates an engine parked at the platform's lowest-power configuration
    /// at time zero. Builds a private DVFS ladder; replay fleets should use
    /// [`ExecutionEngine::with_plane`] to share one per platform instead.
    pub fn new(platform: &'p Platform, qos: QosPolicy) -> Self {
        let plane = Arc::new(DvfsLadder::for_platform(platform));
        ExecutionEngine::with_plane(platform, qos, plane)
    }

    /// Creates an engine whose DVFS model *and* energy meter are served by a
    /// shared, already-built power plane (one ladder per platform, built by
    /// the experiment context): replays neither rebuild the 17-rung table
    /// nor re-derive cluster powers per energy sample.
    pub fn with_plane(platform: &'p Platform, qos: QosPolicy, plane: Arc<DvfsLadder>) -> Self {
        ExecutionEngine {
            platform,
            dvfs: DvfsModel::with_ladder(platform, Arc::clone(&plane)),
            pipeline: RenderPipeline::new(),
            frames: FrameScheduler::new(VsyncClock::sixty_hz()),
            qos,
            transitions: TransitionModel::exynos_defaults(),
            meter: EnergyMeter::with_plane(platform, plane),
            ledger: FrameLedger::with_capacity(8),
            reference_accounting: false,
            current_config: platform.min_power_config(),
            cpu_free_at: TimeUs::ZERO,
            // One paper-suite session is ~31 events; seeding the logs
            // avoids the realloc-and-copy ladder every replay paid.
            outcomes: Vec::with_capacity(32),
            records: Vec::with_capacity(32),
        }
    }

    /// Replaces the transition model (ablation: free transitions).
    pub fn with_transitions(mut self, transitions: TransitionModel) -> Self {
        self.transitions = transitions;
        self
    }

    /// Switches the engine to the retained pre-ledger accounting path:
    /// per-event metering and the per-commit `div_ceil` vsync scan. Kept so
    /// the differential suites can pin the ledger/scheduler engine against
    /// the original math bit for bit.
    pub fn with_reference_accounting(mut self) -> Self {
        self.reference_accounting = true;
        self
    }

    /// The platform the engine runs on.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The DVFS model bound to the platform.
    pub fn dvfs(&self) -> &DvfsModel<'p> {
        &self.dvfs
    }

    /// The QoS policy in force.
    pub fn qos(&self) -> &QosPolicy {
        &self.qos
    }

    /// The VSync clock.
    pub fn vsync(&self) -> &VsyncClock {
        self.frames.clock()
    }

    /// Replaces the VSync clock mid-replay (e.g. a refresh-rate change).
    /// The frame scheduler drops its feedback when the grid moves, so
    /// presentation prediction stays exact across the switch.
    pub fn set_vsync(&mut self, clock: VsyncClock) {
        self.frames.set_clock(clock);
    }

    /// The presentation-feedback frame scheduler (telemetry: feedback hits
    /// vs. cold predictions).
    pub fn frame_scheduler(&self) -> &FrameScheduler {
        &self.frames
    }

    /// The per-frame ledger (telemetry: frames committed, pending samples).
    pub fn ledger(&self) -> &FrameLedger {
        &self.ledger
    }

    /// The configuration the hardware is currently set to.
    pub fn current_config(&self) -> AcmpConfig {
        self.current_config
    }

    /// The earliest time the CPU can start new work.
    pub fn cpu_free_at(&self) -> TimeUs {
        self.cpu_free_at
    }

    /// Total processor energy so far. Samples still deferred in the ledger
    /// are folded over the meter snapshot bit-identically to a flush.
    pub fn total_energy(&self) -> EnergyUj {
        if self.ledger.is_empty() {
            self.meter.total()
        } else {
            self.ledger.fold_total(&self.meter)
        }
    }

    /// Energy attributed to a specific activity kind (pending ledger
    /// samples folded in, as in [`ExecutionEngine::total_energy`]).
    pub fn energy_for(&self, activity: ActivityKind) -> EnergyUj {
        if self.ledger.is_empty() {
            self.meter.for_activity(activity)
        } else {
            self.ledger.fold_activity(&self.meter, activity)
        }
    }

    /// The per-event QoS outcomes recorded so far.
    pub fn outcomes(&self) -> &[(EventId, QosOutcome)] {
        &self.outcomes
    }

    /// The per-event execution records so far.
    pub fn records(&self) -> &[ExecutionRecord] {
        &self.records
    }

    /// Execution latency of a demand on a configuration (planning helper).
    pub fn estimate_latency(&self, demand: &CpuDemand, config: &AcmpConfig) -> TimeUs {
        self.dvfs.execution_time(demand, config)
    }

    /// Execution energy of a demand on a configuration (planning helper).
    pub fn estimate_energy(&self, demand: &CpuDemand, config: &AcmpConfig) -> EnergyUj {
        self.dvfs.execution_energy(demand, config)
    }

    /// Accounts idle time at the current configuration up to `until`, moving
    /// the CPU-free horizon forward. No-op when `until` is in the past.
    pub fn idle_until(&mut self, until: TimeUs) {
        if until > self.cpu_free_at {
            let duration = until - self.cpu_free_at;
            if self.reference_accounting {
                self.meter.record_idle(&self.current_config, duration);
            } else {
                self.ledger.push_idle(self.current_config, duration);
            }
            self.cpu_free_at = until;
        }
    }

    /// Switches the hardware to `config`, charging the DVFS/migration
    /// overhead in time and energy.
    pub fn switch_config(&mut self, config: &AcmpConfig) {
        if *config == self.current_config {
            return;
        }
        let cost = self.transitions.cost(&self.current_config, config);
        if !cost.is_zero() {
            if self.reference_accounting {
                self.meter.record_transition(config, cost);
            } else {
                self.ledger.push_transition(*config, cost);
            }
            self.cpu_free_at += cost;
        }
        self.current_config = *config;
    }

    /// Executes one event on `config` as soon as the CPU is free (and not
    /// before the event's arrival unless `speculative` is set). Returns the
    /// execution record; committing the resulting frame (and thereby scoring
    /// QoS) is a separate step so that speculative frames can wait in the
    /// Pending Frame Buffer.
    pub fn execute_event(
        &mut self,
        event: &WebEvent,
        config: &AcmpConfig,
        speculative: bool,
    ) -> ExecutionRecord {
        let earliest = if speculative {
            self.cpu_free_at
        } else {
            self.cpu_free_at.max(event.arrival())
        };
        self.idle_until(earliest);
        self.switch_config(config);
        let start = self.cpu_free_at;
        let (busy, frame_ready_at) = self.pipeline.execute_timing(
            &event.demand(),
            event.event_type().interaction(),
            &self.dvfs,
            config,
            start,
        );
        // Speculative work is attributed as useful for now; it is
        // re-attributed to waste if the frame is later squashed
        // (see `account_squashed_frame`).
        if self.reference_accounting {
            self.meter
                .record_busy(config, busy, ActivityKind::UsefulWork);
        } else {
            self.ledger
                .push_busy(*config, busy, ActivityKind::UsefulWork);
        }
        self.frames.frame_produced();
        self.cpu_free_at = frame_ready_at;
        let record = ExecutionRecord {
            event: event.id(),
            interaction: event.event_type().interaction(),
            config: *config,
            started_at: start,
            frame_ready_at,
            busy_time: busy,
            speculative,
        };
        self.records.push(record);
        record
    }

    /// Commits a frame produced for `event` at `frame_ready_at`: the frame is
    /// displayed at the next VSync no earlier than both the frame readiness
    /// and the event arrival, and the QoS outcome is recorded and returned.
    ///
    /// On the ledger path this is the once-per-frame settlement point: the
    /// deferred energy samples are flushed into the meter and the display
    /// instant comes from the feedback scheduler (bit-identical to the
    /// reference `div_ceil` by the scheduler's invariant).
    pub fn commit(&mut self, event: &WebEvent, frame_ready_at: TimeUs) -> QosOutcome {
        let visible_from = frame_ready_at.max(event.arrival());
        let displayed = if self.reference_accounting {
            self.frames.clock().next_refresh_at_or_after(visible_from)
        } else {
            self.ledger.flush_into(&mut self.meter);
            self.frames.presentation_at(visible_from)
        };
        self.frames.frame_retired();
        let outcome = QosOutcome {
            triggered_at: event.arrival(),
            displayed_at: displayed,
            target: self.qos.target_for_event(event.event_type()),
        };
        self.ledger.note_commit(outcome.violated());
        self.outcomes.push((event.id(), outcome));
        outcome
    }

    /// Re-attributes the energy of a squashed speculative execution from
    /// useful work to speculative waste.
    pub fn account_squashed_frame(&mut self, record: &ExecutionRecord) {
        // Re-attribution clamps against the useful-work bucket, so any
        // deferred samples must land in the meter first.
        self.ledger.flush_into(&mut self.meter);
        self.frames.frame_retired();
        let energy = self
            .dvfs
            .execution_power(&record.config)
            .energy_over(record.busy_time);
        // Move the energy between activity buckets; the total stays the same.
        self.meter.reattribute_waste(record.config.core(), energy);
    }

    /// Fraction of total energy wasted on squashed speculative work.
    pub fn waste_fraction(&self) -> f64 {
        if self.ledger.is_empty() {
            return self.meter.speculative_waste_fraction();
        }
        // Same expression as `EnergyMeter::speculative_waste_fraction`, with
        // the pending ledger samples folded into the denominator. The engine
        // only defers useful-work/idle/transition samples (waste exists only
        // after a squash, which flushes first), so the numerator is always
        // the meter's own bucket.
        let total = self.ledger.fold_total(&self.meter);
        if total.as_microjoules() == 0.0 {
            return 0.0;
        }
        self.meter.for_activity(ActivityKind::SpeculativeWaste) / total
    }

    /// Number of QoS violations recorded so far. Served by the ledger's
    /// commit counter; the reference path keeps the original outcome-log
    /// scan so the differential suites compare both.
    pub fn violations(&self) -> usize {
        if self.reference_accounting {
            self.outcomes.iter().filter(|(_, o)| o.violated()).count()
        } else {
            self.ledger.violations()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;
    use pes_dom::EventType;

    fn event(id: u64, ty: EventType, at_ms: u64, mcycles: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(id),
            ty,
            None,
            TimeUs::from_millis(at_ms),
            CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(mcycles * 1_000_000)),
        )
    }

    #[test]
    fn execution_respects_arrival_for_non_speculative_events() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let ev = event(0, EventType::Click, 100, 50);
        let record = engine.execute_event(&ev, &platform.max_performance_config(), false);
        assert!(record.started_at >= TimeUs::from_millis(100));
        assert!(engine.total_energy().as_millijoules() > 0.0);
        assert_eq!(engine.records().len(), 1);
    }

    #[test]
    fn speculative_execution_can_start_before_arrival() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let ev = event(0, EventType::Click, 500, 50);
        let record = engine.execute_event(&ev, &platform.max_performance_config(), true);
        assert!(record.started_at < ev.arrival());
        // Committing a frame that was ready before the input arrived yields a
        // latency of at most one VSync period.
        let outcome = engine.commit(&ev, record.frame_ready_at);
        assert!(outcome.latency() <= engine.vsync().period());
    }

    #[test]
    fn idle_time_accumulates_idle_energy() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        engine.idle_until(TimeUs::from_millis(500));
        assert_eq!(engine.cpu_free_at(), TimeUs::from_millis(500));
        assert!(engine.total_energy().as_millijoules() > 0.0);
        assert_eq!(engine.violations(), 0);
        // Idle in the past is ignored.
        engine.idle_until(TimeUs::from_millis(100));
        assert_eq!(engine.cpu_free_at(), TimeUs::from_millis(500));
    }

    #[test]
    fn config_switches_cost_time_and_energy() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let before = engine.cpu_free_at();
        engine.switch_config(&platform.max_performance_config());
        assert!(engine.cpu_free_at() > before);
        assert!(engine.energy_for(ActivityKind::Transition).as_microjoules() > 0.0);
        // Switching to the same config is free.
        let t = engine.cpu_free_at();
        engine.switch_config(&platform.max_performance_config());
        assert_eq!(engine.cpu_free_at(), t);
    }

    #[test]
    fn commit_scores_qos_against_the_arrival_time() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        // A heavy move event on the slowest configuration misses 33 ms.
        let ev = event(0, EventType::Scroll, 0, 60);
        let record = engine.execute_event(&ev, &platform.min_power_config(), false);
        let outcome = engine.commit(&ev, record.frame_ready_at);
        assert!(outcome.violated());
        assert_eq!(engine.violations(), 1);
    }

    #[test]
    fn squashed_speculation_is_reattributed_to_waste() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let ev = event(0, EventType::Click, 1_000, 80);
        let record = engine.execute_event(&ev, &platform.max_performance_config(), true);
        assert_eq!(engine.waste_fraction(), 0.0);
        let total_before = engine.total_energy();
        engine.account_squashed_frame(&record);
        assert!(engine.waste_fraction() > 0.0);
        let total_after = engine.total_energy();
        assert!((total_after.as_microjoules() - total_before.as_microjoules()).abs() < 1e-6);
    }

    #[test]
    fn shared_plane_engine_matches_a_fresh_engine_bit_for_bit() {
        let platform = Platform::exynos_5410();
        let plane = Arc::new(DvfsLadder::for_platform(&platform));
        let mut fresh = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let mut shared =
            ExecutionEngine::with_plane(&platform, QosPolicy::paper_defaults(), Arc::clone(&plane));
        assert!(Arc::ptr_eq(shared.dvfs().shared_ladder(), &plane));
        for (i, (ty, at_ms, mcycles)) in [
            (EventType::Load, 0u64, 1_500u64),
            (EventType::Click, 900, 120),
            (EventType::Scroll, 1_000, 40),
        ]
        .into_iter()
        .enumerate()
        {
            let ev = event(i as u64, ty, at_ms, mcycles);
            let cfg = if i % 2 == 0 {
                platform.max_performance_config()
            } else {
                platform.min_power_config()
            };
            let a = fresh.execute_event(&ev, &cfg, false);
            let b = shared.execute_event(&ev, &cfg, false);
            assert_eq!(a, b);
            fresh.commit(&ev, a.frame_ready_at);
            shared.commit(&ev, b.frame_ready_at);
        }
        assert_eq!(
            fresh.total_energy().as_microjoules().to_bits(),
            shared.total_energy().as_microjoules().to_bits(),
            "shared-plane accounting must be bit-identical"
        );
    }

    #[test]
    fn back_to_back_events_queue_on_the_single_main_thread() {
        let platform = Platform::exynos_5410();
        let mut engine = ExecutionEngine::new(&platform, QosPolicy::paper_defaults());
        let first = event(0, EventType::Load, 0, 2_000);
        let second = event(1, EventType::Click, 10, 100);
        let r1 = engine.execute_event(&first, &platform.max_performance_config(), false);
        let r2 = engine.execute_event(&second, &platform.max_performance_config(), false);
        assert!(
            r2.started_at >= r1.frame_ready_at,
            "second event waits for the first"
        );
    }
}
