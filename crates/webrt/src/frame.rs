//! Frames: the output of one event's rendering pipeline.
//!
//! Under PES a frame can be *speculative* — produced ahead of its triggering
//! input and parked in the Pending Frame Buffer until the input arrives and
//! either commits or squashes it (Sec. 5.1, Sec. 5.4).

use pes_acmp::units::TimeUs;

use crate::event::EventId;

/// Feedback from the last committed presentation, in the style of a Wayland
/// `presented` event: the instant the frame was shown and the refresh
/// interval the display reported at that moment.
///
/// The [`FrameScheduler`](crate::FrameScheduler) predicts the next
/// presentation from this feedback instead of re-deriving the VSync grid
/// from absolute time on every commit. Both fields are integer microseconds
/// — the scheduler never consults a wall clock, so replays stay
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PresentationFeedback {
    /// When the last frame was actually shown (a VSync instant).
    pub presented_at: TimeUs,
    /// The refresh interval the display reported with that presentation.
    pub refresh: TimeUs,
}

/// The lifecycle state of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameState {
    /// The frame is ready but waiting for its (predicted) input to arrive.
    Pending,
    /// The frame was committed to the display at the contained time.
    Committed(TimeUs),
    /// The frame was squashed (its predicted event never happened).
    Squashed(TimeUs),
}

/// A rendered frame.
///
/// # Examples
///
/// ```
/// use pes_webrt::{EventId, Frame};
/// use pes_acmp::units::TimeUs;
///
/// let mut frame = Frame::speculative(EventId::new(4), TimeUs::from_millis(120));
/// assert!(frame.is_pending());
/// frame.commit(TimeUs::from_millis(150));
/// assert!(frame.is_committed());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    event: EventId,
    ready_at: TimeUs,
    speculative: bool,
    state: FrameState,
}

impl Frame {
    /// A frame produced for an event that had already been triggered.
    pub fn committed_work(event: EventId, ready_at: TimeUs) -> Self {
        Frame {
            event,
            ready_at,
            speculative: false,
            state: FrameState::Pending,
        }
    }

    /// A frame produced speculatively for a predicted event.
    pub fn speculative(event: EventId, ready_at: TimeUs) -> Self {
        Frame {
            event,
            ready_at,
            speculative: true,
            state: FrameState::Pending,
        }
    }

    /// The event this frame answers.
    pub fn event(&self) -> EventId {
        self.event
    }

    /// When the rendering pipeline finished producing the frame.
    pub fn ready_at(&self) -> TimeUs {
        self.ready_at
    }

    /// Whether the frame was produced speculatively.
    pub fn is_speculative(&self) -> bool {
        self.speculative
    }

    /// Whether the frame is still waiting in the Pending Frame Buffer.
    pub fn is_pending(&self) -> bool {
        matches!(self.state, FrameState::Pending)
    }

    /// Whether the frame was committed to the display.
    pub fn is_committed(&self) -> bool {
        matches!(self.state, FrameState::Committed(_))
    }

    /// Whether the frame was squashed.
    pub fn is_squashed(&self) -> bool {
        matches!(self.state, FrameState::Squashed(_))
    }

    /// The frame's lifecycle state.
    pub fn state(&self) -> FrameState {
        self.state
    }

    /// Commits the frame to the display at time `at`.
    pub fn commit(&mut self, at: TimeUs) {
        self.state = FrameState::Committed(at);
    }

    /// Squashes the frame at time `at`.
    pub fn squash(&mut self, at: TimeUs) {
        self.state = FrameState::Squashed(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_transitions() {
        let mut f = Frame::speculative(EventId::new(1), TimeUs::from_millis(10));
        assert!(f.is_pending());
        assert!(f.is_speculative());
        assert!(!f.is_committed());
        f.commit(TimeUs::from_millis(20));
        assert!(f.is_committed());
        assert_eq!(f.state(), FrameState::Committed(TimeUs::from_millis(20)));

        let mut g = Frame::committed_work(EventId::new(2), TimeUs::from_millis(5));
        assert!(!g.is_speculative());
        g.squash(TimeUs::from_millis(6));
        assert!(g.is_squashed());
    }

    #[test]
    fn accessors() {
        let f = Frame::speculative(EventId::new(9), TimeUs::from_millis(33));
        assert_eq!(f.event(), EventId::new(9));
        assert_eq!(f.ready_at(), TimeUs::from_millis(33));
    }
}
