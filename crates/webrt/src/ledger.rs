//! The per-frame accounting ledger.
//!
//! The pre-PR-10 engine pushed every energy sample (busy, idle, transition)
//! into the [`EnergyMeter`] the moment it happened — two to four meter
//! updates per event, which profiling pinned as the largest slice of the
//! per-replay engine floor. The [`FrameLedger`] defers those samples: the
//! engine appends compact energy samples while it executes, and the
//! whole batch is flushed into the meter once per *frame commit* instead of
//! once per event.
//!
//! # Bit-identity discipline
//!
//! Energy totals are `f64` sums, so addition order is part of the observable
//! result. The ledger therefore never pre-aggregates: flushing replays the
//! samples **in arrival order** through the exact same
//! [`EnergyMeter::record_busy`] / [`record_idle`](EnergyMeter::record_idle) /
//! [`record_transition`](EnergyMeter::record_transition) calls the eager
//! engine made, so every meter total is bit-identical to the reference
//! path. Queries that land *between* flushes
//! ([`FrameLedger::fold_total`] / [`FrameLedger::fold_activity`]) fold the
//! pending samples over the meter snapshot with the meter's own `peek_*`
//! previews — the same expressions `record_*` evaluates, applied in the
//! same order — so a mid-replay reading is indistinguishable from having
//! flushed first.

use pes_acmp::units::{EnergyUj, TimeUs};
use pes_acmp::{AcmpConfig, ActivityKind, EnergyMeter};

/// What a deferred sample will be metered as when it is flushed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SampleKind {
    /// A busy interval attributed to `ActivityKind` (useful work now,
    /// possibly re-attributed to waste after a squash).
    Busy(ActivityKind),
    /// An idle interval at the parked configuration.
    Idle,
    /// A DVFS/migration transition charged at the destination config.
    Transition,
}

/// One deferred energy sample: the exact arguments of the `record_*` call
/// the engine would have made eagerly.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EnergySample {
    config: AcmpConfig,
    duration: TimeUs,
    kind: SampleKind,
}

/// A per-replay ledger of deferred energy samples plus the frame-commit
/// counters (frames committed, QoS violations) that the engine previously
/// recomputed by scanning its outcome log.
///
/// # Examples
///
/// ```
/// use pes_acmp::{ActivityKind, EnergyMeter, Platform};
/// use pes_acmp::units::TimeUs;
/// use pes_webrt::FrameLedger;
///
/// let platform = Platform::exynos_5410();
/// let mut meter = EnergyMeter::new(&platform);
/// let mut ledger = FrameLedger::new();
/// let cfg = platform.max_performance_config();
///
/// ledger.push_busy(cfg, TimeUs::from_millis(4), ActivityKind::UsefulWork);
/// // Queries before the flush fold the pending samples over the meter.
/// let preview = ledger.fold_total(&meter);
/// ledger.flush_into(&mut meter);
/// assert_eq!(meter.total().as_microjoules().to_bits(),
///            preview.as_microjoules().to_bits());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameLedger {
    samples: Vec<EnergySample>,
    frames_committed: u64,
    violations: usize,
}

impl FrameLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        FrameLedger::default()
    }

    /// An empty ledger with room for `samples` deferred samples before the
    /// first reallocation (the engine seeds a frame's worth up front).
    pub fn with_capacity(samples: usize) -> Self {
        FrameLedger {
            samples: Vec::with_capacity(samples),
            ..FrameLedger::default()
        }
    }

    /// Whether any samples are pending a flush.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Number of samples pending a flush.
    pub fn pending_samples(&self) -> usize {
        self.samples.len()
    }

    /// Frames committed through this ledger so far.
    pub fn frames_committed(&self) -> u64 {
        self.frames_committed
    }

    /// QoS violations observed at commit time so far.
    pub fn violations(&self) -> usize {
        self.violations
    }

    /// Defers a busy interval at `config` attributed to `activity`.
    /// Zero-duration samples are dropped, exactly as the meter drops them.
    #[inline]
    pub fn push_busy(&mut self, config: AcmpConfig, duration: TimeUs, activity: ActivityKind) {
        if duration.is_zero() {
            return;
        }
        self.samples.push(EnergySample {
            config,
            duration,
            kind: SampleKind::Busy(activity),
        });
    }

    /// Defers an idle interval at the parked `config`.
    #[inline]
    pub fn push_idle(&mut self, config: AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        self.samples.push(EnergySample {
            config,
            duration,
            kind: SampleKind::Idle,
        });
    }

    /// Defers a transition charged at the destination `config`.
    #[inline]
    pub fn push_transition(&mut self, config: AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        self.samples.push(EnergySample {
            config,
            duration,
            kind: SampleKind::Transition,
        });
    }

    /// Records one frame commit and whether it violated its QoS target.
    pub fn note_commit(&mut self, violated: bool) {
        self.frames_committed += 1;
        if violated {
            self.violations += 1;
        }
    }

    /// Flushes every pending sample into `meter`, in arrival order, through
    /// the same `record_*` calls an eager engine would have made. After
    /// this, the meter is bit-identical to one that never deferred.
    pub fn flush_into(&mut self, meter: &mut EnergyMeter<'_>) {
        // Borrow-iterate-then-clear instead of `drain`: the samples are
        // `Copy` and the loop is the replay's per-commit hot path.
        for sample in &self.samples {
            match sample.kind {
                SampleKind::Busy(activity) => {
                    meter.record_busy(&sample.config, sample.duration, activity);
                }
                SampleKind::Idle => meter.record_idle(&sample.config, sample.duration),
                SampleKind::Transition => {
                    meter.record_transition(&sample.config, sample.duration);
                }
            }
        }
        self.samples.clear();
    }

    /// The meter total *as if* the pending samples had been flushed: folds
    /// each sample's `(own, background)` energies over the meter snapshot
    /// in the same order `flush_into` would add them. Bit-identical to
    /// flushing and reading [`EnergyMeter::total`].
    pub fn fold_total(&self, meter: &EnergyMeter<'_>) -> EnergyUj {
        let mut total = meter.total();
        for sample in &self.samples {
            match sample.kind {
                SampleKind::Busy(_) => {
                    let (own, background) = meter.peek_busy(&sample.config, sample.duration);
                    total += own;
                    total += background;
                }
                SampleKind::Idle => {
                    let (own, background) = meter.peek_idle(&sample.config, sample.duration);
                    total += own;
                    total += background;
                }
                SampleKind::Transition => {
                    total += meter.peek_transition(&sample.config, sample.duration);
                }
            }
        }
        total
    }

    /// The per-activity total *as if* the pending samples had been flushed
    /// (see [`FrameLedger::fold_total`]). A busy sample charges both its own
    /// and its background energy to its activity; idle and transition
    /// samples charge [`ActivityKind::Idle`] and [`ActivityKind::Transition`]
    /// respectively — mirroring the meter's attribution exactly.
    pub fn fold_activity(&self, meter: &EnergyMeter<'_>, activity: ActivityKind) -> EnergyUj {
        let mut total = meter.for_activity(activity);
        for sample in &self.samples {
            match sample.kind {
                SampleKind::Busy(kind) if kind == activity => {
                    let (own, background) = meter.peek_busy(&sample.config, sample.duration);
                    total += own;
                    total += background;
                }
                SampleKind::Idle if activity == ActivityKind::Idle => {
                    let (own, background) = meter.peek_idle(&sample.config, sample.duration);
                    total += own;
                    total += background;
                }
                SampleKind::Transition if activity == ActivityKind::Transition => {
                    total += meter.peek_transition(&sample.config, sample.duration);
                }
                _ => {}
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::Platform;

    #[test]
    fn deferred_flush_is_bit_identical_to_eager_recording() {
        let p = Platform::exynos_5410();
        let big = p.max_performance_config();
        let little = p.min_power_config();

        let mut eager = EnergyMeter::new(&p);
        eager.record_idle(&little, TimeUs::from_millis(3));
        eager.record_transition(&big, TimeUs::from_micros(700));
        eager.record_busy(&big, TimeUs::from_millis(5), ActivityKind::UsefulWork);
        eager.record_busy(&big, TimeUs::from_millis(1), ActivityKind::SpeculativeWaste);

        let mut deferred = EnergyMeter::new(&p);
        let mut ledger = FrameLedger::new();
        ledger.push_idle(little, TimeUs::from_millis(3));
        ledger.push_transition(big, TimeUs::from_micros(700));
        ledger.push_busy(big, TimeUs::from_millis(5), ActivityKind::UsefulWork);
        ledger.push_busy(big, TimeUs::from_millis(1), ActivityKind::SpeculativeWaste);
        assert_eq!(ledger.pending_samples(), 4);
        ledger.flush_into(&mut deferred);
        assert!(ledger.is_empty());

        assert_eq!(
            eager.total().as_microjoules().to_bits(),
            deferred.total().as_microjoules().to_bits()
        );
        for kind in ActivityKind::ALL {
            assert_eq!(
                eager.for_activity(kind).as_microjoules().to_bits(),
                deferred.for_activity(kind).as_microjoules().to_bits(),
                "activity {kind:?} drifted"
            );
        }
    }

    #[test]
    fn folds_preview_exactly_what_a_flush_would_produce() {
        let p = Platform::exynos_5410();
        let big = p.max_performance_config();
        let mut meter = EnergyMeter::new(&p);
        // Seed the meter so the fold starts from a non-zero snapshot.
        meter.record_busy(&big, TimeUs::from_millis(2), ActivityKind::UsefulWork);

        let mut ledger = FrameLedger::new();
        ledger.push_idle(p.min_power_config(), TimeUs::from_millis(4));
        ledger.push_busy(big, TimeUs::from_millis(7), ActivityKind::UsefulWork);
        ledger.push_transition(big, TimeUs::from_micros(300));

        let folded_total = ledger.fold_total(&meter);
        let folded_useful = ledger.fold_activity(&meter, ActivityKind::UsefulWork);
        let folded_idle = ledger.fold_activity(&meter, ActivityKind::Idle);
        let folded_transition = ledger.fold_activity(&meter, ActivityKind::Transition);

        ledger.flush_into(&mut meter);
        assert_eq!(
            meter.total().as_microjoules().to_bits(),
            folded_total.as_microjoules().to_bits()
        );
        assert_eq!(
            meter
                .for_activity(ActivityKind::UsefulWork)
                .as_microjoules()
                .to_bits(),
            folded_useful.as_microjoules().to_bits()
        );
        assert_eq!(
            meter
                .for_activity(ActivityKind::Idle)
                .as_microjoules()
                .to_bits(),
            folded_idle.as_microjoules().to_bits()
        );
        assert_eq!(
            meter
                .for_activity(ActivityKind::Transition)
                .as_microjoules()
                .to_bits(),
            folded_transition.as_microjoules().to_bits()
        );
    }

    #[test]
    fn zero_duration_samples_never_enter_the_ledger() {
        let mut ledger = FrameLedger::new();
        let p = Platform::exynos_5410();
        ledger.push_busy(
            p.max_performance_config(),
            TimeUs::ZERO,
            ActivityKind::UsefulWork,
        );
        ledger.push_idle(p.max_performance_config(), TimeUs::ZERO);
        ledger.push_transition(p.max_performance_config(), TimeUs::ZERO);
        assert!(ledger.is_empty());
    }

    #[test]
    fn commit_counters_track_frames_and_violations() {
        let mut ledger = FrameLedger::new();
        ledger.note_commit(false);
        ledger.note_commit(true);
        ledger.note_commit(true);
        assert_eq!(ledger.frames_committed(), 3);
        assert_eq!(ledger.violations(), 2);
    }
}
