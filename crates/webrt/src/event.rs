//! Web application events: the unit of scheduling in the paper.
//!
//! A user interaction is translated into a DOM event whose callback plus
//! rendering work forms one schedulable unit with a compute demand and a QoS
//! deadline (Sec. 2, Fig. 1).

use std::fmt;

use pes_acmp::units::TimeUs;
use pes_acmp::CpuDemand;
use pes_dom::{EventType, NodeId};

/// A monotonically increasing event identifier, unique within one trace.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

impl EventId {
    /// Creates an event id from a raw value.
    pub const fn new(raw: u64) -> Self {
        EventId(raw)
    }

    /// The raw value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The id following this one.
    pub fn next(self) -> EventId {
        EventId(self.0 + 1)
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "E{}", self.0)
    }
}

/// One application event: the triggering interaction, its DOM target, when
/// the user generated it, and the compute demand of its callback plus
/// rendering pipeline.
///
/// # Examples
///
/// ```
/// use pes_webrt::{EventId, WebEvent};
/// use pes_acmp::CpuDemand;
/// use pes_acmp::units::{CpuCycles, TimeUs};
/// use pes_dom::EventType;
///
/// let ev = WebEvent::new(
///     EventId::new(0),
///     EventType::Click,
///     None,
///     TimeUs::from_millis(100),
///     CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(60_000_000)),
/// );
/// assert!(ev.event_type().is_tap());
/// assert_eq!(ev.arrival(), TimeUs::from_millis(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebEvent {
    id: EventId,
    event_type: EventType,
    target: Option<NodeId>,
    arrival: TimeUs,
    demand: CpuDemand,
}

impl WebEvent {
    /// Creates an event.
    pub fn new(
        id: EventId,
        event_type: EventType,
        target: Option<NodeId>,
        arrival: TimeUs,
        demand: CpuDemand,
    ) -> Self {
        WebEvent {
            id,
            event_type,
            target,
            arrival,
            demand,
        }
    }

    /// The event identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The DOM event type.
    pub fn event_type(&self) -> EventType {
        self.event_type
    }

    /// The DOM node the event targets (`None` for document-level events).
    pub fn target(&self) -> Option<NodeId> {
        self.target
    }

    /// When the user generated the interaction.
    pub fn arrival(&self) -> TimeUs {
        self.arrival
    }

    /// The compute demand of the callback plus rendering pipeline.
    pub fn demand(&self) -> CpuDemand {
        self.demand
    }

    /// Returns a copy of the event with a different arrival time (used when
    /// replaying a recorded trace from a different origin).
    pub fn with_arrival(&self, arrival: TimeUs) -> WebEvent {
        WebEvent { arrival, ..*self }
    }

    /// Returns a copy of the event with a different demand (used by
    /// schedulers that refine their workload estimates online).
    pub fn with_demand(&self, demand: CpuDemand) -> WebEvent {
        WebEvent { demand, ..*self }
    }
}

impl fmt::Display for WebEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} @ {}", self.id, self.event_type, self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;

    fn sample_event() -> WebEvent {
        WebEvent::new(
            EventId::new(3),
            EventType::Scroll,
            None,
            TimeUs::from_millis(250),
            CpuDemand::new(TimeUs::from_millis(2), CpuCycles::new(10_000_000)),
        )
    }

    #[test]
    fn event_id_ordering_and_next() {
        assert!(EventId::new(1) < EventId::new(2));
        assert_eq!(EventId::new(1).next(), EventId::new(2));
        assert_eq!(EventId::new(7).get(), 7);
        assert_eq!(EventId::new(7).to_string(), "E7");
    }

    #[test]
    fn accessors_round_trip() {
        let ev = sample_event();
        assert_eq!(ev.id(), EventId::new(3));
        assert_eq!(ev.event_type(), EventType::Scroll);
        assert_eq!(ev.target(), None);
        assert_eq!(ev.arrival(), TimeUs::from_millis(250));
        assert_eq!(ev.demand().t_mem(), TimeUs::from_millis(2));
    }

    #[test]
    fn with_arrival_and_with_demand_replace_only_that_field() {
        let ev = sample_event();
        let moved = ev.with_arrival(TimeUs::from_millis(400));
        assert_eq!(moved.arrival(), TimeUs::from_millis(400));
        assert_eq!(moved.id(), ev.id());
        let heavier = ev.with_demand(CpuDemand::new(TimeUs::ZERO, CpuCycles::new(1)));
        assert_eq!(heavier.demand().ref_cycles().get(), 1);
        assert_eq!(heavier.arrival(), ev.arrival());
    }

    #[test]
    fn display_is_readable() {
        let ev = sample_event();
        let s = ev.to_string();
        assert!(s.contains("E3"));
        assert!(s.contains("onscroll"));
    }
}
