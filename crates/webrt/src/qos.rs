//! QoS targets (deadlines) per interaction primitive.
//!
//! Sec. 4.2 of the paper uses 3 s for *load*, 300 ms for *tap* and 33 ms for
//! *move* as the maximally tolerable delays; exceeding the target counts as a
//! QoS violation (Sec. 6.1).

use pes_acmp::units::TimeUs;
use pes_dom::{EventType, Interaction};

/// The per-interaction QoS targets used to derive event deadlines.
///
/// # Examples
///
/// ```
/// use pes_webrt::QosPolicy;
/// use pes_dom::{EventType, Interaction};
///
/// let policy = QosPolicy::paper_defaults();
/// assert_eq!(policy.target(Interaction::Tap).as_millis_f64(), 300.0);
/// assert_eq!(policy.target_for_event(EventType::Scroll).as_millis_f64(), 33.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosPolicy {
    load: TimeUs,
    tap: TimeUs,
    mv: TimeUs,
    submit: TimeUs,
}

impl QosPolicy {
    /// The targets used throughout the paper: 3 s / 300 ms / 33 ms for
    /// load / tap / move. Form submission behaves like a tap followed by a
    /// navigation; the paper's example treats it as a regular interactive
    /// event, so it inherits the tap target.
    pub fn paper_defaults() -> Self {
        QosPolicy {
            load: TimeUs::from_secs(3),
            tap: TimeUs::from_millis(300),
            mv: TimeUs::from_millis(33),
            submit: TimeUs::from_millis(300),
        }
    }

    /// Creates a policy with explicit targets.
    pub fn new(load: TimeUs, tap: TimeUs, mv: TimeUs, submit: TimeUs) -> Self {
        QosPolicy {
            load,
            tap,
            mv,
            submit,
        }
    }

    /// The QoS target for an interaction primitive.
    pub fn target(&self, interaction: Interaction) -> TimeUs {
        match interaction {
            Interaction::Load => self.load,
            Interaction::Tap => self.tap,
            Interaction::Move => self.mv,
            Interaction::Submit => self.submit,
        }
    }

    /// The QoS target for a concrete DOM event type.
    pub fn target_for_event(&self, event: EventType) -> TimeUs {
        self.target(event.interaction())
    }

    /// Returns a policy with every target scaled by `factor` (used in
    /// sensitivity studies).
    pub fn scaled(&self, factor: f64) -> QosPolicy {
        QosPolicy {
            load: self.load.scale(factor),
            tap: self.tap.scale(factor),
            mv: self.mv.scale(factor),
            submit: self.submit.scale(factor),
        }
    }
}

impl Default for QosPolicy {
    fn default() -> Self {
        QosPolicy::paper_defaults()
    }
}

/// The outcome of one event execution with respect to its QoS target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QosOutcome {
    /// When the user triggered the interaction.
    pub triggered_at: TimeUs,
    /// When the resulting frame was displayed (aligned to a VSync).
    pub displayed_at: TimeUs,
    /// The event's QoS target.
    pub target: TimeUs,
}

impl QosOutcome {
    /// The user-perceived event latency (Fig. 1): display time minus trigger
    /// time. Zero when the frame was displayed before the trigger (possible
    /// only for perfectly speculated events).
    pub fn latency(&self) -> TimeUs {
        self.displayed_at.saturating_sub(self.triggered_at)
    }

    /// Whether the event violated its QoS target.
    pub fn violated(&self) -> bool {
        self.latency() > self.target
    }

    /// The remaining slack (target minus latency), or zero when violated.
    pub fn slack(&self) -> TimeUs {
        self.target.saturating_sub(self.latency())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4_2() {
        let p = QosPolicy::paper_defaults();
        assert_eq!(p.target(Interaction::Load), TimeUs::from_secs(3));
        assert_eq!(p.target(Interaction::Tap), TimeUs::from_millis(300));
        assert_eq!(p.target(Interaction::Move), TimeUs::from_millis(33));
        assert_eq!(p, QosPolicy::default());
    }

    #[test]
    fn event_types_inherit_their_interaction_target() {
        let p = QosPolicy::paper_defaults();
        assert_eq!(
            p.target_for_event(EventType::Click),
            p.target(Interaction::Tap)
        );
        assert_eq!(
            p.target_for_event(EventType::TouchMove),
            p.target(Interaction::Move)
        );
        assert_eq!(
            p.target_for_event(EventType::Load),
            p.target(Interaction::Load)
        );
        assert_eq!(
            p.target_for_event(EventType::Navigate),
            p.target(Interaction::Load)
        );
    }

    #[test]
    fn scaled_policy_scales_every_target() {
        let p = QosPolicy::paper_defaults().scaled(0.5);
        assert_eq!(p.target(Interaction::Load), TimeUs::from_millis(1_500));
        assert_eq!(p.target(Interaction::Tap), TimeUs::from_millis(150));
    }

    #[test]
    fn outcome_latency_violation_and_slack() {
        let ok = QosOutcome {
            triggered_at: TimeUs::from_millis(100),
            displayed_at: TimeUs::from_millis(350),
            target: TimeUs::from_millis(300),
        };
        assert_eq!(ok.latency(), TimeUs::from_millis(250));
        assert!(!ok.violated());
        assert_eq!(ok.slack(), TimeUs::from_millis(50));

        let violated = QosOutcome {
            triggered_at: TimeUs::from_millis(100),
            displayed_at: TimeUs::from_millis(500),
            target: TimeUs::from_millis(300),
        };
        assert!(violated.violated());
        assert_eq!(violated.slack(), TimeUs::ZERO);
    }

    #[test]
    fn speculated_frames_can_have_zero_latency() {
        let o = QosOutcome {
            triggered_at: TimeUs::from_millis(200),
            displayed_at: TimeUs::from_millis(150),
            target: TimeUs::from_millis(33),
        };
        assert_eq!(o.latency(), TimeUs::ZERO);
        assert!(!o.violated());
    }
}
