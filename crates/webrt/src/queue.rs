//! The outstanding-event queue of the Web runtime.
//!
//! Events that the user has generated but that have not been executed yet
//! wait here (the "outstanding events" of Fig. 4). The paper observes that
//! the average queue length stays below 2 because humans generate
//! interactions slowly (Sec. 4.2); the queue tracks the statistics needed to
//! check that property in the reproduction.

use std::collections::VecDeque;

use pes_acmp::units::TimeUs;

use crate::event::WebEvent;

/// FIFO queue of outstanding (triggered but not yet executed) events.
///
/// # Examples
///
/// ```
/// use pes_webrt::{EventId, EventQueue, WebEvent};
/// use pes_acmp::CpuDemand;
/// use pes_acmp::units::TimeUs;
/// use pes_dom::EventType;
///
/// let mut q = EventQueue::new();
/// q.push(WebEvent::new(EventId::new(0), EventType::Click, None, TimeUs::ZERO, CpuDemand::ZERO));
/// assert_eq!(q.len(), 1);
/// let ev = q.pop().unwrap();
/// assert_eq!(ev.id(), EventId::new(0));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    queue: VecDeque<WebEvent>,
    length_samples: Vec<usize>,
    max_observed: usize,
}

impl EventQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Number of outstanding events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether no event is outstanding.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Enqueues a newly triggered event and samples the queue length.
    pub fn push(&mut self, event: WebEvent) {
        self.queue.push_back(event);
        self.length_samples.push(self.queue.len());
        self.max_observed = self.max_observed.max(self.queue.len());
    }

    /// Dequeues the oldest outstanding event.
    pub fn pop(&mut self) -> Option<WebEvent> {
        self.queue.pop_front()
    }

    /// A view of the oldest outstanding event without removing it.
    pub fn peek(&self) -> Option<&WebEvent> {
        self.queue.front()
    }

    /// All outstanding events in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &WebEvent> + '_ {
        self.queue.iter()
    }

    /// All events that arrived at or before `now`, removed from the queue.
    pub fn drain_arrived(&mut self, now: TimeUs) -> Vec<WebEvent> {
        let mut out = Vec::new();
        while let Some(ev) = self.queue.pop_front() {
            if ev.arrival() <= now {
                out.push(ev);
            } else {
                self.queue.push_front(ev);
                break;
            }
        }
        out
    }

    /// Average queue length observed at enqueue time (the statistic the paper
    /// reports as "below 2").
    pub fn average_length(&self) -> f64 {
        if self.length_samples.is_empty() {
            return 0.0;
        }
        self.length_samples.iter().sum::<usize>() as f64 / self.length_samples.len() as f64
    }

    /// Maximum queue length ever observed.
    pub fn max_length(&self) -> usize {
        self.max_observed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use pes_acmp::CpuDemand;
    use pes_dom::EventType;

    fn ev(id: u64, at_ms: u64) -> WebEvent {
        WebEvent::new(
            EventId::new(id),
            EventType::Click,
            None,
            TimeUs::from_millis(at_ms),
            CpuDemand::ZERO,
        )
    }

    #[test]
    fn fifo_ordering() {
        let mut q = EventQueue::new();
        q.push(ev(0, 0));
        q.push(ev(1, 10));
        q.push(ev(2, 20));
        assert_eq!(q.pop().unwrap().id(), EventId::new(0));
        assert_eq!(q.peek().unwrap().id(), EventId::new(1));
        assert_eq!(q.pop().unwrap().id(), EventId::new(1));
        assert_eq!(q.pop().unwrap().id(), EventId::new(2));
        assert!(q.pop().is_none());
    }

    #[test]
    fn drain_arrived_respects_arrival_times() {
        let mut q = EventQueue::new();
        q.push(ev(0, 5));
        q.push(ev(1, 15));
        q.push(ev(2, 25));
        let arrived = q.drain_arrived(TimeUs::from_millis(15));
        assert_eq!(arrived.len(), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek().unwrap().id(), EventId::new(2));
    }

    #[test]
    fn statistics_track_queue_pressure() {
        let mut q = EventQueue::new();
        assert_eq!(q.average_length(), 0.0);
        q.push(ev(0, 0));
        q.push(ev(1, 1));
        q.pop();
        q.push(ev(2, 2));
        // Samples at push time: 1, 2, 2.
        assert!((q.average_length() - 5.0 / 3.0).abs() < 1e-9);
        assert_eq!(q.max_length(), 2);
    }

    #[test]
    fn iter_is_in_arrival_order() {
        let mut q = EventQueue::new();
        q.push(ev(3, 0));
        q.push(ev(4, 1));
        let ids: Vec<u64> = q.iter().map(|e| e.id().get()).collect();
        assert_eq!(ids, vec![3, 4]);
    }
}
