//! # pes-webrt — the event-driven mobile Web runtime model
//!
//! This crate models the part of the Chromium Web runtime that PES interacts
//! with (Feng & Zhu, ISCA 2019, Sec. 2): user interactions become DOM events
//! ([`WebEvent`]) with per-interaction QoS targets ([`QosPolicy`]); each
//! event's callback plus rendering work flows through the five-stage
//! rendering pipeline ([`RenderPipeline`]) on a single ACMP configuration;
//! the resulting [`Frame`] is displayed at the next 60 Hz VSync
//! ([`VsyncClock`]); and events that have been triggered but not yet executed
//! wait in the outstanding [`EventQueue`].
//!
//! # Examples
//!
//! ```
//! use pes_acmp::{CpuDemand, DvfsModel, Platform};
//! use pes_acmp::units::{CpuCycles, TimeUs};
//! use pes_dom::EventType;
//! use pes_webrt::{EventId, QosOutcome, QosPolicy, RenderPipeline, VsyncClock, WebEvent};
//!
//! let platform = Platform::exynos_5410();
//! let model = DvfsModel::new(&platform);
//! let qos = QosPolicy::paper_defaults();
//! let vsync = VsyncClock::sixty_hz();
//!
//! let event = WebEvent::new(
//!     EventId::new(0),
//!     EventType::Click,
//!     None,
//!     TimeUs::from_millis(100),
//!     CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(80_000_000)),
//! );
//!
//! // Execute the event on the fastest configuration as soon as it arrives.
//! let exec = RenderPipeline::new().execute(
//!     &event.demand(),
//!     event.event_type().interaction(),
//!     &model,
//!     &platform.max_performance_config(),
//!     event.arrival(),
//! );
//! let outcome = QosOutcome {
//!     triggered_at: event.arrival(),
//!     displayed_at: vsync.next_refresh_at_or_after(exec.frame_ready_at),
//!     target: qos.target_for_event(event.event_type()),
//! };
//! assert!(!outcome.violated());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-freedom: the fault-injection chaos tier replays arbitrary fault
// schedules through this crate, so a stray `unwrap`/`expect` on the replay
// path is a fleet abort. Surviving sites carry a documented `#[allow]`
// restating the construction-time invariant they rely on.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod executor;
pub mod frame;
pub mod ledger;
pub mod pipeline;
pub mod qos;
pub mod queue;
pub mod vsync;

pub use event::{EventId, WebEvent};
pub use executor::{ExecutionEngine, ExecutionRecord};
pub use frame::{Frame, FrameState, PresentationFeedback};
pub use ledger::FrameLedger;
pub use pipeline::{PipelineExecution, RenderPipeline, RenderStage, StageProfile, StageTiming};
pub use qos::{QosOutcome, QosPolicy};
pub use queue::EventQueue;
pub use vsync::{FrameScheduler, VsyncClock};

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::{CpuCycles, TimeUs};
    use pes_acmp::{CpuDemand, DvfsModel, Platform};
    use pes_dom::EventType;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WebEvent>();
        assert_send_sync::<Frame>();
        assert_send_sync::<QosPolicy>();
        assert_send_sync::<EventQueue>();
        assert_send_sync::<VsyncClock>();
    }

    #[test]
    fn event_latency_includes_the_vsync_wait() {
        // Reproduce the Fig. 1 shape: latency = execution + idle wait until
        // the next display refresh.
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let vsync = VsyncClock::sixty_hz();
        let event = WebEvent::new(
            EventId::new(0),
            EventType::Click,
            None,
            TimeUs::from_millis(3),
            CpuDemand::new(TimeUs::from_millis(2), CpuCycles::new(20_000_000)),
        );
        let exec = RenderPipeline::new().execute(
            &event.demand(),
            event.event_type().interaction(),
            &model,
            &platform.max_performance_config(),
            event.arrival(),
        );
        let displayed = vsync.next_refresh_at_or_after(exec.frame_ready_at);
        assert!(displayed >= exec.frame_ready_at);
        let outcome = QosOutcome {
            triggered_at: event.arrival(),
            displayed_at: displayed,
            target: QosPolicy::paper_defaults().target_for_event(event.event_type()),
        };
        assert!(outcome.latency() >= exec.frame_ready_at - event.arrival());
        assert!(!outcome.violated());
    }

    #[test]
    fn a_heavy_move_event_violates_its_tight_deadline_on_the_little_core() {
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let vsync = VsyncClock::sixty_hz();
        let qos = QosPolicy::paper_defaults();
        let demand = CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(60_000_000));
        let exec = RenderPipeline::new().execute(
            &demand,
            EventType::Scroll.interaction(),
            &model,
            &platform.min_power_config(),
            TimeUs::ZERO,
        );
        let outcome = QosOutcome {
            triggered_at: TimeUs::ZERO,
            displayed_at: vsync.next_refresh_at_or_after(exec.frame_ready_at),
            target: qos.target_for_event(EventType::Scroll),
        };
        assert!(
            outcome.violated(),
            "33 ms budget cannot absorb ~170 ms of work"
        );
    }
}
