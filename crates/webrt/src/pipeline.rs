//! The rendering pipeline: callback execution followed by style resolution,
//! layout, paint and composite (Sec. 2, Fig. 1).
//!
//! Every event's compute demand is split across the five stages according to
//! a per-interaction profile — loads are dominated by style/layout, moves by
//! paint/composite, taps by callback execution — and the whole pipeline runs
//! on the single ACMP configuration chosen by the scheduler for the event.

use pes_acmp::units::TimeUs;
use pes_acmp::{AcmpConfig, CpuDemand, DvfsModel};
use pes_dom::Interaction;

/// One stage of the rendering pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RenderStage {
    /// The JavaScript event callback.
    Callback,
    /// CSS style resolution.
    Style,
    /// Layout (reflow).
    Layout,
    /// Rasterisation / painting.
    Paint,
    /// Layer compositing.
    Composite,
}

impl RenderStage {
    /// All stages, in pipeline order.
    pub const ALL: [RenderStage; 5] = [
        RenderStage::Callback,
        RenderStage::Style,
        RenderStage::Layout,
        RenderStage::Paint,
        RenderStage::Composite,
    ];
}

/// How an event's total compute demand is distributed across the pipeline
/// stages. Fractions are normalised at construction.
///
/// # Examples
///
/// ```
/// use pes_webrt::{RenderStage, StageProfile};
/// use pes_dom::Interaction;
///
/// let profile = StageProfile::for_interaction(Interaction::Move);
/// // Moves are composite/paint heavy.
/// assert!(profile.fraction(RenderStage::Composite) > profile.fraction(RenderStage::Layout));
/// let total: f64 = RenderStage::ALL.iter().map(|s| profile.fraction(*s)).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageProfile {
    fractions: [f64; 5],
}

impl StageProfile {
    /// Creates a profile from raw per-stage weights (normalised internally).
    /// All-zero weights fall back to a uniform split.
    pub fn new(weights: [f64; 5]) -> Self {
        let clamped: [f64; 5] = weights.map(|w| w.max(0.0));
        let sum: f64 = clamped.iter().sum();
        let fractions = if sum <= 0.0 {
            [0.2; 5]
        } else {
            [
                clamped[0] / sum,
                clamped[1] / sum,
                clamped[2] / sum,
                clamped[3] / sum,
                clamped[4] / sum,
            ]
        };
        StageProfile { fractions }
    }

    /// The characteristic stage split for an interaction primitive.
    pub fn for_interaction(interaction: Interaction) -> Self {
        match interaction {
            // Loads parse and build the page: style resolution and layout dominate.
            Interaction::Load => StageProfile::new([0.25, 0.22, 0.30, 0.13, 0.10]),
            // Taps run application logic, then a moderate re-render.
            Interaction::Tap => StageProfile::new([0.45, 0.15, 0.20, 0.10, 0.10]),
            // Moves mostly re-composite already painted layers.
            Interaction::Move => StageProfile::new([0.15, 0.05, 0.10, 0.25, 0.45]),
            // Submissions behave like taps with a slightly heavier callback.
            Interaction::Submit => StageProfile::new([0.50, 0.15, 0.15, 0.10, 0.10]),
        }
    }

    /// The fraction of the event's demand attributed to `stage`.
    pub fn fraction(&self, stage: RenderStage) -> f64 {
        self.fractions[stage as usize]
    }
}

/// The timing of one stage of a pipeline execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageTiming {
    /// The stage.
    pub stage: RenderStage,
    /// When the stage started.
    pub start: TimeUs,
    /// The stage's duration on the chosen configuration.
    pub duration: TimeUs,
}

/// The result of pushing one event through the rendering pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineExecution {
    /// When the pipeline started executing.
    pub started_at: TimeUs,
    /// Per-stage timings in pipeline order.
    pub stages: Vec<StageTiming>,
    /// When the frame became ready (end of composite).
    pub frame_ready_at: TimeUs,
    /// The configuration the pipeline ran on.
    pub config: AcmpConfig,
}

impl PipelineExecution {
    /// Total busy time of the pipeline.
    pub fn busy_time(&self) -> TimeUs {
        self.stages.iter().map(|s| s.duration).sum()
    }
}

/// The rendering pipeline simulator.
///
/// # Examples
///
/// ```
/// use pes_acmp::{CpuDemand, DvfsModel, Platform};
/// use pes_acmp::units::{CpuCycles, TimeUs};
/// use pes_dom::Interaction;
/// use pes_webrt::RenderPipeline;
///
/// let platform = Platform::exynos_5410();
/// let model = DvfsModel::new(&platform);
/// let pipeline = RenderPipeline::new();
/// let demand = CpuDemand::new(TimeUs::from_millis(5), CpuCycles::new(100_000_000));
/// let exec = pipeline.execute(
///     &demand,
///     Interaction::Tap,
///     &model,
///     &platform.max_performance_config(),
///     TimeUs::from_millis(10),
/// );
/// assert_eq!(exec.stages.len(), 5);
/// assert!(exec.frame_ready_at > TimeUs::from_millis(10));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenderPipeline {
    _private: (),
}

impl RenderPipeline {
    /// Creates a pipeline simulator.
    pub fn new() -> Self {
        RenderPipeline { _private: () }
    }

    /// Runs an event's demand through the five pipeline stages on a single
    /// configuration, starting at `start`, and returns the per-stage timings
    /// plus the frame-ready instant.
    pub fn execute(
        &self,
        demand: &CpuDemand,
        interaction: Interaction,
        model: &DvfsModel<'_>,
        config: &AcmpConfig,
        start: TimeUs,
    ) -> PipelineExecution {
        let profile = StageProfile::for_interaction(interaction);
        let mut cursor = start;
        let mut stages = Vec::with_capacity(RenderStage::ALL.len());
        for stage in RenderStage::ALL {
            let stage_demand = demand.scale(profile.fraction(stage));
            let duration = model.execution_time(&stage_demand, config);
            stages.push(StageTiming {
                stage,
                start: cursor,
                duration,
            });
            cursor += duration;
        }
        PipelineExecution {
            started_at: start,
            stages,
            frame_ready_at: cursor,
            config: *config,
        }
    }

    /// The `(busy time, frame-ready instant)` of pushing an event through
    /// the pipeline, without materialising the per-stage breakdown —
    /// value-identical to [`RenderPipeline::execute`] (the stages are
    /// contiguous, so the busy time is the cursor's total advance), minus
    /// its per-call `Vec` of stage timings. This is what the execution
    /// engine's replay hot path consumes; [`RenderPipeline::execute`] stays
    /// for callers that inspect stages (figures, tests).
    pub fn execute_timing(
        &self,
        demand: &CpuDemand,
        interaction: Interaction,
        model: &DvfsModel<'_>,
        config: &AcmpConfig,
        start: TimeUs,
    ) -> (TimeUs, TimeUs) {
        let profile = StageProfile::for_interaction(interaction);
        let mut cursor = start;
        for stage in RenderStage::ALL {
            let stage_demand = demand.scale(profile.fraction(stage));
            cursor += model.execution_time(&stage_demand, config);
        }
        (cursor - start, cursor)
    }

    /// The total pipeline latency for an event demand on a configuration,
    /// without materialising the per-stage breakdown. Because the per-stage
    /// split is linear in the demand, this equals the sum of the stage times
    /// up to rounding.
    pub fn total_latency(
        &self,
        demand: &CpuDemand,
        model: &DvfsModel<'_>,
        config: &AcmpConfig,
    ) -> TimeUs {
        model.execution_time(demand, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_acmp::units::CpuCycles;
    use pes_acmp::Platform;

    fn fixture() -> (Platform, CpuDemand) {
        (
            Platform::exynos_5410(),
            CpuDemand::new(TimeUs::from_millis(10), CpuCycles::new(200_000_000)),
        )
    }

    #[test]
    fn profiles_are_normalised_for_every_interaction() {
        for interaction in Interaction::ALL {
            let p = StageProfile::for_interaction(interaction);
            let total: f64 = RenderStage::ALL.iter().map(|s| p.fraction(*s)).sum();
            assert!((total - 1.0).abs() < 1e-9, "{interaction}: {total}");
        }
    }

    #[test]
    fn degenerate_profile_weights_fall_back_to_uniform() {
        let p = StageProfile::new([0.0, 0.0, 0.0, 0.0, 0.0]);
        for stage in RenderStage::ALL {
            assert!((p.fraction(stage) - 0.2).abs() < 1e-9);
        }
        let q = StageProfile::new([-1.0, -2.0, 0.0, 0.0, 0.0]);
        let total: f64 = RenderStage::ALL.iter().map(|s| q.fraction(*s)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interaction_profiles_have_their_characteristic_shape() {
        let load = StageProfile::for_interaction(Interaction::Load);
        assert!(load.fraction(RenderStage::Layout) > load.fraction(RenderStage::Composite));
        let tap = StageProfile::for_interaction(Interaction::Tap);
        assert!(tap.fraction(RenderStage::Callback) >= 0.4);
        let mv = StageProfile::for_interaction(Interaction::Move);
        assert!(mv.fraction(RenderStage::Composite) > mv.fraction(RenderStage::Callback));
    }

    #[test]
    fn execution_stages_are_contiguous_and_ordered() {
        let (platform, demand) = fixture();
        let model = DvfsModel::new(&platform);
        let pipeline = RenderPipeline::new();
        let exec = pipeline.execute(
            &demand,
            Interaction::Load,
            &model,
            &platform.max_performance_config(),
            TimeUs::from_millis(3),
        );
        assert_eq!(exec.stages.len(), 5);
        assert_eq!(exec.stages[0].start, TimeUs::from_millis(3));
        for w in exec.stages.windows(2) {
            assert_eq!(w[0].start + w[0].duration, w[1].start);
        }
        let last = exec.stages.last().unwrap();
        assert_eq!(exec.frame_ready_at, last.start + last.duration);
        assert_eq!(exec.busy_time() + exec.started_at, exec.frame_ready_at);
    }

    #[test]
    fn execute_timing_matches_the_staged_execution_exactly() {
        let (platform, demand) = fixture();
        let model = DvfsModel::new(&platform);
        let pipeline = RenderPipeline::new();
        for interaction in Interaction::ALL {
            for cfg in platform.configs() {
                let start = TimeUs::from_micros(12_345);
                let exec = pipeline.execute(&demand, interaction, &model, cfg, start);
                let (busy, ready) =
                    pipeline.execute_timing(&demand, interaction, &model, cfg, start);
                assert_eq!(busy, exec.busy_time(), "{interaction} on {cfg}");
                assert_eq!(ready, exec.frame_ready_at, "{interaction} on {cfg}");
            }
        }
    }

    #[test]
    fn total_latency_matches_stage_sum_approximately() {
        let (platform, demand) = fixture();
        let model = DvfsModel::new(&platform);
        let pipeline = RenderPipeline::new();
        for cfg in platform.configs() {
            let exec = pipeline.execute(&demand, Interaction::Tap, &model, cfg, TimeUs::ZERO);
            let direct = pipeline.total_latency(&demand, &model, cfg);
            let diff = exec.busy_time().as_micros() as i64 - direct.as_micros() as i64;
            // Per-stage rounding can differ by a few microseconds at most.
            assert!(diff.abs() < 10, "cfg {cfg:?}: diff {diff}");
        }
    }

    #[test]
    fn faster_configs_finish_the_pipeline_sooner() {
        let (platform, demand) = fixture();
        let model = DvfsModel::new(&platform);
        let pipeline = RenderPipeline::new();
        let fast = pipeline.execute(
            &demand,
            Interaction::Tap,
            &model,
            &platform.max_performance_config(),
            TimeUs::ZERO,
        );
        let slow = pipeline.execute(
            &demand,
            Interaction::Tap,
            &model,
            &platform.min_power_config(),
            TimeUs::ZERO,
        );
        assert!(fast.frame_ready_at < slow.frame_ready_at);
    }
}
