//! Per-event compute-demand modelling.
//!
//! Each event's callback-plus-rendering work is characterised by the Eqn. 1
//! demand (memory time plus A7-equivalent CPU cycles). The ranges below are
//! calibrated so that, on the Exynos 5410 model, most taps need a mid-range
//! configuration to meet their 300 ms target, most moves are tight against
//! their 33 ms target, loads occupy the runtime for 0.5–3 s, and a small
//! per-app heavy tail produces the Type I events of Sec. 4.3 that no
//! configuration can serve in time.

use rand::Rng;

use pes_acmp::units::{CpuCycles, TimeUs};
use pes_acmp::CpuDemand;
use pes_dom::{EventType, Interaction};

use crate::app::AppProfile;

/// Demand ranges for one interaction class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandRange {
    /// Minimum memory time in microseconds.
    pub t_mem_min_us: u64,
    /// Maximum memory time in microseconds.
    pub t_mem_max_us: u64,
    /// Minimum A7-equivalent cycles, in millions.
    pub mcycles_min: u64,
    /// Maximum A7-equivalent cycles, in millions.
    pub mcycles_max: u64,
    /// Multiplier applied to the cycle count for heavy-tail samples.
    pub heavy_multiplier: f64,
}

/// Deterministic-given-RNG demand sampler.
///
/// # Examples
///
/// ```
/// use pes_workload::{AppCatalog, DemandModel};
/// use pes_dom::EventType;
/// use rand::SeedableRng;
///
/// let catalog = AppCatalog::paper_suite();
/// let cnn = catalog.find("cnn").unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
/// let model = DemandModel::paper_defaults();
/// let demand = model.sample(&mut rng, cnn, EventType::Click);
/// assert!(demand.ref_cycles().get() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DemandModel {
    load: DemandRange,
    tap: DemandRange,
    mv: DemandRange,
    submit: DemandRange,
}

impl DemandModel {
    /// The default calibration described in the module documentation.
    pub fn paper_defaults() -> Self {
        DemandModel {
            load: DemandRange {
                t_mem_min_us: 150_000,
                t_mem_max_us: 400_000,
                mcycles_min: 1_200,
                mcycles_max: 3_500,
                heavy_multiplier: 3.0,
            },
            tap: DemandRange {
                t_mem_min_us: 5_000,
                t_mem_max_us: 20_000,
                mcycles_min: 150,
                mcycles_max: 600,
                heavy_multiplier: 2.6,
            },
            mv: DemandRange {
                t_mem_min_us: 1_000,
                t_mem_max_us: 3_000,
                mcycles_min: 8,
                mcycles_max: 40,
                heavy_multiplier: 2.5,
            },
            submit: DemandRange {
                t_mem_min_us: 8_000,
                t_mem_max_us: 25_000,
                mcycles_min: 200,
                mcycles_max: 700,
                heavy_multiplier: 2.4,
            },
        }
    }

    /// The demand range for an interaction class.
    pub fn range(&self, interaction: Interaction) -> &DemandRange {
        match interaction {
            Interaction::Load => &self.load,
            Interaction::Tap => &self.tap,
            Interaction::Move => &self.mv,
            Interaction::Submit => &self.submit,
        }
    }

    /// Samples the demand of one event of type `event_type` for application
    /// `app`, using `rng` for all randomness.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        app: &AppProfile,
        event_type: EventType,
    ) -> CpuDemand {
        let range = self.range(event_type.interaction());
        // Navigations within an application are lighter than the initial load.
        let nav_scale = if event_type == EventType::Navigate {
            0.7
        } else {
            1.0
        };
        let t_mem = rng.gen_range(range.t_mem_min_us..=range.t_mem_max_us);
        let mcycles = rng.gen_range(range.mcycles_min..=range.mcycles_max) as f64;
        let heavy = rng.gen_bool(app.heavy_tail_prob());
        let multiplier = if heavy { range.heavy_multiplier } else { 1.0 };
        let cycles = mcycles * 1.0e6 * app.compute_intensity() * multiplier * nav_scale;
        CpuDemand::new(
            TimeUs::from_micros((t_mem as f64 * nav_scale) as u64),
            CpuCycles::new(cycles.round() as u64),
        )
    }
}

impl Default for DemandModel {
    fn default() -> Self {
        DemandModel::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::AppCatalog;
    use pes_acmp::{DvfsModel, Platform};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_many(app: &str, event: EventType, n: usize) -> Vec<CpuDemand> {
        let catalog = AppCatalog::paper_suite();
        let app = catalog.find(app).unwrap();
        let model = DemandModel::paper_defaults();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        (0..n).map(|_| model.sample(&mut rng, app, event)).collect()
    }

    #[test]
    fn sampling_is_deterministic_given_the_seed() {
        let a = sample_many("cnn", EventType::Click, 20);
        let b = sample_many("cnn", EventType::Click, 20);
        assert_eq!(a, b);
    }

    #[test]
    fn loads_are_much_heavier_than_moves() {
        let loads = sample_many("bbc", EventType::Load, 50);
        let moves = sample_many("bbc", EventType::Scroll, 50);
        let avg = |v: &[CpuDemand]| {
            v.iter().map(|d| d.ref_cycles().get() as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg(&loads) > 20.0 * avg(&moves));
    }

    #[test]
    fn compute_light_apps_produce_lighter_events() {
        let sina = sample_many("sina", EventType::Click, 200);
        let amazon = sample_many("amazon", EventType::Click, 200);
        let avg = |v: &[CpuDemand]| {
            v.iter().map(|d| d.ref_cycles().get() as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg(&amazon) > 1.5 * avg(&sina));
    }

    #[test]
    fn most_taps_meet_their_deadline_on_the_fastest_config_but_not_all() {
        // The heavy tail should produce some Type I taps on heavy apps, while
        // the bulk of taps remain servable — the precondition for the Fig. 3
        // event-type distribution.
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let taps = sample_many("cnn", EventType::Click, 400);
        let budget = TimeUs::from_millis(300);
        let servable = taps
            .iter()
            .filter(|d| dvfs.cheapest_config_within(d, budget).is_some())
            .count();
        let fraction = servable as f64 / taps.len() as f64;
        assert!(fraction > 0.6, "too many Type I taps: {fraction}");
        assert!(fraction < 1.0, "no Type I taps at all");
    }

    #[test]
    fn most_taps_cannot_be_served_by_the_slowest_config() {
        // If the little cluster at minimum frequency could serve everything,
        // the scheduling problem would be trivial and every scheduler would
        // look identical.
        let platform = Platform::exynos_5410();
        let dvfs = DvfsModel::new(&platform);
        let taps = sample_many("ebay", EventType::Click, 200);
        let slow = platform.min_power_config();
        let budget = TimeUs::from_millis(300);
        let fits_slow = taps
            .iter()
            .filter(|d| dvfs.execution_time(d, &slow) <= budget)
            .count();
        assert!(
            (fits_slow as f64) < 0.5 * taps.len() as f64,
            "the slowest configuration serves too many taps ({fits_slow}/{})",
            taps.len()
        );
    }

    #[test]
    fn navigations_are_lighter_than_initial_loads() {
        let loads = sample_many("cnn", EventType::Load, 200);
        let navs = sample_many("cnn", EventType::Navigate, 200);
        let avg = |v: &[CpuDemand]| {
            v.iter().map(|d| d.ref_cycles().get() as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg(&navs) < avg(&loads));
    }

    #[test]
    fn ranges_are_exposed_per_interaction() {
        let m = DemandModel::paper_defaults();
        assert!(m.range(Interaction::Load).mcycles_max > m.range(Interaction::Tap).mcycles_max);
        assert!(m.range(Interaction::Tap).mcycles_max > m.range(Interaction::Move).mcycles_max);
        assert_eq!(m, DemandModel::default());
    }
}
