//! Application profiles: parameterised descriptions of the 18 mobile Web
//! applications used in the paper's evaluation (Sec. 3 and Sec. 6.1).
//!
//! We cannot ship cnn.com; instead each profile captures the properties that
//! matter to PES — page structure (which drives the Table 1 features and the
//! LNES), per-interaction compute intensity (which drives Type I/II/III
//! behaviour), and user-behaviour tendencies (which drive the temporal
//! correlation the predictor learns).

use pes_dom::{BuiltPage, PageBuilder};

/// The broad category of an application; categories share page shapes and
/// user-behaviour patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AppCategory {
    /// News front pages (cnn, bbc, msn, ...): long scrollable lists of
    /// article links.
    News,
    /// Search engines (google, yahoo): a form, then result links.
    Search,
    /// Video portals (youtube): thumbnails plus an embedded player.
    Video,
    /// Shopping sites (amazon, ebay, taobao, ...): dense clickable grids.
    Shopping,
    /// Social / feed applications (twitter, stack overflow): infinite feeds.
    Social,
}

impl AppCategory {
    /// All categories.
    pub const ALL: [AppCategory; 5] = [
        AppCategory::News,
        AppCategory::Search,
        AppCategory::Video,
        AppCategory::Shopping,
        AppCategory::Social,
    ];
}

/// Page-construction knobs handed to [`PageBuilder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageParams {
    /// Number of navigation links in the header.
    pub nav_links: usize,
    /// Number of article/result/product links in the main list.
    pub articles: usize,
    /// Whether list entries carry thumbnails.
    pub with_images: bool,
    /// Number of items in the collapsible menu (0 = no menu).
    pub menu_items: usize,
    /// Whether the page has a search/login form.
    pub has_form: bool,
    /// Whether the page embeds a video player.
    pub has_video: bool,
    /// Height of trailing plain-text content in pixels.
    pub text_height: i64,
}

/// The profile of one application.
///
/// # Examples
///
/// ```
/// use pes_workload::AppCatalog;
///
/// let catalog = AppCatalog::paper_suite();
/// let cnn = catalog.find("cnn").unwrap();
/// let page = cnn.build_page();
/// assert!(!page.links.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    name: String,
    category: AppCategory,
    seen: bool,
    page: PageParams,
    /// Multiplier on every event's compute demand (sina is compute-light,
    /// amazon is compute-heavy; Sec. 6.4).
    compute_intensity: f64,
    /// Probability that an individual event's demand lands in the heavy tail
    /// that not even the fastest configuration can serve in time (Type I).
    heavy_tail_prob: f64,
    /// Typical number of move events between consecutive taps.
    scroll_burst: u32,
    /// Probability that a user session uses touch manifestations
    /// (touchstart / touchmove) rather than click / scroll.
    touch_user_fraction: f64,
    /// Probability that a tap goes to the collapsible menu instead of a link.
    menu_use_prob: f64,
    /// Probability that the user fills and submits the form after loading.
    form_use_prob: f64,
}

impl AppProfile {
    /// Creates a profile. Probabilities are clamped to `[0, 1]` and the
    /// compute intensity to a small positive minimum.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        category: AppCategory,
        seen: bool,
        page: PageParams,
        compute_intensity: f64,
        heavy_tail_prob: f64,
        scroll_burst: u32,
        touch_user_fraction: f64,
        menu_use_prob: f64,
        form_use_prob: f64,
    ) -> Self {
        AppProfile {
            name: name.into(),
            category,
            seen,
            page,
            compute_intensity: compute_intensity.max(0.05),
            heavy_tail_prob: heavy_tail_prob.clamp(0.0, 1.0),
            scroll_burst: scroll_burst.max(1),
            touch_user_fraction: touch_user_fraction.clamp(0.0, 1.0),
            menu_use_prob: menu_use_prob.clamp(0.0, 1.0),
            form_use_prob: form_use_prob.clamp(0.0, 1.0),
        }
    }

    /// The application name (as used in the paper's figures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The application category.
    pub fn category(&self) -> AppCategory {
        self.category
    }

    /// Whether the application is part of the 12-app "seen" suite used for
    /// characterisation and training (Sec. 3), as opposed to the six unseen
    /// evaluation-only applications (Sec. 6.1).
    pub fn is_seen(&self) -> bool {
        self.seen
    }

    /// The page-construction parameters.
    pub fn page_params(&self) -> &PageParams {
        &self.page
    }

    /// Per-app compute-intensity multiplier.
    pub fn compute_intensity(&self) -> f64 {
        self.compute_intensity
    }

    /// Probability of a heavy-tail (Type I candidate) event.
    pub fn heavy_tail_prob(&self) -> f64 {
        self.heavy_tail_prob
    }

    /// Typical number of move events between consecutive taps.
    pub fn scroll_burst(&self) -> u32 {
        self.scroll_burst
    }

    /// Fraction of sessions that use touch manifestations.
    pub fn touch_user_fraction(&self) -> f64 {
        self.touch_user_fraction
    }

    /// Probability that a tap targets the collapsible menu.
    pub fn menu_use_prob(&self) -> f64 {
        self.menu_use_prob
    }

    /// Probability that the session submits the form after a page load.
    pub fn form_use_prob(&self) -> f64 {
        self.form_use_prob
    }

    /// Builds the representative page DOM for this application.
    pub fn build_page(&self) -> BuiltPage {
        let p = &self.page;
        let mut builder = PageBuilder::new(360).nav_bar(p.nav_links);
        if p.menu_items > 0 {
            builder = builder.collapsible_menu(p.menu_items);
        }
        if p.has_form {
            builder = builder.search_form();
        }
        if p.has_video {
            builder = builder.video_player(220);
        } else {
            builder = builder.hero_image(160);
        }
        builder = builder
            .article_list(p.articles, p.with_images)
            .button_row(3);
        if p.text_height > 0 {
            builder = builder.text_block(p.text_height);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pes_dom::geometry::Viewport;
    use pes_dom::DomAnalyzer;

    fn profile(category: AppCategory) -> AppProfile {
        AppProfile::new(
            "test-app",
            category,
            true,
            PageParams {
                nav_links: 4,
                articles: 10,
                with_images: true,
                menu_items: 5,
                has_form: category == AppCategory::Search,
                has_video: category == AppCategory::Video,
                text_height: 1_500,
            },
            1.0,
            0.1,
            3,
            0.5,
            0.2,
            0.3,
        )
    }

    #[test]
    fn constructor_clamps_degenerate_values() {
        let p = AppProfile::new(
            "x",
            AppCategory::News,
            false,
            PageParams {
                nav_links: 1,
                articles: 1,
                with_images: false,
                menu_items: 0,
                has_form: false,
                has_video: false,
                text_height: 0,
            },
            -3.0,
            7.0,
            0,
            -1.0,
            2.0,
            -0.5,
        );
        assert!(p.compute_intensity() > 0.0);
        assert_eq!(p.heavy_tail_prob(), 1.0);
        assert_eq!(p.scroll_burst(), 1);
        assert_eq!(p.touch_user_fraction(), 0.0);
        assert_eq!(p.menu_use_prob(), 1.0);
        assert_eq!(p.form_use_prob(), 0.0);
        assert!(!p.is_seen());
    }

    #[test]
    fn built_pages_match_their_parameters() {
        let p = profile(AppCategory::News);
        let page = p.build_page();
        assert_eq!(page.links.len(), 4 + 10);
        assert_eq!(page.menu_items.len(), 5);
        assert!(page.submit_buttons.is_empty());
        let search = profile(AppCategory::Search).build_page();
        assert_eq!(search.submit_buttons.len(), 1);
        let video = profile(AppCategory::Video).build_page();
        // Video pages expose the player as an interactive control.
        assert!(video.buttons.len() >= 4);
    }

    #[test]
    fn built_pages_have_plausible_viewport_features() {
        for category in AppCategory::ALL {
            let page = profile(category).build_page();
            let features = DomAnalyzer::new().viewport_features(&page.tree, &Viewport::phone());
            assert!(
                features.clickable_region_fraction > 0.02,
                "{category:?} has too little clickable area"
            );
            assert!(features.scrollable, "{category:?} page should scroll");
        }
    }

    #[test]
    fn accessors_round_trip() {
        let p = profile(AppCategory::Shopping);
        assert_eq!(p.name(), "test-app");
        assert_eq!(p.category(), AppCategory::Shopping);
        assert!(p.is_seen());
        assert_eq!(p.scroll_burst(), 3);
        assert!((p.compute_intensity() - 1.0).abs() < 1e-12);
        assert_eq!(p.page_params().articles, 10);
    }
}
