//! The application catalog: the 12 "seen" applications characterised in
//! Sec. 3/4 plus the six unseen applications added for the generalisability
//! evaluation in Sec. 6.1, with per-app parameters chosen to echo the
//! qualitative observations the paper makes about them (e.g. sina is
//! compute-light, amazon has a large clickable area and is harder to predict,
//! slashdot is sparse and highly predictable).

use crate::app::{AppCategory, AppProfile, PageParams};

/// The full application catalog.
///
/// # Examples
///
/// ```
/// use pes_workload::AppCatalog;
///
/// let catalog = AppCatalog::paper_suite();
/// assert_eq!(catalog.seen_apps().count(), 12);
/// assert_eq!(catalog.unseen_apps().count(), 6);
/// assert!(catalog.find("slashdot").is_some());
/// assert!(catalog.find("not-a-real-app").is_none());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AppCatalog {
    apps: Vec<AppProfile>,
}

impl AppCatalog {
    /// Builds the 18-application suite used throughout the evaluation.
    pub fn paper_suite() -> Self {
        let news = |articles: usize, menu: usize, text: i64| PageParams {
            nav_links: 6,
            articles,
            with_images: true,
            menu_items: menu,
            has_form: false,
            has_video: false,
            text_height: text,
        };
        let shopping = |articles: usize| PageParams {
            nav_links: 5,
            articles,
            with_images: true,
            menu_items: 8,
            has_form: true,
            has_video: false,
            text_height: 600,
        };

        #[allow(clippy::too_many_arguments)]
        fn app(
            name: &str,
            category: AppCategory,
            seen: bool,
            page: PageParams,
            intensity: f64,
            heavy: f64,
            burst: u32,
            touch: f64,
            menu: f64,
            form: f64,
        ) -> AppProfile {
            AppProfile::new(
                name, category, seen, page, intensity, heavy, burst, touch, menu, form,
            )
        }

        let apps = vec![
            // ------------------------- 12 seen applications -----------------
            app(
                "163",
                AppCategory::News,
                true,
                news(14, 6, 2_400),
                1.15,
                0.10,
                3,
                0.92,
                0.15,
                0.0,
            ),
            app(
                "msn",
                AppCategory::News,
                true,
                news(12, 5, 2_000),
                1.05,
                0.08,
                3,
                0.88,
                0.12,
                0.0,
            ),
            app(
                "slashdot",
                AppCategory::News,
                true,
                news(12, 0, 3_000),
                0.85,
                0.05,
                3,
                0.95,
                0.0,
                0.0,
            ),
            app(
                "youtube",
                AppCategory::Video,
                true,
                PageParams {
                    nav_links: 4,
                    articles: 10,
                    with_images: true,
                    menu_items: 5,
                    has_form: true,
                    has_video: true,
                    text_height: 800,
                },
                1.20,
                0.12,
                3,
                0.90,
                0.10,
                0.15,
            ),
            app(
                "google",
                AppCategory::Search,
                true,
                PageParams {
                    nav_links: 3,
                    articles: 9,
                    with_images: false,
                    menu_items: 4,
                    has_form: true,
                    has_video: false,
                    text_height: 400,
                },
                0.90,
                0.06,
                3,
                0.85,
                0.08,
                0.55,
            ),
            app(
                "amazon",
                AppCategory::Shopping,
                true,
                shopping(16),
                1.30,
                0.14,
                3,
                0.90,
                0.25,
                0.20,
            ),
            app(
                "ebay",
                AppCategory::Shopping,
                true,
                shopping(14),
                1.20,
                0.12,
                3,
                0.90,
                0.20,
                0.18,
            ),
            app(
                "sina",
                AppCategory::News,
                true,
                news(16, 6, 2_800),
                0.55,
                0.04,
                3,
                0.92,
                0.15,
                0.0,
            ),
            app(
                "espn",
                AppCategory::News,
                true,
                news(12, 4, 2_200),
                1.10,
                0.10,
                3,
                0.90,
                0.12,
                0.0,
            ),
            app(
                "bbc",
                AppCategory::News,
                true,
                news(12, 5, 2_400),
                1.00,
                0.08,
                3,
                0.88,
                0.12,
                0.0,
            ),
            app(
                "cnn",
                AppCategory::News,
                true,
                news(14, 6, 2_600),
                1.25,
                0.13,
                3,
                0.92,
                0.15,
                0.0,
            ),
            app(
                "twitter",
                AppCategory::Social,
                true,
                PageParams {
                    nav_links: 4,
                    articles: 18,
                    with_images: true,
                    menu_items: 4,
                    has_form: true,
                    has_video: false,
                    text_height: 3_200,
                },
                1.05,
                0.09,
                4,
                0.92,
                0.08,
                0.10,
            ),
            // ------------------------- 6 unseen applications ----------------
            app(
                "yahoo",
                AppCategory::Search,
                false,
                PageParams {
                    nav_links: 5,
                    articles: 12,
                    with_images: true,
                    menu_items: 5,
                    has_form: true,
                    has_video: false,
                    text_height: 1_600,
                },
                1.00,
                0.09,
                3,
                0.88,
                0.10,
                0.40,
            ),
            app(
                "nytimes",
                AppCategory::News,
                false,
                news(12, 5, 3_000),
                1.15,
                0.11,
                3,
                0.88,
                0.12,
                0.0,
            ),
            app(
                "stack overflow",
                AppCategory::Social,
                false,
                PageParams {
                    nav_links: 4,
                    articles: 15,
                    with_images: false,
                    menu_items: 4,
                    has_form: true,
                    has_video: false,
                    text_height: 3_600,
                },
                0.95,
                0.07,
                3,
                0.90,
                0.08,
                0.12,
            ),
            app(
                "taobao",
                AppCategory::Shopping,
                false,
                shopping(18),
                1.30,
                0.14,
                3,
                0.92,
                0.25,
                0.22,
            ),
            app(
                "tmall",
                AppCategory::Shopping,
                false,
                shopping(16),
                1.25,
                0.13,
                3,
                0.92,
                0.22,
                0.20,
            ),
            app(
                "jd",
                AppCategory::Shopping,
                false,
                shopping(15),
                1.20,
                0.12,
                3,
                0.92,
                0.22,
                0.18,
            ),
        ];
        AppCatalog { apps }
    }

    /// All applications, seen first.
    pub fn apps(&self) -> &[AppProfile] {
        &self.apps
    }

    /// The 12 applications used for characterisation and predictor training.
    pub fn seen_apps(&self) -> impl Iterator<Item = &AppProfile> + '_ {
        self.apps.iter().filter(|a| a.is_seen())
    }

    /// The six applications only used for evaluation.
    pub fn unseen_apps(&self) -> impl Iterator<Item = &AppProfile> + '_ {
        self.apps.iter().filter(|a| !a.is_seen())
    }

    /// Looks an application up by name.
    pub fn find(&self, name: &str) -> Option<&AppProfile> {
        self.apps.iter().find(|a| a.name() == name)
    }

    /// Number of applications in the catalog.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the catalog is empty (never true for the paper suite).
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

impl Default for AppCatalog {
    fn default() -> Self {
        AppCatalog::paper_suite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_seen_and_six_unseen_apps() {
        let c = AppCatalog::paper_suite();
        assert_eq!(c.len(), 18);
        assert_eq!(c.seen_apps().count(), 12);
        assert_eq!(c.unseen_apps().count(), 6);
        assert!(!c.is_empty());
    }

    #[test]
    fn app_names_match_the_papers_figures() {
        let c = AppCatalog::paper_suite();
        for name in [
            "163", "msn", "slashdot", "youtube", "google", "amazon", "ebay", "sina", "espn", "bbc",
            "cnn", "twitter",
        ] {
            assert!(
                c.find(name).map(|a| a.is_seen()).unwrap_or(false),
                "{name} missing from seen suite"
            );
        }
        for name in [
            "yahoo",
            "nytimes",
            "stack overflow",
            "taobao",
            "tmall",
            "jd",
        ] {
            assert!(
                c.find(name).map(|a| !a.is_seen()).unwrap_or(false),
                "{name} missing from unseen suite"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let c = AppCatalog::paper_suite();
        let mut names: Vec<&str> = c.apps().iter().map(|a| a.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn qualitative_per_app_observations_hold() {
        let c = AppCatalog::paper_suite();
        // sina is compute-light (Sec. 6.4).
        assert!(c.find("sina").unwrap().compute_intensity() < 0.7);
        // amazon has a dense clickable grid and heavier events.
        assert!(c.find("amazon").unwrap().compute_intensity() > 1.1);
        // slashdot is the sparsest, most predictable page (no menus).
        assert_eq!(c.find("slashdot").unwrap().page_params().menu_items, 0);
        // every app builds a non-trivial page
        for app in c.apps() {
            let page = app.build_page();
            assert!(page.links.len() >= 4, "{} too sparse", app.name());
        }
    }

    #[test]
    fn all_categories_are_represented() {
        let c = AppCatalog::paper_suite();
        for cat in AppCategory::ALL {
            assert!(
                c.apps().iter().any(|a| a.category() == cat),
                "category {cat:?} unrepresented"
            );
        }
    }
}
