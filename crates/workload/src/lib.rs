//! # pes-workload — application profiles and user-interaction traces
//!
//! The workload substrate of the PES reproduction (Feng & Zhu, ISCA 2019).
//! The paper evaluates on 18 real mobile Web applications with over 100
//! recorded human interaction traces; neither is shippable, so this crate
//! provides the closest synthetic equivalent:
//!
//! * [`AppCatalog`] — the 12 "seen" + 6 "unseen" applications of Sec. 3 and
//!   Sec. 6.1, each an [`AppProfile`] whose parameters (page structure,
//!   compute intensity, behavioural tendencies) echo the paper's qualitative
//!   per-app observations,
//! * [`DemandModel`] — per-event compute demands calibrated against the QoS
//!   targets and the Exynos 5410 model so that Type I–IV events all occur,
//! * [`TraceGenerator`] / [`Trace`] — seeded user sessions (~15–55 events,
//!   roughly two minutes) made of loads, taps, moves and submits with think
//!   times and strong temporal structure; distinct seeds play the role of
//!   distinct users, and training / evaluation sets use disjoint seed ranges.
//!
//! # Examples
//!
//! ```
//! use pes_workload::{AppCatalog, TraceGenerator};
//!
//! let catalog = AppCatalog::paper_suite();
//! let app = catalog.find("cnn").unwrap();
//! let page = app.build_page();
//! let trace = TraceGenerator::new().generate(app, &page, 42);
//! assert!(trace.len() >= 15);
//! assert!(trace.duration().as_secs_f64() > 10.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod catalog;
pub mod demand;
pub mod trace;

pub use app::{AppCategory, AppProfile, PageParams};
pub use catalog::AppCatalog;
pub use demand::{DemandModel, DemandRange};
pub use trace::{Trace, TraceConfig, TraceGenerator};

/// The base seed used for predictor-training traces throughout the
/// reproduction. Evaluation traces use [`EVAL_SEED_BASE`]; the two ranges are
/// disjoint, mirroring the paper's "all evaluation traces are collected from
/// new users" methodology (Sec. 6.1).
pub const TRAINING_SEED_BASE: u64 = 10_000;

/// The base seed used for evaluation traces.
pub const EVAL_SEED_BASE: u64 = 900_000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AppCatalog>();
        assert_send_sync::<AppProfile>();
        assert_send_sync::<Trace>();
        assert_send_sync::<TraceGenerator>();
    }

    #[test]
    fn training_and_evaluation_seed_ranges_are_disjoint() {
        // ~100 training traces and a handful of evaluation traces per app
        // never collide.
        const { assert!(TRAINING_SEED_BASE + 100_000 < EVAL_SEED_BASE) }
    }

    #[test]
    fn every_app_in_the_suite_generates_valid_traces() {
        let catalog = AppCatalog::paper_suite();
        let gen = TraceGenerator::new();
        for app in catalog.apps() {
            let page = app.build_page();
            let trace = gen.generate(app, &page, EVAL_SEED_BASE);
            assert!(!trace.is_empty(), "{} generated an empty trace", app.name());
            assert_eq!(trace.app(), app.name());
        }
    }
}
