//! Error type for DOM operations.

use std::error::Error;
use std::fmt;

use crate::events::EventType;

/// Errors produced by the `pes-dom` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DomError {
    /// A node id does not refer to a node of this tree.
    UnknownNode(usize),
    /// A structural operation (append, reparent) would corrupt the tree.
    InvalidStructure(String),
    /// No listener of the given event type is registered on the node.
    NoListener(usize, EventType),
}

impl fmt::Display for DomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomError::UnknownNode(idx) => write!(f, "node index {idx} does not exist in this tree"),
            DomError::InvalidStructure(msg) => write!(f, "invalid tree structure: {msg}"),
            DomError::NoListener(idx, event) => {
                write!(f, "node {idx} has no listener for {event}")
            }
        }
    }
}

impl Error for DomError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DomError::UnknownNode(7).to_string().contains('7'));
        assert!(DomError::InvalidStructure("cycle".into())
            .to_string()
            .contains("cycle"));
        assert!(DomError::NoListener(3, EventType::Click)
            .to_string()
            .contains("onclick"));
    }

    #[test]
    fn error_is_send_sync_std_error() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<DomError>();
    }
}
