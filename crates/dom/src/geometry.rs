//! Document geometry: rectangles and the visible viewport.
//!
//! The DOM analyzer in PES only considers nodes inside the current viewport
//! (Sec. 5.2); both the Likely-Next-Event-Set and the Table 1 features
//! ("clickable region percentage in the viewport", "visible link percentage
//! in the viewport") are defined in terms of on-screen area.

/// An axis-aligned rectangle in document coordinates (CSS pixels).
///
/// # Examples
///
/// ```
/// use pes_dom::geometry::Rect;
///
/// let a = Rect::new(0, 0, 100, 50);
/// let b = Rect::new(50, 25, 100, 50);
/// assert_eq!(a.area(), 5_000);
/// assert_eq!(a.intersection(&b).map(|r| r.area()), Some(50 * 25));
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    x: i64,
    y: i64,
    width: i64,
    height: i64,
}

impl Rect {
    /// Creates a rectangle; negative sizes are clamped to zero.
    pub fn new(x: i64, y: i64, width: i64, height: i64) -> Self {
        Rect {
            x,
            y,
            width: width.max(0),
            height: height.max(0),
        }
    }

    /// A zero-area rectangle at the origin (used for non-rendered nodes).
    pub const EMPTY: Rect = Rect {
        x: 0,
        y: 0,
        width: 0,
        height: 0,
    };

    /// Left edge.
    pub fn x(&self) -> i64 {
        self.x
    }

    /// Top edge.
    pub fn y(&self) -> i64 {
        self.y
    }

    /// Width in pixels.
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Area in square pixels.
    pub fn area(&self) -> i64 {
        self.width * self.height
    }

    /// Whether the rectangle has zero area.
    pub fn is_empty(&self) -> bool {
        self.area() == 0
    }

    /// The rectangle translated by `(dx, dy)`.
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        Rect::new(self.x + dx, self.y + dy, self.width, self.height)
    }

    /// The overlapping region of two rectangles, if any.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let x1 = self.x.max(other.x);
        let y1 = self.y.max(other.y);
        let x2 = (self.x + self.width).min(other.x + other.width);
        let y2 = (self.y + self.height).min(other.y + other.height);
        if x2 > x1 && y2 > y1 {
            Some(Rect::new(x1, y1, x2 - x1, y2 - y1))
        } else {
            None
        }
    }

    /// Whether two rectangles overlap with non-zero area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.intersection(other).is_some()
    }

    /// Whether the point `(px, py)` lies inside the rectangle.
    pub fn contains_point(&self, px: i64, py: i64) -> bool {
        px >= self.x && px < self.x + self.width && py >= self.y && py < self.y + self.height
    }

    /// Centre of the rectangle.
    pub fn center(&self) -> (i64, i64) {
        (self.x + self.width / 2, self.y + self.height / 2)
    }

    /// Euclidean distance between the centres of two rectangles, in pixels.
    pub fn center_distance(&self, other: &Rect) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        (((ax - bx).pow(2) + (ay - by).pow(2)) as f64).sqrt()
    }
}

/// The visible viewport: a fixed-size window over the document that moves
/// vertically as the user scrolls.
///
/// # Examples
///
/// ```
/// use pes_dom::geometry::{Rect, Viewport};
///
/// let mut vp = Viewport::phone();
/// let below_fold = Rect::new(0, 2_000, 360, 100);
/// assert!(!vp.is_visible(&below_fold));
/// vp.scroll_by(1_900);
/// assert!(vp.is_visible(&below_fold));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Viewport {
    width: i64,
    height: i64,
    scroll_y: i64,
}

impl Viewport {
    /// Creates a viewport of the given size with the scroll offset at zero.
    /// Non-positive dimensions are clamped to 1.
    pub fn new(width: i64, height: i64) -> Self {
        Viewport {
            width: width.max(1),
            height: height.max(1),
            scroll_y: 0,
        }
    }

    /// A typical phone-sized viewport (360 × 640 CSS pixels), matching the
    /// class of devices (Galaxy S4) evaluated in the paper.
    pub fn phone() -> Self {
        Viewport::new(360, 640)
    }

    /// Viewport width.
    pub fn width(&self) -> i64 {
        self.width
    }

    /// Viewport height.
    pub fn height(&self) -> i64 {
        self.height
    }

    /// Current vertical scroll offset.
    pub fn scroll_y(&self) -> i64 {
        self.scroll_y
    }

    /// Viewport area in square pixels.
    pub fn area(&self) -> i64 {
        self.width * self.height
    }

    /// The viewport as a rectangle in document coordinates.
    pub fn rect(&self) -> Rect {
        Rect::new(0, self.scroll_y, self.width, self.height)
    }

    /// Scrolls by `dy` pixels (negative scrolls up); the offset never goes
    /// negative.
    pub fn scroll_by(&mut self, dy: i64) {
        self.scroll_y = (self.scroll_y + dy).max(0);
    }

    /// Sets the absolute scroll offset (clamped at zero).
    pub fn scroll_to(&mut self, y: i64) {
        self.scroll_y = y.max(0);
    }

    /// Whether any part of `rect` is inside the viewport.
    pub fn is_visible(&self, rect: &Rect) -> bool {
        self.rect().intersects(rect)
    }

    /// The on-screen area of `rect`, in square pixels.
    pub fn visible_area(&self, rect: &Rect) -> i64 {
        self.rect()
            .intersection(rect)
            .map(|r| r.area())
            .unwrap_or(0)
    }
}

impl Default for Viewport {
    fn default() -> Self {
        Viewport::phone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_area_and_emptiness() {
        assert_eq!(Rect::new(0, 0, 10, 10).area(), 100);
        assert!(Rect::EMPTY.is_empty());
        assert!(Rect::new(5, 5, 0, 10).is_empty());
        assert!(Rect::new(5, 5, -3, 10).is_empty());
    }

    #[test]
    fn rect_intersection_cases() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(5, 5, 10, 10);
        let c = Rect::new(20, 20, 5, 5);
        assert_eq!(a.intersection(&b), Some(Rect::new(5, 5, 5, 5)));
        assert_eq!(a.intersection(&c), None);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Touching edges do not count as intersecting.
        let d = Rect::new(10, 0, 5, 5);
        assert!(!a.intersects(&d));
    }

    #[test]
    fn rect_contains_point_and_center() {
        let r = Rect::new(10, 10, 20, 20);
        assert!(r.contains_point(10, 10));
        assert!(r.contains_point(29, 29));
        assert!(!r.contains_point(30, 30));
        assert_eq!(r.center(), (20, 20));
        assert_eq!(r.center_distance(&r), 0.0);
        let other = Rect::new(10, 50, 20, 20);
        assert!((r.center_distance(&other) - 40.0).abs() < 1e-9);
    }

    #[test]
    fn rect_translation() {
        let r = Rect::new(0, 0, 5, 5).translated(3, -2);
        assert_eq!(r, Rect::new(3, -2, 5, 5));
    }

    #[test]
    fn viewport_scrolling_and_visibility() {
        let mut vp = Viewport::new(360, 640);
        let top = Rect::new(0, 0, 360, 100);
        let bottom = Rect::new(0, 3_000, 360, 100);
        assert!(vp.is_visible(&top));
        assert!(!vp.is_visible(&bottom));
        vp.scroll_by(2_900);
        assert!(!vp.is_visible(&top));
        assert!(vp.is_visible(&bottom));
        vp.scroll_by(-10_000);
        assert_eq!(vp.scroll_y(), 0);
        vp.scroll_to(500);
        assert_eq!(vp.scroll_y(), 500);
    }

    #[test]
    fn viewport_visible_area_is_clipped() {
        let vp = Viewport::new(100, 100);
        let half_in = Rect::new(50, 50, 100, 100);
        assert_eq!(vp.visible_area(&half_in), 2_500);
        assert_eq!(vp.visible_area(&Rect::new(200, 200, 10, 10)), 0);
    }

    #[test]
    fn degenerate_viewport_dimensions_are_clamped() {
        let vp = Viewport::new(0, -5);
        assert_eq!(vp.width(), 1);
        assert_eq!(vp.height(), 1);
    }
}
