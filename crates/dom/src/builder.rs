//! A fluent builder for realistic mobile-Web page DOMs.
//!
//! The workload crate uses [`PageBuilder`] to construct the 18 application
//! DOMs (news front pages, search pages, video pages, shopping pages...) with
//! controllable amounts of clickable area, links, collapsible menus and
//! forms — the knobs that drive both the Table 1 features and the LNES.

use std::sync::Arc;

use crate::events::EventType;
use crate::geometry::{Rect, Viewport};
use crate::semantic::SemanticTree;
use crate::tree::{CallbackEffect, DomTree, NodeId, NodeKind};

/// A fully built page: the DOM tree, its Semantic Tree, and the node groups
/// that the workload generator needs to target interactions at.
#[derive(Debug, Clone, PartialEq)]
pub struct BuiltPage {
    /// The page DOM, shared immutably. Sessions that need to mutate the DOM
    /// (the predictor's `SessionState`) hold their own handle and clone
    /// copy-on-write, so a page built once can back any number of concurrent
    /// replays without per-replay tree copies. The tree's
    /// [`crate::tree::TreeStamp`] travels with every such clone: incremental
    /// analyzer caches keyed on the stamp stay valid across unmutated clones
    /// and self-invalidate the moment a copy-on-write clone diverges.
    pub tree: Arc<DomTree>,
    /// The Semantic Tree memoizing every listener's effect.
    pub semantic: SemanticTree,
    /// Navigation links (header plus article links).
    pub links: Vec<NodeId>,
    /// Non-navigating buttons (like/expand/play controls).
    pub buttons: Vec<NodeId>,
    /// Disclosure buttons that toggle a menu.
    pub menu_buttons: Vec<NodeId>,
    /// Menu items (hidden until their menu is expanded).
    pub menu_items: Vec<NodeId>,
    /// Form submit buttons.
    pub submit_buttons: Vec<NodeId>,
    /// Total document height in pixels.
    pub document_height: i64,
}

impl BuiltPage {
    /// All interactive nodes, regardless of group.
    pub fn interactive_nodes(&self) -> Vec<NodeId> {
        let mut all = Vec::new();
        all.extend(&self.links);
        all.extend(&self.buttons);
        all.extend(&self.menu_buttons);
        all.extend(&self.menu_items);
        all.extend(&self.submit_buttons);
        all
    }
}

/// Fluent page builder. Sections are stacked vertically in call order.
///
/// # Examples
///
/// ```
/// use pes_dom::PageBuilder;
///
/// let page = PageBuilder::new(360)
///     .nav_bar(4)
///     .hero_image(200)
///     .article_list(10, true)
///     .collapsible_menu(5)
///     .search_form()
///     .build();
/// assert!(!page.links.is_empty());
/// assert!(!page.menu_items.is_empty());
/// assert!(page.document_height > 640);
/// ```
#[derive(Debug, Clone)]
pub struct PageBuilder {
    tree: DomTree,
    width: i64,
    cursor_y: i64,
    links: Vec<NodeId>,
    buttons: Vec<NodeId>,
    menu_buttons: Vec<NodeId>,
    menu_items: Vec<NodeId>,
    submit_buttons: Vec<NodeId>,
}

impl PageBuilder {
    /// Starts a page of the given CSS-pixel width (typically the viewport
    /// width; non-positive values are clamped to 1).
    pub fn new(width: i64) -> Self {
        PageBuilder {
            tree: DomTree::new(),
            width: width.max(1),
            cursor_y: 0,
            links: Vec::new(),
            buttons: Vec::new(),
            menu_buttons: Vec::new(),
            menu_items: Vec::new(),
            submit_buttons: Vec::new(),
        }
    }

    fn attach(&mut self, id: NodeId) {
        let root = self.tree.root();
        self.tree
            .append_child(root, id)
            .expect("builder-created nodes are always attachable");
    }

    /// A horizontal navigation bar with `n_links` evenly sized links.
    pub fn nav_bar(mut self, n_links: usize) -> Self {
        let n = n_links.max(1) as i64;
        let height = 48;
        let link_width = self.width / n;
        for i in 0..n {
            let rect = Rect::new(i * link_width, self.cursor_y, link_width - 4, height);
            let link = self
                .tree
                .create_labelled_node(NodeKind::Link, rect, format!("nav-{i}"));
            self.attach(link);
            self.tree
                .add_listener(link, EventType::Click, CallbackEffect::Navigate)
                .expect("fresh node");
            self.tree
                .add_listener(link, EventType::TouchStart, CallbackEffect::Navigate)
                .expect("fresh node");
            self.links.push(link);
        }
        self.cursor_y += height + 8;
        self
    }

    /// A full-width hero image of the given height (non-interactive).
    pub fn hero_image(mut self, height: i64) -> Self {
        let rect = Rect::new(0, self.cursor_y, self.width, height.max(1));
        let img = self
            .tree
            .create_labelled_node(NodeKind::Image, rect, "hero");
        self.attach(img);
        self.cursor_y += height.max(1) + 8;
        self
    }

    /// A vertical list of `n` article teasers, each a link; when
    /// `with_images` is set every other teaser also carries a thumbnail.
    pub fn article_list(mut self, n: usize, with_images: bool) -> Self {
        let row_height = 96;
        for i in 0..n {
            let y = self.cursor_y;
            if with_images && i % 2 == 0 {
                let thumb = self.tree.create_labelled_node(
                    NodeKind::Image,
                    Rect::new(0, y, 96, row_height - 8),
                    format!("thumb-{i}"),
                );
                self.attach(thumb);
            }
            let link_x = if with_images && i % 2 == 0 { 104 } else { 0 };
            let rect = Rect::new(link_x, y, self.width - link_x, row_height - 8);
            let link = self
                .tree
                .create_labelled_node(NodeKind::Link, rect, format!("article-{i}"));
            self.attach(link);
            self.tree
                .add_listener(link, EventType::Click, CallbackEffect::Navigate)
                .expect("fresh node");
            self.tree
                .add_listener(link, EventType::TouchStart, CallbackEffect::Navigate)
                .expect("fresh node");
            self.links.push(link);
            self.cursor_y += row_height;
        }
        self.cursor_y += 8;
        self
    }

    /// A row of `n` non-navigating action buttons (like, share, play...).
    pub fn button_row(mut self, n: usize) -> Self {
        let n_i = n.max(1) as i64;
        let height = 44;
        let button_width = self.width / n_i;
        for i in 0..n_i {
            let rect = Rect::new(i * button_width, self.cursor_y, button_width - 6, height);
            let button =
                self.tree
                    .create_labelled_node(NodeKind::Button, rect, format!("action-{i}"));
            self.attach(button);
            self.tree
                .add_listener(button, EventType::Click, CallbackEffect::MutateContent)
                .expect("fresh node");
            self.tree
                .add_listener(button, EventType::TouchStart, CallbackEffect::MutateContent)
                .expect("fresh node");
            self.buttons.push(button);
        }
        self.cursor_y += height + 8;
        self
    }

    /// A collapsible menu (the Fig. 7 pattern): a disclosure button plus a
    /// hidden menu with `n_items` navigating items.
    pub fn collapsible_menu(mut self, n_items: usize) -> Self {
        let button_rect = Rect::new(0, self.cursor_y, 140, 44);
        let button = self
            .tree
            .create_labelled_node(NodeKind::Button, button_rect, "menu-toggle");
        self.attach(button);
        self.cursor_y += 48;

        let item_height = 40;
        let n = n_items.max(1) as i64;
        let menu_rect = Rect::new(0, self.cursor_y, self.width, n * item_height);
        let menu = self
            .tree
            .create_labelled_node(NodeKind::Menu, menu_rect, "menu");
        self.attach(menu);
        self.tree.set_displayed(menu, false).expect("fresh node");
        self.tree
            .add_listener(
                button,
                EventType::Click,
                CallbackEffect::ToggleVisibility(menu),
            )
            .expect("fresh node");
        self.tree
            .add_listener(
                button,
                EventType::TouchStart,
                CallbackEffect::ToggleVisibility(menu),
            )
            .expect("fresh node");
        self.menu_buttons.push(button);

        for i in 0..n {
            let rect = Rect::new(
                8,
                self.cursor_y + i * item_height,
                self.width - 16,
                item_height - 4,
            );
            let item =
                self.tree
                    .create_labelled_node(NodeKind::MenuItem, rect, format!("menu-item-{i}"));
            self.tree.append_child(menu, item).expect("menu exists");
            self.tree
                .add_listener(item, EventType::Click, CallbackEffect::Navigate)
                .expect("fresh node");
            self.menu_items.push(item);
        }
        // The collapsed menu takes no vertical space until expanded; keep a
        // small gap so following sections do not overlap the expanded menu's
        // first rows in a confusing way.
        self.cursor_y += 8;
        self
    }

    /// A search/login form: a text input plus a submit button.
    pub fn search_form(mut self) -> Self {
        let form_rect = Rect::new(0, self.cursor_y, self.width, 56);
        let form = self
            .tree
            .create_labelled_node(NodeKind::Form, form_rect, "form");
        self.attach(form);
        let input = self.tree.create_labelled_node(
            NodeKind::Input,
            Rect::new(0, self.cursor_y + 4, self.width - 110, 48),
            "form-input",
        );
        self.tree.append_child(form, input).expect("form exists");
        self.tree
            .add_listener(input, EventType::Click, CallbackEffect::None)
            .expect("fresh node");
        let submit = self.tree.create_labelled_node(
            NodeKind::SubmitButton,
            Rect::new(self.width - 100, self.cursor_y + 4, 100, 48),
            "form-submit",
        );
        self.tree.append_child(form, submit).expect("form exists");
        self.tree
            .add_listener(submit, EventType::Click, CallbackEffect::SubmitForm)
            .expect("fresh node");
        self.tree
            .add_listener(submit, EventType::Submit, CallbackEffect::SubmitForm)
            .expect("fresh node");
        self.submit_buttons.push(submit);
        self.buttons.push(input);
        self.cursor_y += 64;
        self
    }

    /// A full-width embedded video player with a play/pause control.
    pub fn video_player(mut self, height: i64) -> Self {
        let rect = Rect::new(0, self.cursor_y, self.width, height.max(1));
        let video = self
            .tree
            .create_labelled_node(NodeKind::Video, rect, "video");
        self.attach(video);
        self.tree
            .add_listener(video, EventType::Click, CallbackEffect::MutateContent)
            .expect("fresh node");
        self.tree
            .add_listener(video, EventType::TouchStart, CallbackEffect::MutateContent)
            .expect("fresh node");
        self.buttons.push(video);
        self.cursor_y += height.max(1) + 8;
        self
    }

    /// A block of plain, non-interactive text content of the given height.
    pub fn text_block(mut self, height: i64) -> Self {
        let rect = Rect::new(0, self.cursor_y, self.width, height.max(1));
        let text = self.tree.create_labelled_node(NodeKind::Text, rect, "text");
        self.attach(text);
        self.cursor_y += height.max(1) + 8;
        self
    }

    /// Finalises the page: registers document-level scroll listeners when the
    /// content is taller than a phone viewport, builds the Semantic Tree and
    /// returns the [`BuiltPage`].
    pub fn build(mut self) -> BuiltPage {
        let root = self.tree.root();
        if self.cursor_y > Viewport::phone().height() {
            self.tree
                .add_listener(root, EventType::Scroll, CallbackEffect::ScrollBy(480))
                .expect("root exists");
            self.tree
                .add_listener(root, EventType::TouchMove, CallbackEffect::ScrollBy(240))
                .expect("root exists");
        }
        let semantic = SemanticTree::build(&self.tree);
        let document_height = self.tree.document_height();
        BuiltPage {
            tree: Arc::new(self.tree),
            semantic,
            links: self.links,
            buttons: self.buttons,
            menu_buttons: self.menu_buttons,
            menu_items: self.menu_items,
            submit_buttons: self.submit_buttons,
            document_height,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::DomAnalyzer;

    fn news_page() -> BuiltPage {
        PageBuilder::new(360)
            .nav_bar(5)
            .hero_image(180)
            .article_list(12, true)
            .collapsible_menu(6)
            .button_row(3)
            .search_form()
            .text_block(800)
            .build()
    }

    #[test]
    fn builder_produces_all_section_groups() {
        let page = news_page();
        assert_eq!(page.links.len(), 5 + 12);
        assert_eq!(page.menu_buttons.len(), 1);
        assert_eq!(page.menu_items.len(), 6);
        assert_eq!(page.submit_buttons.len(), 1);
        assert!(page.buttons.len() >= 3);
        assert!(page.document_height > 1_000);
        assert_eq!(
            page.interactive_nodes().len(),
            page.links.len()
                + page.buttons.len()
                + page.menu_buttons.len()
                + page.menu_items.len()
                + page.submit_buttons.len()
        );
    }

    #[test]
    fn long_pages_get_document_level_scroll_listeners() {
        let page = news_page();
        let root = page.tree.root();
        assert!(page
            .tree
            .node(root)
            .unwrap()
            .listener(EventType::Scroll)
            .is_some());
        assert!(page
            .tree
            .node(root)
            .unwrap()
            .listener(EventType::TouchMove)
            .is_some());
    }

    #[test]
    fn short_pages_do_not_scroll() {
        let page = PageBuilder::new(360).nav_bar(3).build();
        let root = page.tree.root();
        assert!(page
            .tree
            .node(root)
            .unwrap()
            .listener(EventType::Scroll)
            .is_none());
        assert!(
            !DomAnalyzer::new()
                .viewport_features(&page.tree, &Viewport::phone())
                .scrollable
        );
    }

    #[test]
    fn menu_items_start_hidden_and_expand_on_toggle() {
        let page = news_page();
        let vp = Viewport::phone();
        let mut tree = (*page.tree).clone();
        let item = page.menu_items[0];
        assert!(!tree.is_effectively_displayed(item));
        let button = page.menu_buttons[0];
        let effect = tree
            .node(button)
            .unwrap()
            .listener(EventType::Click)
            .unwrap();
        let mut scratch_vp = vp;
        tree.apply_effect(effect, &mut scratch_vp).unwrap();
        assert!(tree.is_effectively_displayed(item));
    }

    #[test]
    fn built_page_features_are_plausible() {
        let page = news_page();
        let features = DomAnalyzer::new().viewport_features(&page.tree, &Viewport::phone());
        assert!(features.clickable_region_fraction > 0.05);
        assert!(features.clickable_region_fraction <= 1.0);
        assert!(features.visible_link_count > 0);
        assert!(features.scrollable);
    }

    #[test]
    fn semantic_tree_covers_every_listener() {
        let page = news_page();
        let listener_count: usize = page
            .tree
            .iter()
            .map(|(_, node)| node.listeners().count())
            .sum();
        assert_eq!(page.semantic.len(), listener_count);
    }

    #[test]
    fn degenerate_builder_inputs_are_clamped() {
        let page = PageBuilder::new(0)
            .nav_bar(0)
            .hero_image(-5)
            .article_list(0, false)
            .button_row(0)
            .collapsible_menu(0)
            .text_block(-1)
            .build();
        // One nav link, one action button, one menu with one item.
        assert_eq!(page.links.len(), 1);
        assert_eq!(page.menu_items.len(), 1);
        assert!(page.document_height >= 1);
    }
}
