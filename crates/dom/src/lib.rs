//! # pes-dom — DOM tree, Semantic Tree and Likely-Next-Event-Set analysis
//!
//! The DOM substrate of the PES reproduction (Feng & Zhu, ISCA 2019). PES
//! narrows its event predictions down to the events the application logic
//! actually allows next: it traverses the part of the DOM tree inside the
//! viewport, collects the events registered on visible nodes (the
//! Likely-Next-Event-Set, LNES), and uses a Semantic Tree — memoized callback
//! effects, piggybacked on the Accessibility Tree in the paper — to project
//! what the DOM will look like after a predicted event *without* evaluating
//! its JavaScript callback (Sec. 5.2, Fig. 7).
//!
//! This crate provides:
//!
//! * [`DomTree`] / [`DomNode`] — an arena DOM with geometry, CSS display
//!   state and event listeners annotated with [`CallbackEffect`]s,
//! * [`SemanticTree`] — the memoized effect table and hypothetical-apply,
//! * [`DomAnalyzer`] — LNES computation, post-event LNES projection and the
//!   application-inherent features of Table 1,
//! * [`IncrementalAnalyzer`] — the same features and LNES type bitmask
//!   maintained as deltas on scroll/toggle events (validated against the
//!   tree's [`tree::TreeStamp`]), the per-prediction-step fast path,
//! * [`PageBuilder`] — realistic page construction used by the workload
//!   generator.
//!
//! # Examples
//!
//! ```
//! use pes_dom::{DomAnalyzer, EventType, PageBuilder};
//! use pes_dom::geometry::Viewport;
//!
//! let page = PageBuilder::new(360)
//!     .nav_bar(4)
//!     .collapsible_menu(5)
//!     .article_list(8, true)
//!     .build();
//!
//! let analyzer = DomAnalyzer::new();
//! let lnes = analyzer.lnes(&page.tree, &Viewport::phone());
//! assert!(lnes.allows(EventType::Click));
//!
//! // Project the LNES past a predicted click on the menu toggle: the menu
//! // items become possible targets even though the callback never ran.
//! let after = analyzer
//!     .lnes_after(
//!         &page.tree,
//!         &Viewport::phone(),
//!         &page.semantic,
//!         &[pes_dom::PossibleEvent { node: page.menu_buttons[0], event: EventType::Click }],
//!     )
//!     .unwrap();
//! assert!(after.nodes_for(EventType::Click).contains(&page.menu_items[0]));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyzer;
pub mod builder;
pub mod error;
pub mod events;
pub mod geometry;
pub mod semantic;
pub mod tree;

pub use analyzer::{
    DomAnalyzer, IncrementalAnalyzer, IncrementalStats, Lnes, PossibleEvent, ViewportFeatures,
};
pub use builder::{BuiltPage, PageBuilder};
pub use error::DomError;
pub use events::{EventType, EventTypeSet, Interaction};
pub use geometry::{Rect, Viewport};
pub use semantic::{SemanticEntry, SemanticRole, SemanticTree};
pub use tree::{CallbackEffect, DomNode, DomTree, NodeId, NodeKind, TreeStamp};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DomTree>();
        assert_send_sync::<SemanticTree>();
        assert_send_sync::<Lnes>();
        assert_send_sync::<BuiltPage>();
        assert_send_sync::<DomError>();
    }

    #[test]
    fn end_to_end_page_analysis_pipeline() {
        let page = PageBuilder::new(360)
            .nav_bar(3)
            .article_list(6, false)
            .search_form()
            .text_block(2_000)
            .build();
        let analyzer = DomAnalyzer::new();
        let vp = Viewport::phone();
        let lnes = analyzer.lnes(&page.tree, &vp);
        // Navigation, tapping, scrolling and submitting are all plausible on
        // this page shape.
        assert!(lnes.allows(EventType::Click));
        assert!(lnes.allows(EventType::Scroll));
        let features = analyzer.viewport_features(&page.tree, &vp);
        assert!(features.clickable_region_fraction > 0.0);
        assert!(features.scrollable);
    }
}
