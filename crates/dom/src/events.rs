//! The DOM-level event vocabulary shared by the whole reproduction.
//!
//! The paper focuses on the three primitive mobile-Web interactions — *load*,
//! *tap* and *move* — plus the form-submission events that appear in its
//! running example (Sec. 2, Sec. 5.1). Different concrete DOM events can be
//! manifestations of the same primitive interaction (e.g. `click` and
//! `touchstart` are both "tap", Sec. 5.5), which is captured by
//! [`EventType::interaction`].

use std::fmt;

/// A user-visible interaction primitive (Sec. 5.5: loading, tapping, moving,
/// plus submit as the form-completion action used in the Sec. 5.1 example).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Interaction {
    /// Page loading / navigation.
    Load,
    /// Discrete pointer interactions (click, touchstart).
    Tap,
    /// Continuous pointer interactions (scroll, touchmove).
    Move,
    /// Form submission.
    Submit,
}

impl Interaction {
    /// All interaction primitives.
    pub const ALL: [Interaction; 4] = [
        Interaction::Load,
        Interaction::Tap,
        Interaction::Move,
        Interaction::Submit,
    ];
}

impl fmt::Display for Interaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Interaction::Load => "load",
            Interaction::Tap => "tap",
            Interaction::Move => "move",
            Interaction::Submit => "submit",
        };
        f.write_str(s)
    }
}

/// A concrete DOM event type that application code can register a listener
/// for and that the predictor learns to anticipate.
///
/// # Examples
///
/// ```
/// use pes_dom::events::{EventType, Interaction};
///
/// assert_eq!(EventType::Click.interaction(), Interaction::Tap);
/// assert_eq!(EventType::TouchMove.interaction(), Interaction::Move);
/// assert!(EventType::Load.is_navigation());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventType {
    /// Initial page load (`onload`).
    Load,
    /// Navigation to a new page within the application.
    Navigate,
    /// Mouse / synthetic click (`onclick`).
    Click,
    /// Touch press (`touchstart`).
    TouchStart,
    /// Continuous touch movement (`touchmove`).
    TouchMove,
    /// Scroll (`onscroll`).
    Scroll,
    /// Form submission (`onsubmit`).
    Submit,
}

impl EventType {
    /// All DOM event types known to the model, in a stable order that the
    /// predictor uses as its class indices.
    pub const ALL: [EventType; 7] = [
        EventType::Load,
        EventType::Navigate,
        EventType::Click,
        EventType::TouchStart,
        EventType::TouchMove,
        EventType::Scroll,
        EventType::Submit,
    ];

    /// The dense class index of this event type (stable across runs; used by
    /// the logistic-regression predictor).
    pub fn class_index(self) -> usize {
        EventType::ALL
            .iter()
            .position(|e| *e == self)
            .expect("every event type is in ALL")
    }

    /// Reconstructs an event type from its class index.
    pub fn from_class_index(index: usize) -> Option<EventType> {
        EventType::ALL.get(index).copied()
    }

    /// The interaction primitive this event type is a manifestation of.
    pub fn interaction(self) -> Interaction {
        match self {
            EventType::Load | EventType::Navigate => Interaction::Load,
            EventType::Click | EventType::TouchStart => Interaction::Tap,
            EventType::TouchMove | EventType::Scroll => Interaction::Move,
            EventType::Submit => Interaction::Submit,
        }
    }

    /// Whether this event navigates to (or loads) a new document.
    pub fn is_navigation(self) -> bool {
        matches!(self, EventType::Load | EventType::Navigate)
    }

    /// Whether this event is a discrete pointer interaction ("tap").
    pub fn is_tap(self) -> bool {
        self.interaction() == Interaction::Tap
    }

    /// Whether this event is a continuous pointer interaction ("move").
    pub fn is_move(self) -> bool {
        self.interaction() == Interaction::Move
    }

    /// Whether issuing this event's side effects over the network could be
    /// irreversible. PES suppresses network requests for speculative events
    /// (Sec. 5.3); submissions and navigations are the event types that carry
    /// such requests.
    pub fn has_network_side_effects(self) -> bool {
        matches!(
            self,
            EventType::Submit | EventType::Navigate | EventType::Load
        )
    }
}

impl fmt::Display for EventType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventType::Load => "onload",
            EventType::Navigate => "navigate",
            EventType::Click => "onclick",
            EventType::TouchStart => "touchstart",
            EventType::TouchMove => "touchmove",
            EventType::Scroll => "onscroll",
            EventType::Submit => "onsubmit",
        };
        f.write_str(s)
    }
}

/// A compact set of [`EventType`]s (one bit per class index).
///
/// The predictor masks its candidate classes with the types present in the
/// Likely-Next-Event-Set on every step of every prediction round; carrying
/// the set as a bitmask keeps that hot path allocation-free.
///
/// # Examples
///
/// ```
/// use pes_dom::{EventType, EventTypeSet};
///
/// let mut set = EventTypeSet::EMPTY;
/// set.insert(EventType::Click);
/// assert!(set.contains(EventType::Click));
/// assert!(!set.contains(EventType::Scroll));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![EventType::Click]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EventTypeSet(u8);

impl EventTypeSet {
    /// The empty set.
    pub const EMPTY: EventTypeSet = EventTypeSet(0);

    /// The set containing every event type. (`u8::MAX >> (8 - len)` rather
    /// than `(1 << len) - 1` so the mask only fails to compile when the
    /// event vocabulary genuinely outgrows the `u8` — at 9 variants, not 8.)
    pub const ALL: EventTypeSet = EventTypeSet(u8::MAX >> (8 - EventType::ALL.len()));

    /// Adds an event type to the set.
    pub fn insert(&mut self, event: EventType) {
        self.0 |= 1 << event.class_index();
    }

    /// The union of two sets (used by the incremental analyzer to merge the
    /// visible-node mask with the document-level scroll/navigate bits).
    pub fn union(self, other: EventTypeSet) -> EventTypeSet {
        EventTypeSet(self.0 | other.0)
    }

    /// Whether the set contains the event type.
    pub fn contains(self, event: EventType) -> bool {
        self.0 & (1 << event.class_index()) != 0
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of event types in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// The member types in class-index order.
    pub fn iter(self) -> impl Iterator<Item = EventType> {
        EventType::ALL
            .into_iter()
            .filter(move |e| self.contains(*e))
    }
}

impl FromIterator<EventType> for EventTypeSet {
    fn from_iter<I: IntoIterator<Item = EventType>>(iter: I) -> Self {
        let mut set = EventTypeSet::EMPTY;
        for e in iter {
            set.insert(e);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn class_indices_are_dense_and_stable() {
        let mut seen = HashSet::new();
        for (i, e) in EventType::ALL.iter().enumerate() {
            assert_eq!(e.class_index(), i);
            assert_eq!(EventType::from_class_index(i), Some(*e));
            assert!(seen.insert(i));
        }
        assert_eq!(EventType::from_class_index(EventType::ALL.len()), None);
    }

    #[test]
    fn interaction_mapping_matches_the_paper() {
        assert_eq!(EventType::Click.interaction(), Interaction::Tap);
        assert_eq!(EventType::TouchStart.interaction(), Interaction::Tap);
        assert_eq!(EventType::Scroll.interaction(), Interaction::Move);
        assert_eq!(EventType::TouchMove.interaction(), Interaction::Move);
        assert_eq!(EventType::Load.interaction(), Interaction::Load);
        assert_eq!(EventType::Navigate.interaction(), Interaction::Load);
        assert_eq!(EventType::Submit.interaction(), Interaction::Submit);
    }

    #[test]
    fn navigation_and_network_side_effect_flags() {
        assert!(EventType::Load.is_navigation());
        assert!(EventType::Navigate.is_navigation());
        assert!(!EventType::Click.is_navigation());
        assert!(EventType::Submit.has_network_side_effects());
        assert!(!EventType::Scroll.has_network_side_effects());
        assert!(!EventType::TouchStart.has_network_side_effects());
    }

    #[test]
    fn tap_and_move_classification() {
        assert!(EventType::Click.is_tap());
        assert!(!EventType::Click.is_move());
        assert!(EventType::Scroll.is_move());
        assert!(!EventType::Scroll.is_tap());
    }

    #[test]
    fn display_names_are_dom_like() {
        assert_eq!(EventType::Click.to_string(), "onclick");
        assert_eq!(EventType::Submit.to_string(), "onsubmit");
        assert_eq!(Interaction::Tap.to_string(), "tap");
    }

    #[test]
    fn event_type_set_behaves_like_a_set() {
        let mut set = EventTypeSet::EMPTY;
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        set.insert(EventType::Scroll);
        set.insert(EventType::Scroll);
        set.insert(EventType::Navigate);
        assert_eq!(set.len(), 2);
        assert!(set.contains(EventType::Scroll));
        assert!(!set.contains(EventType::Click));
        // Iteration is in class-index order, mirroring `EventType::ALL`.
        assert_eq!(
            set.iter().collect::<Vec<_>>(),
            vec![EventType::Navigate, EventType::Scroll]
        );
        assert_eq!(EventTypeSet::ALL.len(), EventType::ALL.len());
        let collected: EventTypeSet = EventType::ALL.into_iter().collect();
        assert_eq!(collected, EventTypeSet::ALL);
    }

    #[test]
    fn event_type_set_union() {
        let mut a = EventTypeSet::EMPTY;
        a.insert(EventType::Click);
        let mut b = EventTypeSet::EMPTY;
        b.insert(EventType::Scroll);
        let ab = a.union(b);
        assert!(ab.contains(EventType::Click) && ab.contains(EventType::Scroll));
        assert_eq!(ab.len(), 2);
        assert_eq!(a.union(a), a);
        assert_eq!(
            EventTypeSet::ALL.union(EventTypeSet::EMPTY),
            EventTypeSet::ALL
        );
    }
}
