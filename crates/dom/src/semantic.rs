//! The Semantic Tree (Sec. 5.2, Sec. 5.5).
//!
//! PES needs to know what the DOM will look like *after* a predicted event
//! executes, without actually running the event's JavaScript callback — e.g.
//! clicking a "menu" button makes the menu's items visible, which changes the
//! set of events that can possibly come next. The paper piggybacks this on
//! the browser's Accessibility Tree: during parsing it memoizes, per node and
//! per event, the semantic effect of the callback. [`SemanticTree`] is that
//! memoized structure.

use std::collections::BTreeMap;

use crate::error::DomError;
use crate::events::EventType;
use crate::geometry::Viewport;
use crate::tree::{CallbackEffect, DomTree, NodeId};

/// The semantic role of a node as exposed by the Accessibility Tree: enough
/// to tell "a clickable button that toggles a dropdown" apart from "a piece
/// of text" (Sec. 5.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SemanticRole {
    /// Not interactive at all.
    Static,
    /// A clickable control with no structural effect.
    Control,
    /// A control that expands/collapses another subtree.
    DisclosureButton,
    /// A navigation link.
    Link,
    /// A form submission control.
    SubmitControl,
    /// A scrollable region.
    ScrollRegion,
}

/// One entry of the Semantic Tree: the memoized effect of an event listener.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SemanticEntry {
    /// The node the listener is registered on.
    pub node: NodeId,
    /// The event type the listener reacts to.
    pub event: EventType,
    /// The memoized effect of the callback.
    pub effect: CallbackEffect,
    /// The semantic role inferred for the node.
    pub role: SemanticRole,
}

/// The Semantic Tree: a per-node, per-event memoization of callback effects,
/// built once from the [`DomTree`] ("during parsing") and then queried
/// statically by the DOM analyzer.
///
/// # Examples
///
/// ```
/// use pes_dom::{CallbackEffect, DomTree, EventType, NodeKind, SemanticTree};
/// use pes_dom::geometry::Rect;
///
/// let mut tree = DomTree::new();
/// let root = tree.root();
/// let button = tree.create_node(NodeKind::Button, Rect::new(0, 0, 80, 40));
/// let menu = tree.create_node(NodeKind::Menu, Rect::new(0, 40, 200, 100));
/// tree.append_child(root, button).unwrap();
/// tree.append_child(root, menu).unwrap();
/// tree.add_listener(button, EventType::Click, CallbackEffect::ToggleVisibility(menu)).unwrap();
///
/// let semantic = SemanticTree::build(&tree);
/// assert_eq!(
///     semantic.effect_of(button, EventType::Click),
///     Some(CallbackEffect::ToggleVisibility(menu))
/// );
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SemanticTree {
    entries: BTreeMap<(NodeId, EventType), SemanticEntry>,
}

impl SemanticTree {
    /// Builds the Semantic Tree from a DOM tree by memoizing every
    /// registered listener's effect and inferring its role.
    pub fn build(tree: &DomTree) -> Self {
        let mut entries = BTreeMap::new();
        for (id, node) in tree.iter() {
            for (event, effect) in node.listeners() {
                let role = match effect {
                    CallbackEffect::ToggleVisibility(_) => SemanticRole::DisclosureButton,
                    CallbackEffect::Navigate => SemanticRole::Link,
                    CallbackEffect::SubmitForm => SemanticRole::SubmitControl,
                    CallbackEffect::ScrollBy(_) => SemanticRole::ScrollRegion,
                    CallbackEffect::None | CallbackEffect::MutateContent => SemanticRole::Control,
                };
                entries.insert(
                    (id, event),
                    SemanticEntry {
                        node: id,
                        event,
                        effect,
                        role,
                    },
                );
            }
        }
        SemanticTree { entries }
    }

    /// Number of memoized listener entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the tree memoizes no listeners at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The memoized effect of triggering `event` on `node`, if a listener
    /// exists.
    pub fn effect_of(&self, node: NodeId, event: EventType) -> Option<CallbackEffect> {
        self.entries.get(&(node, event)).map(|e| e.effect)
    }

    /// The semantic role inferred for `node` when handling `event`.
    pub fn role_of(&self, node: NodeId, event: EventType) -> Option<SemanticRole> {
        self.entries.get(&(node, event)).map(|e| e.role)
    }

    /// Iterates over all memoized entries.
    pub fn iter(&self) -> impl Iterator<Item = &SemanticEntry> + '_ {
        self.entries.values()
    }

    /// Entries whose role matches `role`.
    pub fn entries_with_role(&self, role: SemanticRole) -> Vec<&SemanticEntry> {
        self.entries.values().filter(|e| e.role == role).collect()
    }

    /// Statically applies the memoized effect of `(node, event)` to a copy of
    /// the DOM state, so that the analyzer can compute the post-event LNES
    /// without evaluating the callback (the Fig. 7 workflow). The provided
    /// `tree` and `viewport` are mutated in place; callers pass clones when
    /// exploring hypothetical futures.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::NoListener`] when no listener is memoized for the
    /// pair, or any error from applying the effect to the tree.
    pub fn apply_hypothetical(
        &self,
        tree: &mut DomTree,
        viewport: &mut Viewport,
        node: NodeId,
        event: EventType,
    ) -> Result<bool, DomError> {
        let effect = self
            .effect_of(node, event)
            .ok_or(DomError::NoListener(node.index(), event))?;
        tree.apply_effect(effect, viewport)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::tree::NodeKind;

    fn menu_page() -> (DomTree, NodeId, NodeId, NodeId) {
        let mut tree = DomTree::new();
        let root = tree.root();
        let button = tree.create_node(NodeKind::Button, Rect::new(0, 0, 80, 40));
        let menu = tree.create_node(NodeKind::Menu, Rect::new(0, 40, 200, 120));
        let item = tree.create_node(NodeKind::MenuItem, Rect::new(0, 40, 200, 40));
        tree.append_child(root, button).unwrap();
        tree.append_child(root, menu).unwrap();
        tree.append_child(menu, item).unwrap();
        tree.add_listener(
            button,
            EventType::Click,
            CallbackEffect::ToggleVisibility(menu),
        )
        .unwrap();
        tree.add_listener(item, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(
            tree.root(),
            EventType::Scroll,
            CallbackEffect::ScrollBy(300),
        )
        .unwrap();
        tree.set_displayed(menu, false).unwrap();
        (tree, button, menu, item)
    }

    #[test]
    fn build_memoizes_every_listener() {
        let (tree, button, _menu, item) = menu_page();
        let semantic = SemanticTree::build(&tree);
        assert_eq!(semantic.len(), 3);
        assert!(!semantic.is_empty());
        assert!(semantic.effect_of(button, EventType::Click).is_some());
        assert!(semantic.effect_of(item, EventType::Click).is_some());
        assert!(semantic.effect_of(button, EventType::Scroll).is_none());
    }

    #[test]
    fn roles_are_inferred_from_effects() {
        let (tree, button, _menu, item) = menu_page();
        let semantic = SemanticTree::build(&tree);
        assert_eq!(
            semantic.role_of(button, EventType::Click),
            Some(SemanticRole::DisclosureButton)
        );
        assert_eq!(
            semantic.role_of(item, EventType::Click),
            Some(SemanticRole::Link)
        );
        assert_eq!(
            semantic.role_of(tree.root(), EventType::Scroll),
            Some(SemanticRole::ScrollRegion)
        );
        assert_eq!(semantic.entries_with_role(SemanticRole::Link).len(), 1);
    }

    #[test]
    fn hypothetical_application_reveals_menu_items() {
        let (tree, button, _menu, item) = menu_page();
        let semantic = SemanticTree::build(&tree);
        let mut scratch_tree = tree.clone();
        let mut scratch_vp = Viewport::phone();
        assert!(!scratch_tree.is_effectively_visible(item, &scratch_vp));
        let changed = semantic
            .apply_hypothetical(&mut scratch_tree, &mut scratch_vp, button, EventType::Click)
            .unwrap();
        assert!(changed);
        assert!(scratch_tree.is_effectively_visible(item, &scratch_vp));
        // The original DOM is untouched — the whole point of the Semantic
        // Tree is to avoid executing callbacks on the live page.
        assert!(!tree.is_effectively_visible(item, &Viewport::phone()));
    }

    #[test]
    fn missing_listener_is_an_error() {
        let (tree, button, ..) = menu_page();
        let semantic = SemanticTree::build(&tree);
        let mut scratch = tree.clone();
        let mut vp = Viewport::phone();
        let err = semantic
            .apply_hypothetical(&mut scratch, &mut vp, button, EventType::Submit)
            .unwrap_err();
        assert!(matches!(err, DomError::NoListener(_, EventType::Submit)));
    }

    #[test]
    fn empty_dom_yields_empty_semantic_tree() {
        let tree = DomTree::new();
        let semantic = SemanticTree::build(&tree);
        assert!(semantic.is_empty());
        assert_eq!(semantic.iter().count(), 0);
    }
}
