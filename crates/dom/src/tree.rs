//! The Document Object Model tree.
//!
//! Each node represents an application element (Sec. 5.2); nodes are stored
//! in an arena and addressed by [`NodeId`]. Nodes carry the two pieces of
//! state the PES DOM analyzer cares about: their geometry relative to the
//! viewport and the event listeners registered on them, each annotated with
//! the *semantic effect* of its callback so that the Semantic Tree can
//! determine the post-event DOM state without evaluating JavaScript (Fig. 7).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::DomError;
use crate::events::EventType;
use crate::geometry::{Rect, Viewport};

/// Index of a node in a [`DomTree`] arena.
///
/// # Examples
///
/// ```
/// use pes_dom::{DomTree, NodeKind};
/// use pes_dom::geometry::Rect;
///
/// let mut tree = DomTree::new();
/// let root = tree.root();
/// let id = tree.create_node(NodeKind::Button, Rect::new(0, 0, 100, 40));
/// tree.append_child(root, id).unwrap();
/// assert_eq!(tree.node(id).unwrap().kind(), NodeKind::Button);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Returns the raw arena index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuilds an id from a raw arena index (trace deserialisation). The id
    /// is only meaningful against the tree it originally came from.
    pub fn from_index(index: usize) -> NodeId {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// The element class of a DOM node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeKind {
    /// The document root.
    Document,
    /// A generic block container (`<div>`, `<section>`, ...).
    Container,
    /// Plain text content.
    Text,
    /// An image.
    Image,
    /// A hyperlink (`<a>`).
    Link,
    /// A button (`<button>` or a clickable `<div>`).
    Button,
    /// A collapsible menu container.
    Menu,
    /// An item inside a menu.
    MenuItem,
    /// A form element.
    Form,
    /// A text input field.
    Input,
    /// A form submit button.
    SubmitButton,
    /// An embedded video player.
    Video,
}

impl NodeKind {
    /// Whether elements of this kind are links for the purpose of the
    /// "visible link percentage" feature of Table 1.
    pub fn is_link(self) -> bool {
        matches!(self, NodeKind::Link)
    }

    /// Whether elements of this kind are typically interactive targets.
    pub fn is_interactive(self) -> bool {
        matches!(
            self,
            NodeKind::Link
                | NodeKind::Button
                | NodeKind::MenuItem
                | NodeKind::Input
                | NodeKind::SubmitButton
                | NodeKind::Video
        )
    }
}

/// The memoized semantic effect of an event callback (Sec. 5.2 / Fig. 7): what
/// the DOM will look like after the callback runs, without evaluating it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallbackEffect {
    /// The callback has no structural effect on the DOM.
    None,
    /// The callback toggles the CSS `display` of another node between
    /// `none` and `block` (the collapsible-menu pattern of Fig. 7).
    ToggleVisibility(NodeId),
    /// The callback navigates to a new document.
    Navigate,
    /// The callback scrolls the viewport by the given number of pixels.
    ScrollBy(i64),
    /// The callback submits a form (with a network request).
    SubmitForm,
    /// The callback mutates content in place (text/images change, structure
    /// and visibility do not).
    MutateContent,
}

impl CallbackEffect {
    /// Whether applying this effect mutates the DOM tree itself, as opposed
    /// to only the viewport (or nothing at all). Callers holding a shared
    /// tree use this to avoid a copy-on-write clone for the viewport-only
    /// effects, which dominate real sessions (scrolling, navigation).
    pub fn mutates_tree(self) -> bool {
        matches!(self, CallbackEffect::ToggleVisibility(_))
    }
}

/// One DOM node: kind, geometry, display state, listeners and tree links.
#[derive(Debug, Clone, PartialEq)]
pub struct DomNode {
    kind: NodeKind,
    rect: Rect,
    displayed: bool,
    label: String,
    listeners: BTreeMap<EventType, CallbackEffect>,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
}

impl DomNode {
    fn new(kind: NodeKind, rect: Rect) -> Self {
        DomNode {
            kind,
            rect,
            displayed: true,
            label: String::new(),
            listeners: BTreeMap::new(),
            parent: None,
            children: Vec::new(),
        }
    }

    /// The element class of this node.
    pub fn kind(&self) -> NodeKind {
        self.kind
    }

    /// Layout rectangle in document coordinates.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Whether the node's own CSS display is not `none`. A node is only
    /// *effectively* visible when all its ancestors are displayed too; see
    /// [`DomTree::is_effectively_displayed`].
    pub fn is_displayed(&self) -> bool {
        self.displayed
    }

    /// Optional developer-facing label (used by the builders and debugging).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Event listeners registered on this node along with their memoized
    /// callback effects.
    pub fn listeners(&self) -> impl Iterator<Item = (EventType, CallbackEffect)> + '_ {
        self.listeners.iter().map(|(e, c)| (*e, *c))
    }

    /// The memoized effect for a specific event type, if a listener exists.
    pub fn listener(&self, event: EventType) -> Option<CallbackEffect> {
        self.listeners.get(&event).copied()
    }

    /// Whether any tap-class listener (click / touchstart) is registered.
    pub fn is_clickable(&self) -> bool {
        self.listeners.keys().any(|e| e.is_tap())
    }

    /// The node's parent, if any.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The node's children, in document order.
    pub fn children(&self) -> &[NodeId] {
        &self.children
    }
}

/// An opaque token identifying one content state of one [`DomTree`].
///
/// Stamps are drawn from a process-wide monotone counter: a fresh stamp is
/// assigned at construction and after every mutating operation, while
/// `Clone` copies the source's stamp. Two trees carrying the same stamp are
/// therefore guaranteed to hold identical content (one is an unmutated clone
/// of the other), which is what lets the incremental analyzer validate its
/// cached aggregates across the copy-on-write `Arc<DomTree>` clones the
/// session state performs — without ever diffing trees. Stamps are *not*
/// part of a tree's logical value: equality of trees ignores them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TreeStamp(u64);

impl TreeStamp {
    fn next() -> TreeStamp {
        static COUNTER: AtomicU64 = AtomicU64::new(1);
        TreeStamp(COUNTER.fetch_add(1, Ordering::Relaxed))
    }
}

/// An arena-based DOM tree.
///
/// # Examples
///
/// ```
/// use pes_dom::{CallbackEffect, DomTree, EventType, NodeKind};
/// use pes_dom::geometry::{Rect, Viewport};
///
/// let mut tree = DomTree::new();
/// let root = tree.root();
/// let button = tree.create_node(NodeKind::Button, Rect::new(0, 0, 100, 40));
/// tree.append_child(root, button).unwrap();
/// tree.add_listener(button, EventType::Click, CallbackEffect::None).unwrap();
///
/// let vp = Viewport::phone();
/// assert!(tree.is_effectively_visible(button, &vp));
/// assert!(tree.node(button).unwrap().is_clickable());
/// ```
#[derive(Debug, Clone)]
pub struct DomTree {
    nodes: Vec<DomNode>,
    root: NodeId,
    stamp: TreeStamp,
}

impl PartialEq for DomTree {
    fn eq(&self, other: &Self) -> bool {
        // The stamp is a cache-validity token, not content: two trees built
        // the same way compare equal even though their stamps differ.
        self.nodes == other.nodes && self.root == other.root
    }
}

impl DomTree {
    /// Creates a tree containing only a document root node.
    pub fn new() -> Self {
        let root_node = DomNode::new(NodeKind::Document, Rect::EMPTY);
        DomTree {
            nodes: vec![root_node],
            root: NodeId(0),
            stamp: TreeStamp::next(),
        }
    }

    /// The document root.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The tree's current content stamp. Refreshed by every mutating
    /// operation; preserved by `Clone`. See [`TreeStamp`].
    pub fn stamp(&self) -> TreeStamp {
        self.stamp
    }

    /// Number of nodes in the tree (including the root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree contains only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Creates a detached node and returns its id. Attach it with
    /// [`DomTree::append_child`].
    pub fn create_node(&mut self, kind: NodeKind, rect: Rect) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(DomNode::new(kind, rect));
        self.stamp = TreeStamp::next();
        id
    }

    /// Creates a labelled node.
    pub fn create_labelled_node(
        &mut self,
        kind: NodeKind,
        rect: Rect,
        label: impl Into<String>,
    ) -> NodeId {
        let id = self.create_node(kind, rect);
        self.nodes[id.0].label = label.into();
        self.stamp = TreeStamp::next();
        id
    }

    /// Attaches `child` under `parent`.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] if either id is stale, and
    /// [`DomError::InvalidStructure`] if the child already has a parent, the
    /// child is the root, or the attachment would create a cycle.
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<(), DomError> {
        self.check_id(parent)?;
        self.check_id(child)?;
        if child == self.root {
            return Err(DomError::InvalidStructure(
                "the root cannot be a child".into(),
            ));
        }
        if self.nodes[child.0].parent.is_some() {
            return Err(DomError::InvalidStructure(format!(
                "{child} already has a parent"
            )));
        }
        // Walk up from `parent`; if we reach `child` the attachment would
        // create a cycle.
        let mut cursor = Some(parent);
        while let Some(c) = cursor {
            if c == child {
                return Err(DomError::InvalidStructure(format!(
                    "attaching {child} under {parent} would create a cycle"
                )));
            }
            cursor = self.nodes[c.0].parent;
        }
        self.nodes[child.0].parent = Some(parent);
        self.nodes[parent.0].children.push(child);
        self.stamp = TreeStamp::next();
        Ok(())
    }

    /// Immutable access to a node.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] for stale ids.
    pub fn node(&self, id: NodeId) -> Result<&DomNode, DomError> {
        self.nodes.get(id.0).ok_or(DomError::UnknownNode(id.0))
    }

    fn check_id(&self, id: NodeId) -> Result<(), DomError> {
        if id.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(DomError::UnknownNode(id.0))
        }
    }

    /// Registers an event listener with its memoized callback effect.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] for stale ids.
    pub fn add_listener(
        &mut self,
        id: NodeId,
        event: EventType,
        effect: CallbackEffect,
    ) -> Result<(), DomError> {
        self.check_id(id)?;
        self.nodes[id.0].listeners.insert(event, effect);
        self.stamp = TreeStamp::next();
        Ok(())
    }

    /// Sets a node's CSS display state.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] for stale ids.
    pub fn set_displayed(&mut self, id: NodeId, displayed: bool) -> Result<(), DomError> {
        self.check_id(id)?;
        self.nodes[id.0].displayed = displayed;
        self.stamp = TreeStamp::next();
        Ok(())
    }

    /// Toggles a node's CSS display state (the Fig. 7 pattern) and returns
    /// the new state.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] for stale ids.
    pub fn toggle_displayed(&mut self, id: NodeId) -> Result<bool, DomError> {
        self.check_id(id)?;
        let node = &mut self.nodes[id.0];
        node.displayed = !node.displayed;
        let displayed = node.displayed;
        self.stamp = TreeStamp::next();
        Ok(displayed)
    }

    /// Moves a node (and implicitly its subtree) by `(dx, dy)` document
    /// pixels. Children keep their own rectangles; builders lay nodes out in
    /// absolute coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] for stale ids.
    pub fn translate_node(&mut self, id: NodeId, dx: i64, dy: i64) -> Result<(), DomError> {
        self.check_id(id)?;
        let rect = self.nodes[id.0].rect.translated(dx, dy);
        self.nodes[id.0].rect = rect;
        self.stamp = TreeStamp::next();
        Ok(())
    }

    /// Whether a node and all of its ancestors are displayed.
    pub fn is_effectively_displayed(&self, id: NodeId) -> bool {
        let mut cursor = Some(id);
        while let Some(c) = cursor {
            match self.nodes.get(c.0) {
                Some(node) if node.displayed => cursor = node.parent,
                _ => return false,
            }
        }
        true
    }

    /// Whether a node is displayed and inside the current viewport.
    pub fn is_effectively_visible(&self, id: NodeId, viewport: &Viewport) -> bool {
        self.is_effectively_displayed(id)
            && self
                .nodes
                .get(id.0)
                .map(|n| viewport.is_visible(&n.rect))
                .unwrap_or(false)
    }

    /// Iterates over `(NodeId, &DomNode)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &DomNode)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Depth-first pre-order traversal of the subtree rooted at `id`.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(current) = stack.pop() {
            if current.0 >= self.nodes.len() {
                continue;
            }
            out.push(current);
            // Push children in reverse so the traversal visits them in
            // document order.
            for &child in self.nodes[current.0].children.iter().rev() {
                stack.push(child);
            }
        }
        out
    }

    /// The total document height: the bottom-most extent of any node.
    pub fn document_height(&self) -> i64 {
        self.nodes
            .iter()
            .map(|n| n.rect.y() + n.rect.height())
            .max()
            .unwrap_or(0)
    }

    /// All effectively-visible nodes with at least one tap listener.
    pub fn visible_clickable_nodes(&self, viewport: &Viewport) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, node)| node.is_clickable() && self.is_effectively_visible(*id, viewport))
            .map(|(id, _)| id)
            .collect()
    }

    /// All effectively-visible link nodes.
    pub fn visible_link_nodes(&self, viewport: &Viewport) -> Vec<NodeId> {
        self.iter()
            .filter(|(id, node)| {
                node.kind().is_link() && self.is_effectively_visible(*id, viewport)
            })
            .map(|(id, _)| id)
            .collect()
    }

    /// Applies the semantic effect of a callback to the tree, updating the
    /// viewport when the effect scrolls. Returns `true` when the DOM (or
    /// scroll position) actually changed — the signal the analyzer uses to
    /// recompute the LNES.
    ///
    /// # Errors
    ///
    /// Returns [`DomError::UnknownNode`] if the effect refers to a stale node.
    pub fn apply_effect(
        &mut self,
        effect: CallbackEffect,
        viewport: &mut Viewport,
    ) -> Result<bool, DomError> {
        match effect {
            CallbackEffect::ToggleVisibility(target) => {
                self.toggle_displayed(target)?;
                Ok(true)
            }
            other => Ok(DomTree::apply_viewport_effect(other, viewport)),
        }
    }

    /// Applies the viewport-only part of an effect (the variants for which
    /// [`CallbackEffect::mutates_tree`] is `false`): scrolling moves the
    /// viewport, navigation/submission resets the scroll position (the
    /// document replacement itself is modelled by the workload crate).
    /// Returns `true` when the scroll position changed. Tree-mutating
    /// effects are ignored here — route those through
    /// [`DomTree::apply_effect`].
    pub fn apply_viewport_effect(effect: CallbackEffect, viewport: &mut Viewport) -> bool {
        match effect {
            CallbackEffect::None
            | CallbackEffect::MutateContent
            | CallbackEffect::ToggleVisibility(_) => false,
            CallbackEffect::Navigate | CallbackEffect::SubmitForm => {
                viewport.scroll_to(0);
                true
            }
            CallbackEffect::ScrollBy(dy) => {
                viewport.scroll_by(dy);
                true
            }
        }
    }
}

impl Default for DomTree {
    fn default() -> Self {
        DomTree::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_tree() -> (DomTree, NodeId, NodeId, NodeId) {
        let mut tree = DomTree::new();
        let root = tree.root();
        let button = tree.create_node(NodeKind::Button, Rect::new(0, 0, 100, 40));
        let menu = tree.create_node(NodeKind::Menu, Rect::new(0, 40, 200, 200));
        let item = tree.create_node(NodeKind::MenuItem, Rect::new(0, 40, 200, 40));
        tree.append_child(root, button).unwrap();
        tree.append_child(root, menu).unwrap();
        tree.append_child(menu, item).unwrap();
        tree.add_listener(
            button,
            EventType::Click,
            CallbackEffect::ToggleVisibility(menu),
        )
        .unwrap();
        tree.add_listener(item, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.set_displayed(menu, false).unwrap();
        (tree, button, menu, item)
    }

    #[test]
    fn new_tree_has_a_document_root() {
        let tree = DomTree::new();
        assert_eq!(tree.len(), 1);
        assert!(tree.is_empty());
        assert_eq!(tree.node(tree.root()).unwrap().kind(), NodeKind::Document);
    }

    #[test]
    fn append_child_builds_parent_links() {
        let (tree, button, menu, item) = small_tree();
        assert_eq!(tree.node(button).unwrap().parent(), Some(tree.root()));
        assert_eq!(tree.node(item).unwrap().parent(), Some(menu));
        assert_eq!(tree.node(menu).unwrap().children(), &[item]);
        assert_eq!(tree.len(), 4);
        assert!(!tree.is_empty());
    }

    #[test]
    fn append_child_rejects_double_attachment_and_cycles() {
        let mut tree = DomTree::new();
        let root = tree.root();
        let a = tree.create_node(NodeKind::Container, Rect::EMPTY);
        let b = tree.create_node(NodeKind::Container, Rect::EMPTY);
        tree.append_child(root, a).unwrap();
        tree.append_child(a, b).unwrap();
        assert!(
            tree.append_child(root, b).is_err(),
            "b already has a parent"
        );
        assert!(
            tree.append_child(b, root).is_err(),
            "root cannot be a child"
        );
        let c = tree.create_node(NodeKind::Container, Rect::EMPTY);
        assert!(tree.append_child(NodeId(99), c).is_err());
        assert!(tree.append_child(c, NodeId(99)).is_err());
    }

    #[test]
    fn effective_display_requires_all_ancestors_displayed() {
        let (mut tree, _button, menu, item) = small_tree();
        // The menu is hidden, so its item is not effectively displayed even
        // though the item itself is displayed.
        assert!(tree.node(item).unwrap().is_displayed());
        assert!(!tree.is_effectively_displayed(item));
        tree.set_displayed(menu, true).unwrap();
        assert!(tree.is_effectively_displayed(item));
    }

    #[test]
    fn visibility_requires_viewport_intersection() {
        let mut tree = DomTree::new();
        let root = tree.root();
        let below_fold = tree.create_node(NodeKind::Button, Rect::new(0, 5_000, 100, 40));
        tree.append_child(root, below_fold).unwrap();
        tree.add_listener(below_fold, EventType::Click, CallbackEffect::None)
            .unwrap();
        let mut vp = Viewport::phone();
        assert!(!tree.is_effectively_visible(below_fold, &vp));
        assert!(tree.visible_clickable_nodes(&vp).is_empty());
        vp.scroll_to(4_900);
        assert!(tree.is_effectively_visible(below_fold, &vp));
        assert_eq!(tree.visible_clickable_nodes(&vp), vec![below_fold]);
    }

    #[test]
    fn toggle_visibility_effect_expands_the_menu() {
        let (mut tree, button, menu, item) = small_tree();
        let mut vp = Viewport::phone();
        assert!(!tree.is_effectively_visible(item, &vp));
        let effect = tree
            .node(button)
            .unwrap()
            .listener(EventType::Click)
            .unwrap();
        let changed = tree.apply_effect(effect, &mut vp).unwrap();
        assert!(changed);
        assert!(tree.is_effectively_displayed(menu));
        assert!(tree.is_effectively_visible(item, &vp));
        // Toggling again collapses it.
        tree.apply_effect(effect, &mut vp).unwrap();
        assert!(!tree.is_effectively_visible(item, &vp));
    }

    #[test]
    fn scroll_and_navigate_effects_touch_the_viewport() {
        let mut tree = DomTree::new();
        let mut vp = Viewport::phone();
        assert!(tree
            .apply_effect(CallbackEffect::ScrollBy(300), &mut vp)
            .unwrap());
        assert_eq!(vp.scroll_y(), 300);
        assert!(tree
            .apply_effect(CallbackEffect::Navigate, &mut vp)
            .unwrap());
        assert_eq!(vp.scroll_y(), 0);
        assert!(!tree.apply_effect(CallbackEffect::None, &mut vp).unwrap());
    }

    #[test]
    fn descendants_traversal_is_preorder() {
        let (tree, _button, menu, item) = small_tree();
        let order = tree.descendants(tree.root());
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], tree.root());
        let menu_pos = order.iter().position(|&n| n == menu).unwrap();
        let item_pos = order.iter().position(|&n| n == item).unwrap();
        assert!(menu_pos < item_pos);
    }

    #[test]
    fn document_height_tracks_lowest_node() {
        let (tree, ..) = small_tree();
        assert_eq!(tree.document_height(), 240);
    }

    #[test]
    fn visible_links_are_counted_separately_from_clickables() {
        let mut tree = DomTree::new();
        let root = tree.root();
        let link = tree.create_node(NodeKind::Link, Rect::new(0, 0, 100, 20));
        let button = tree.create_node(NodeKind::Button, Rect::new(0, 30, 100, 20));
        tree.append_child(root, link).unwrap();
        tree.append_child(root, button).unwrap();
        tree.add_listener(link, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(button, EventType::Click, CallbackEffect::None)
            .unwrap();
        let vp = Viewport::phone();
        assert_eq!(tree.visible_link_nodes(&vp), vec![link]);
        assert_eq!(tree.visible_clickable_nodes(&vp).len(), 2);
    }

    #[test]
    fn stamps_track_content_identity() {
        let (mut tree, _button, menu, _item) = small_tree();
        let before = tree.stamp();
        // An unmutated clone carries the same stamp and equal content.
        let snapshot = tree.clone();
        assert_eq!(snapshot.stamp(), before);
        assert_eq!(snapshot, tree);
        // Every mutation refreshes the stamp; logical equality ignores it.
        tree.toggle_displayed(menu).unwrap();
        assert_ne!(tree.stamp(), before);
        assert_ne!(tree, snapshot);
        tree.toggle_displayed(menu).unwrap();
        assert_eq!(tree, snapshot, "content is back; stamps still differ");
        assert_ne!(tree.stamp(), snapshot.stamp());
        // Independently built trees never share a stamp.
        assert_ne!(DomTree::new().stamp(), DomTree::new().stamp());
    }

    #[test]
    fn labelled_nodes_keep_their_labels() {
        let mut tree = DomTree::new();
        let id = tree.create_labelled_node(NodeKind::Button, Rect::EMPTY, "submit");
        assert_eq!(tree.node(id).unwrap().label(), "submit");
    }

    #[test]
    fn stale_ids_are_rejected_everywhere() {
        let mut tree = DomTree::new();
        let stale = NodeId(42);
        let mut vp = Viewport::phone();
        assert!(tree.node(stale).is_err());
        assert!(tree
            .add_listener(stale, EventType::Click, CallbackEffect::None)
            .is_err());
        assert!(tree.set_displayed(stale, false).is_err());
        assert!(tree.toggle_displayed(stale).is_err());
        assert!(tree.translate_node(stale, 1, 1).is_err());
        assert!(tree
            .apply_effect(CallbackEffect::ToggleVisibility(stale), &mut vp)
            .is_err());
        assert!(!tree.is_effectively_displayed(stale));
        assert!(!tree.is_effectively_visible(stale, &vp));
    }
}
