//! The DOM analyzer: Likely-Next-Event-Set (LNES) computation and the
//! application-inherent features of Table 1.
//!
//! The analyzer traverses the part of the DOM tree inside the current
//! viewport and accumulates the set of events registered on visible nodes —
//! the LNES that the event sequence learner predicts from (Sec. 5.2). It can
//! also *project* the LNES past a sequence of hypothetical (predicted)
//! events by statically applying their memoized effects through the
//! [`SemanticTree`], which is what lets PES predict several events ahead.

use crate::error::DomError;
use crate::events::{EventType, EventTypeSet};
use crate::geometry::Viewport;
use crate::semantic::SemanticTree;
use crate::tree::{CallbackEffect, DomTree, NodeId, TreeStamp};

/// One candidate next event: an event type on a concrete (visible) node, or
/// a document-level event such as scrolling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PossibleEvent {
    /// The node the event would fire on (the document root for global
    /// events such as scrolling).
    pub node: NodeId,
    /// The event type.
    pub event: EventType,
}

/// The Likely-Next-Event-Set: all events that the application logic allows as
/// the immediate next event given the current (or projected) DOM state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lnes {
    events: Vec<PossibleEvent>,
}

impl Lnes {
    /// The candidate events, in document order.
    pub fn events(&self) -> &[PossibleEvent] {
        &self.events
    }

    /// Number of candidate events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is possible (an empty or fully hidden page).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether a given event *type* is possible on any node.
    pub fn allows(&self, event: EventType) -> bool {
        self.events.iter().any(|p| p.event == event)
    }

    /// The distinct event types present in the set, in class-index order.
    pub fn event_types(&self) -> Vec<EventType> {
        let mut types: Vec<EventType> = EventType::ALL
            .into_iter()
            .filter(|e| self.allows(*e))
            .collect();
        types.dedup();
        types
    }

    /// The candidate nodes for a given event type.
    pub fn nodes_for(&self, event: EventType) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|p| p.event == event)
            .map(|p| p.node)
            .collect()
    }
}

/// Application-inherent features of the current viewport (the first two rows
/// of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViewportFeatures {
    /// Fraction of the viewport area covered by clickable elements.
    pub clickable_region_fraction: f64,
    /// Fraction of the viewport area covered by visible links.
    pub visible_link_fraction: f64,
    /// Number of clickable elements currently visible.
    pub visible_clickable_count: usize,
    /// Number of link elements currently visible.
    pub visible_link_count: usize,
    /// Whether the document extends beyond the viewport (scrolling possible).
    pub scrollable: bool,
}

/// The DOM analyzer.
///
/// # Examples
///
/// ```
/// use pes_dom::{CallbackEffect, DomAnalyzer, DomTree, EventType, NodeKind, SemanticTree};
/// use pes_dom::geometry::{Rect, Viewport};
///
/// let mut tree = DomTree::new();
/// let root = tree.root();
/// let link = tree.create_node(NodeKind::Link, Rect::new(0, 0, 200, 40));
/// tree.append_child(root, link).unwrap();
/// tree.add_listener(link, EventType::Click, CallbackEffect::Navigate).unwrap();
///
/// let analyzer = DomAnalyzer::new();
/// let lnes = analyzer.lnes(&tree, &Viewport::phone());
/// assert!(lnes.allows(EventType::Click));
/// assert!(!lnes.allows(EventType::Submit));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomAnalyzer {
    include_global_scroll: bool,
}

impl DomAnalyzer {
    /// Creates an analyzer with the default policy: document-level scrolling
    /// is part of the LNES whenever the page is taller than the viewport.
    pub fn new() -> Self {
        DomAnalyzer {
            include_global_scroll: true,
        }
    }

    /// Creates an analyzer that only reports events registered on concrete
    /// DOM nodes (no implicit document-level scroll). Used by ablations.
    pub fn without_global_scroll() -> Self {
        DomAnalyzer {
            include_global_scroll: false,
        }
    }

    /// Computes the LNES for the current DOM state: every event registered on
    /// an effectively-visible node, plus document-level scroll/move events
    /// when the page is scrollable.
    pub fn lnes(&self, tree: &DomTree, viewport: &Viewport) -> Lnes {
        let mut events = Vec::new();
        let mut navigation_possible = false;
        for (id, node) in tree.iter() {
            if !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            for (event, effect) in node.listeners() {
                events.push(PossibleEvent { node: id, event });
                if matches!(
                    effect,
                    crate::tree::CallbackEffect::Navigate | crate::tree::CallbackEffect::SubmitForm
                ) {
                    navigation_possible = true;
                }
            }
        }
        let root = tree.root();
        if self.include_global_scroll
            && tree.document_height() > viewport.height() + viewport.scroll_y()
        {
            for event in [EventType::Scroll, EventType::TouchMove] {
                if !events.iter().any(|p| p.node == root && p.event == event) {
                    events.push(PossibleEvent { node: root, event });
                }
            }
        }
        // A navigation (page replacement) is a possible next event whenever a
        // visible element's callback would navigate or submit: the load it
        // triggers is itself an event the application will have to serve.
        if navigation_possible {
            events.push(PossibleEvent {
                node: root,
                event: EventType::Navigate,
            });
        }
        events.sort();
        events.dedup();
        Lnes { events }
    }

    /// The distinct event *types* of the LNES, as a bitmask. Semantically
    /// identical to `self.lnes(tree, viewport).event_types()` but computed in
    /// one allocation-free pass — this is what the sequence learner consults
    /// on every step of every prediction round.
    pub fn lnes_types(&self, tree: &DomTree, viewport: &Viewport) -> EventTypeSet {
        let mut types = EventTypeSet::EMPTY;
        let mut navigation_possible = false;
        for (id, node) in tree.iter() {
            if !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            for (event, effect) in node.listeners() {
                types.insert(event);
                if matches!(
                    effect,
                    crate::tree::CallbackEffect::Navigate | crate::tree::CallbackEffect::SubmitForm
                ) {
                    navigation_possible = true;
                }
            }
        }
        if self.include_global_scroll
            && tree.document_height() > viewport.height() + viewport.scroll_y()
        {
            types.insert(EventType::Scroll);
            types.insert(EventType::TouchMove);
        }
        if navigation_possible {
            types.insert(EventType::Navigate);
        }
        types
    }

    /// Computes the viewport features of Table 1 for the current DOM state.
    /// One pass over the tree, no intermediate node lists: the learner
    /// extracts these features on every prediction step.
    pub fn viewport_features(&self, tree: &DomTree, viewport: &Viewport) -> ViewportFeatures {
        let viewport_area = viewport.area().max(1) as f64;
        let mut clickable_area: i64 = 0;
        let mut link_area: i64 = 0;
        let mut clickable_count = 0usize;
        let mut link_count = 0usize;
        for (id, node) in tree.iter() {
            let clickable = node.is_clickable();
            let link = node.kind().is_link();
            if !(clickable || link) || !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            let area = viewport.visible_area(&node.rect());
            if clickable {
                clickable_area += area;
                clickable_count += 1;
            }
            if link {
                link_area += area;
                link_count += 1;
            }
        }
        ViewportFeatures {
            clickable_region_fraction: (clickable_area as f64 / viewport_area).clamp(0.0, 1.0),
            visible_link_fraction: (link_area as f64 / viewport_area).clamp(0.0, 1.0),
            visible_clickable_count: clickable_count,
            visible_link_count: link_count,
            scrollable: tree.document_height() > viewport.height() + viewport.scroll_y(),
        }
    }

    /// Computes the LNES *after* a sequence of hypothetical events, by
    /// statically applying their memoized effects to scratch copies of the
    /// DOM state (Sec. 5.2). The live `tree`/`viewport` are not modified.
    ///
    /// Predicted events with no memoized listener are skipped rather than
    /// rejected: the sequence learner may legitimately predict an event whose
    /// handler is a no-op as far as the DOM is concerned.
    ///
    /// # Errors
    ///
    /// Propagates [`DomError`] only for structural failures (stale node ids
    /// inside memoized effects), which indicate a bug in DOM construction.
    pub fn lnes_after(
        &self,
        tree: &DomTree,
        viewport: &Viewport,
        semantic: &SemanticTree,
        hypothetical: &[PossibleEvent],
    ) -> Result<Lnes, DomError> {
        let mut scratch_tree = tree.clone();
        let mut scratch_vp = *viewport;
        for ev in hypothetical {
            match semantic.apply_hypothetical(&mut scratch_tree, &mut scratch_vp, ev.node, ev.event)
            {
                Ok(_) => {}
                Err(DomError::NoListener(..)) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(self.lnes(&scratch_tree, &scratch_vp))
    }
}

// ---------------------------------------------------------------------------
// Incremental analyzer
// ---------------------------------------------------------------------------

/// Running aggregates over the currently visible interactive nodes: exactly
/// the quantities [`DomAnalyzer::viewport_features`] and
/// [`DomAnalyzer::lnes_types`] fold over the whole tree, maintained as
/// integer deltas so a query is O(1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct VisibleAggregates {
    clickable_area: i64,
    link_area: i64,
    clickable_count: usize,
    link_count: usize,
    type_counts: [u32; EventType::ALL.len()],
    nav_count: u32,
}

impl VisibleAggregates {
    fn types(&self) -> EventTypeSet {
        let mut mask = EventTypeSet::EMPTY;
        for (i, &count) in self.type_counts.iter().enumerate() {
            if count > 0 {
                mask.insert(EventType::ALL[i]);
            }
        }
        mask
    }
}

/// One node the incremental analyzer tracks: any node carrying a listener or
/// counting towards the Table 1 clickable/link features. Geometry and
/// listener-derived flags are frozen at (re)build time — they only change
/// through tree mutations, which refresh the [`TreeStamp`] and invalidate the
/// whole state. Only `effectively_displayed` is maintained incrementally (by
/// menu toggles).
#[derive(Debug, Clone)]
struct TrackedNode {
    id: NodeId,
    y0: i64,
    y1: i64,
    /// Horizontal overlap with the (fixed-width) viewport, precomputed:
    /// `max(0, min(x1, W) - max(x0, 0))`.
    x_overlap: i64,
    clickable: bool,
    link: bool,
    types: EventTypeSet,
    /// Whether any listener's memoized effect navigates or submits.
    nav: bool,
    effectively_displayed: bool,
}

/// Counters describing how the incremental analyzer kept itself in sync;
/// used by tests to prove that steady-state sessions run on deltas, not
/// rescans.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Full O(nodes) rebuilds (first query, or a stamp/viewport mismatch).
    pub rebuilds: usize,
    /// Scroll deltas applied by scanning only the scrolled-over band.
    pub scroll_deltas: usize,
    /// Scroll resets answered from the scroll-0 snapshot.
    pub scroll_resets: usize,
    /// Visibility toggles applied to just the toggled subtree.
    pub toggle_deltas: usize,
}

/// Nodes per block of the y-sorted skip index used by scroll deltas.
const Y_INDEX_BLOCK: usize = 16;

#[derive(Debug, Clone)]
struct IncrementalState {
    stamp: TreeStamp,
    vp_width: i64,
    vp_height: i64,
    scroll: i64,
    doc_height: i64,
    nodes: Vec<TrackedNode>,
    /// Tracked-node indices sorted by `y0`.
    order: Vec<u32>,
    /// `max(y1)` per [`Y_INDEX_BLOCK`]-sized block of `order`, letting scroll
    /// deltas skip whole blocks that end above the scrolled-over band.
    block_max_y1: Vec<i64>,
    /// Per potential `ToggleVisibility` target (sorted by id): the tracked
    /// nodes inside its subtree, whose effective display the toggle can flip.
    toggle_subtrees: Vec<(NodeId, Vec<u32>)>,
    /// Mirror of every tree node's own CSS display flag, so effective
    /// display can be recomputed after a toggle without touching node data.
    displayed: Vec<bool>,
    /// Aggregates at the current scroll offset.
    agg: VisibleAggregates,
    /// Aggregates at scroll 0 under the same display state — navigations
    /// reset the scroll constantly, so the top-of-page state is kept warm.
    agg0: VisibleAggregates,
}

/// An incrementally maintained view of one DOM tree + viewport: the same
/// features and LNES type bitmask as [`DomAnalyzer`], but updated by deltas
/// on scroll/toggle events instead of an O(nodes) rescan per query.
///
/// The state self-validates against the tree's [`TreeStamp`]: any mutation
/// that did not go through [`IncrementalAnalyzer::note_toggle`] (including a
/// copy-on-write clone that diverged) changes the stamp and triggers a full
/// rebuild on the next query, so results are always exactly those of the
/// full-scan analyzer — a property pinned by the workspace-level differential
/// proptest.
///
/// # Examples
///
/// ```
/// use pes_dom::{DomAnalyzer, IncrementalAnalyzer, PageBuilder, Viewport};
///
/// let page = PageBuilder::new(360).nav_bar(3).article_list(8, true).text_block(2_000).build();
/// let analyzer = DomAnalyzer::new();
/// let mut inc = IncrementalAnalyzer::new();
/// let mut vp = Viewport::phone();
/// for scroll in [0, 480, 960, 0] {
///     vp.scroll_to(scroll);
///     assert_eq!(
///         inc.viewport_features(&analyzer, &page.tree, &vp),
///         analyzer.viewport_features(&page.tree, &vp),
///     );
///     assert_eq!(
///         inc.lnes_types(&analyzer, &page.tree, &vp),
///         analyzer.lnes_types(&page.tree, &vp),
///     );
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct IncrementalAnalyzer {
    state: Option<IncrementalState>,
    stats: IncrementalStats,
}

impl IncrementalAnalyzer {
    /// Creates an empty analyzer; the first query performs the full build.
    pub fn new() -> Self {
        IncrementalAnalyzer::default()
    }

    /// How the analyzer has kept itself in sync so far.
    pub fn stats(&self) -> IncrementalStats {
        self.stats
    }

    /// The viewport features of Table 1, equal to
    /// [`DomAnalyzer::viewport_features`] on the same `(tree, viewport)`.
    pub fn viewport_features(
        &mut self,
        policy: &DomAnalyzer,
        tree: &DomTree,
        viewport: &Viewport,
    ) -> ViewportFeatures {
        let _ = policy; // features ignore the global-scroll policy, as the full scan does
        let state = self.ensure(tree, viewport);
        let viewport_area = viewport.area().max(1) as f64;
        ViewportFeatures {
            clickable_region_fraction: (state.agg.clickable_area as f64 / viewport_area)
                .clamp(0.0, 1.0),
            visible_link_fraction: (state.agg.link_area as f64 / viewport_area).clamp(0.0, 1.0),
            visible_clickable_count: state.agg.clickable_count,
            visible_link_count: state.agg.link_count,
            scrollable: state.doc_height > viewport.height() + viewport.scroll_y(),
        }
    }

    /// The LNES type bitmask, equal to [`DomAnalyzer::lnes_types`] on the
    /// same `(tree, viewport)` under the given analyzer policy.
    pub fn lnes_types(
        &mut self,
        policy: &DomAnalyzer,
        tree: &DomTree,
        viewport: &Viewport,
    ) -> EventTypeSet {
        let state = self.ensure(tree, viewport);
        let mut types = state.agg.types();
        if policy.include_global_scroll
            && state.doc_height > viewport.height() + viewport.scroll_y()
        {
            let mut global = EventTypeSet::EMPTY;
            global.insert(EventType::Scroll);
            global.insert(EventType::TouchMove);
            types = types.union(global);
        }
        if state.agg.nav_count > 0 {
            types.insert(EventType::Navigate);
        }
        types
    }

    /// Tells the analyzer that `target`'s visibility was just toggled on a
    /// tree whose stamp was `pre` before the toggle. When the analyzer was in
    /// sync with `pre`, only the toggled subtree is re-aggregated; otherwise
    /// the state is left stale and the next query rebuilds.
    pub fn note_toggle(&mut self, pre: TreeStamp, tree: &DomTree, target: NodeId) {
        let Some(state) = self.state.as_mut() else {
            return;
        };
        if state.stamp != pre || target.index() >= state.displayed.len() {
            return; // stale before the toggle: the stamp guard handles it
        }
        let Ok(slot) = state
            .toggle_subtrees
            .binary_search_by_key(&target, |(id, _)| *id)
        else {
            return; // not a known toggle target: fall back to a rebuild
        };
        state.displayed[target.index()] =
            tree.node(target).map(|n| n.is_displayed()).unwrap_or(false);
        // The subtree list is moved out while effective-display flags are
        // recomputed (the borrow checker cannot see the index sets are
        // disjoint from the node table) and restored afterwards.
        let subtree = std::mem::take(&mut state.toggle_subtrees[slot].1);
        for &ti in &subtree {
            let node = &state.nodes[ti as usize];
            let now_displayed = {
                let mut cursor = Some(node.id);
                loop {
                    match cursor {
                        Some(c) => {
                            if !state.displayed[c.index()] {
                                break false;
                            }
                            cursor = tree.node(c).ok().and_then(|n| n.parent());
                        }
                        None => break true,
                    }
                }
            };
            if now_displayed != node.effectively_displayed {
                let sign: i64 = if now_displayed { 1 } else { -1 };
                let (scroll, height) = (state.scroll, state.vp_height);
                Self::apply_node(
                    &state.nodes[ti as usize],
                    &mut state.agg,
                    sign,
                    scroll,
                    height,
                );
                Self::apply_node(&state.nodes[ti as usize], &mut state.agg0, sign, 0, height);
                state.nodes[ti as usize].effectively_displayed = now_displayed;
            }
        }
        state.toggle_subtrees[slot].1 = subtree;
        state.stamp = tree.stamp();
        self.stats.toggle_deltas += 1;
    }

    /// Adds (`sign = 1`) or removes (`sign = -1`) one node's contribution to
    /// the aggregates for the viewport at `scroll`, *as if* the node were
    /// effectively displayed. Callers gate on the display flag.
    fn apply_node(
        node: &TrackedNode,
        agg: &mut VisibleAggregates,
        sign: i64,
        scroll: i64,
        vp_height: i64,
    ) {
        let y_overlap = node.y1.min(scroll + vp_height) - node.y0.max(scroll);
        if node.x_overlap <= 0 || y_overlap <= 0 {
            return;
        }
        let area = node.x_overlap * y_overlap * sign;
        let count = sign as isize;
        if node.clickable {
            agg.clickable_area += area;
            agg.clickable_count = (agg.clickable_count as isize + count) as usize;
        }
        if node.link {
            agg.link_area += area;
            agg.link_count = (agg.link_count as isize + count) as usize;
        }
        for t in node.types.iter() {
            let slot = &mut agg.type_counts[t.class_index()];
            *slot = (*slot as i64 + sign) as u32;
        }
        if node.nav {
            agg.nav_count = (agg.nav_count as i64 + sign) as u32;
        }
    }

    /// Brings the state in sync with `(tree, viewport)`: a no-op when already
    /// synced, a band-limited delta when only the scroll moved, and a full
    /// rebuild when the tree stamp or viewport geometry changed.
    fn ensure(&mut self, tree: &DomTree, viewport: &Viewport) -> &IncrementalState {
        let in_sync = self.state.as_ref().is_some_and(|s| {
            s.stamp == tree.stamp()
                && s.vp_width == viewport.width()
                && s.vp_height == viewport.height()
        });
        if !in_sync {
            self.rebuild(tree, viewport);
        } else {
            let state = self.state.as_mut().expect("state exists when in sync");
            let target = viewport.scroll_y();
            if state.scroll != target {
                if target == 0 {
                    state.agg = state.agg0;
                    self.stats.scroll_resets += 1;
                } else {
                    Self::scroll_delta(state, target);
                    self.stats.scroll_deltas += 1;
                }
                state.scroll = target;
            }
        }
        self.state.as_ref().expect("state was just ensured")
    }

    /// Moves the aggregates from `state.scroll` to `new_scroll` by scanning
    /// only the tracked nodes whose clipped area can differ between the two
    /// viewport positions.
    fn scroll_delta(state: &mut IncrementalState, new_scroll: i64) {
        let (s0, s1, height) = (state.scroll, new_scroll, state.vp_height);
        let band_lo = s0.min(s1);
        let band_hi = s0.max(s1) + height;
        // Nodes strictly inside both viewports keep their full clipped area.
        let inner_lo = s0.max(s1);
        let inner_hi = s0.min(s1) + height;
        let upper = state
            .order
            .partition_point(|&i| state.nodes[i as usize].y0 < band_hi);
        let mut idx = 0;
        while idx < upper {
            let block = idx / Y_INDEX_BLOCK;
            if idx % Y_INDEX_BLOCK == 0
                && state.block_max_y1.get(block).is_some_and(|&m| m <= band_lo)
            {
                idx += Y_INDEX_BLOCK;
                continue;
            }
            let node = &state.nodes[state.order[idx] as usize];
            idx += 1;
            if node.y1 <= band_lo
                || !node.effectively_displayed
                || (node.y0 >= inner_lo && node.y1 <= inner_hi)
            {
                continue;
            }
            Self::apply_node(node, &mut state.agg, -1, s0, height);
            Self::apply_node(node, &mut state.agg, 1, s1, height);
        }
    }

    /// Full rebuild: one pass over the tree, exactly mirroring the full-scan
    /// analyzer's folds, plus the y-sorted index and toggle-subtree map the
    /// deltas need.
    fn rebuild(&mut self, tree: &DomTree, viewport: &Viewport) {
        self.stats.rebuilds += 1;
        let mut nodes: Vec<TrackedNode> = Vec::new();
        let mut displayed = Vec::with_capacity(tree.len());
        let mut toggle_targets: Vec<NodeId> = Vec::new();
        for (id, node) in tree.iter() {
            displayed.push(node.is_displayed());
            let mut types = EventTypeSet::EMPTY;
            let mut nav = false;
            for (event, effect) in node.listeners() {
                types.insert(event);
                if matches!(
                    effect,
                    CallbackEffect::Navigate | CallbackEffect::SubmitForm
                ) {
                    nav = true;
                }
                if let CallbackEffect::ToggleVisibility(target) = effect {
                    toggle_targets.push(target);
                }
            }
            let link = node.kind().is_link();
            if types.is_empty() && !link {
                continue;
            }
            let rect = node.rect();
            nodes.push(TrackedNode {
                id,
                y0: rect.y(),
                y1: rect.y() + rect.height(),
                x_overlap: ((rect.x() + rect.width()).min(viewport.width()) - rect.x().max(0))
                    .max(0),
                clickable: node.is_clickable(),
                link,
                types,
                nav,
                effectively_displayed: tree.is_effectively_displayed(id),
            });
        }
        let mut order: Vec<u32> = (0..nodes.len() as u32).collect();
        order.sort_by_key(|&i| nodes[i as usize].y0);
        let block_max_y1 = order
            .chunks(Y_INDEX_BLOCK)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&i| nodes[i as usize].y1)
                    .max()
                    .unwrap_or(i64::MIN)
            })
            .collect();
        toggle_targets.sort();
        toggle_targets.dedup();
        // One membership mask, reused per target: collecting a subtree is
        // O(subtree + tracked) instead of a contains() scan per tracked node.
        let mut member = vec![false; tree.len()];
        let toggle_subtrees = toggle_targets
            .into_iter()
            .filter(|t| t.index() < tree.len())
            .map(|target| {
                let descendants = tree.descendants(target);
                for d in &descendants {
                    member[d.index()] = true;
                }
                let subtree: Vec<u32> = nodes
                    .iter()
                    .enumerate()
                    .filter(|(_, n)| member[n.id.index()])
                    .map(|(i, _)| i as u32)
                    .collect();
                for d in &descendants {
                    member[d.index()] = false;
                }
                (target, subtree)
            })
            .collect();
        let scroll = viewport.scroll_y();
        let mut agg = VisibleAggregates::default();
        let mut agg0 = VisibleAggregates::default();
        for node in &nodes {
            if node.effectively_displayed {
                Self::apply_node(node, &mut agg, 1, scroll, viewport.height());
                Self::apply_node(node, &mut agg0, 1, 0, viewport.height());
            }
        }
        self.state = Some(IncrementalState {
            stamp: tree.stamp(),
            vp_width: viewport.width(),
            vp_height: viewport.height(),
            scroll,
            doc_height: tree.document_height(),
            nodes,
            order,
            block_max_y1,
            toggle_subtrees,
            displayed,
            agg,
            agg0,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::tree::{CallbackEffect, NodeKind};

    /// A page with a visible nav link, a disclosure button whose menu is
    /// hidden, a below-the-fold button, and enough content to scroll.
    fn sample_page() -> (DomTree, NodeId, NodeId, NodeId, NodeId) {
        let mut tree = DomTree::new();
        let root = tree.root();
        let nav_link = tree.create_node(NodeKind::Link, Rect::new(0, 0, 180, 40));
        let menu_button = tree.create_node(NodeKind::Button, Rect::new(200, 0, 80, 40));
        let menu = tree.create_node(NodeKind::Menu, Rect::new(200, 40, 160, 160));
        let menu_item = tree.create_node(NodeKind::MenuItem, Rect::new(200, 40, 160, 40));
        let far_button = tree.create_node(NodeKind::Button, Rect::new(0, 2_000, 100, 40));
        let filler = tree.create_node(NodeKind::Text, Rect::new(0, 100, 360, 2_500));
        for id in [nav_link, menu_button, menu, far_button, filler] {
            tree.append_child(root, id).unwrap();
        }
        tree.append_child(menu, menu_item).unwrap();
        tree.add_listener(nav_link, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(
            menu_button,
            EventType::Click,
            CallbackEffect::ToggleVisibility(menu),
        )
        .unwrap();
        tree.add_listener(menu_item, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(far_button, EventType::Click, CallbackEffect::None)
            .unwrap();
        tree.set_displayed(menu, false).unwrap();
        (tree, nav_link, menu_button, menu_item, far_button)
    }

    #[test]
    fn lnes_contains_only_visible_listeners() {
        let (tree, nav_link, menu_button, menu_item, far_button) = sample_page();
        let analyzer = DomAnalyzer::new();
        let lnes = analyzer.lnes(&tree, &Viewport::phone());
        let nodes: Vec<NodeId> = lnes.nodes_for(EventType::Click);
        assert!(nodes.contains(&nav_link));
        assert!(nodes.contains(&menu_button));
        assert!(
            !nodes.contains(&menu_item),
            "hidden menu item must be excluded"
        );
        assert!(
            !nodes.contains(&far_button),
            "below-the-fold button must be excluded"
        );
    }

    #[test]
    fn lnes_includes_global_scroll_when_page_is_long() {
        let (tree, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let lnes = analyzer.lnes(&tree, &Viewport::phone());
        assert!(lnes.allows(EventType::Scroll));
        assert!(lnes.allows(EventType::TouchMove));
        let no_scroll = DomAnalyzer::without_global_scroll().lnes(&tree, &Viewport::phone());
        assert!(!no_scroll.allows(EventType::Scroll));
    }

    #[test]
    fn lnes_types_mask_matches_the_full_lnes() {
        let (tree, ..) = sample_page();
        for analyzer in [DomAnalyzer::new(), DomAnalyzer::without_global_scroll()] {
            for scroll in [0, 500, 1_900, 3_000] {
                let mut vp = Viewport::phone();
                vp.scroll_to(scroll);
                let via_lnes: EventTypeSet = analyzer
                    .lnes(&tree, &vp)
                    .event_types()
                    .into_iter()
                    .collect();
                assert_eq!(
                    analyzer.lnes_types(&tree, &vp),
                    via_lnes,
                    "mask must agree with the Lnes at scroll {scroll}"
                );
            }
        }
    }

    #[test]
    fn viewport_features_counts_match_the_node_list_helpers() {
        // `viewport_features` inlines the visibility/clickable filters that
        // `DomTree::visible_clickable_nodes` / `visible_link_nodes` expose as
        // node lists; pin the two implementations together so they cannot
        // drift.
        let (tree, ..) = sample_page();
        for scroll in [0, 500, 1_900] {
            let mut vp = Viewport::phone();
            vp.scroll_to(scroll);
            let features = DomAnalyzer::new().viewport_features(&tree, &vp);
            assert_eq!(
                features.visible_clickable_count,
                tree.visible_clickable_nodes(&vp).len(),
                "clickable count at scroll {scroll}"
            );
            assert_eq!(
                features.visible_link_count,
                tree.visible_link_nodes(&vp).len(),
                "link count at scroll {scroll}"
            );
        }
    }

    #[test]
    fn lnes_event_types_are_deduplicated() {
        let (tree, ..) = sample_page();
        let lnes = DomAnalyzer::new().lnes(&tree, &Viewport::phone());
        let types = lnes.event_types();
        let mut dedup = types.clone();
        dedup.dedup();
        assert_eq!(types, dedup);
        assert!(types.contains(&EventType::Click));
    }

    #[test]
    fn scrolling_far_enough_reveals_the_far_button() {
        let (tree, _, _, _, far_button) = sample_page();
        let analyzer = DomAnalyzer::new();
        let mut vp = Viewport::phone();
        vp.scroll_to(1_900);
        let lnes = analyzer.lnes(&tree, &vp);
        assert!(lnes.nodes_for(EventType::Click).contains(&far_button));
    }

    #[test]
    fn viewport_features_reflect_clickable_and_link_area() {
        let (tree, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let features = analyzer.viewport_features(&tree, &Viewport::phone());
        assert!(features.clickable_region_fraction > 0.0);
        assert!(features.clickable_region_fraction < 1.0);
        assert!(features.visible_link_fraction > 0.0);
        assert!(features.visible_link_fraction <= features.clickable_region_fraction);
        assert_eq!(features.visible_link_count, 1);
        assert_eq!(features.visible_clickable_count, 2);
        assert!(features.scrollable);
    }

    #[test]
    fn empty_page_has_empty_lnes_and_zero_features() {
        let tree = DomTree::new();
        let analyzer = DomAnalyzer::new();
        let vp = Viewport::phone();
        let lnes = analyzer.lnes(&tree, &vp);
        assert!(lnes.is_empty());
        assert_eq!(lnes.len(), 0);
        let features = analyzer.viewport_features(&tree, &vp);
        assert_eq!(features.clickable_region_fraction, 0.0);
        assert_eq!(features.visible_link_count, 0);
        assert!(!features.scrollable);
    }

    #[test]
    fn lnes_after_menu_click_includes_menu_items() {
        let (tree, _, menu_button, menu_item, _) = sample_page();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        let before = analyzer.lnes(&tree, &vp);
        assert!(!before.nodes_for(EventType::Click).contains(&menu_item));
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: menu_button,
                    event: EventType::Click,
                }],
            )
            .unwrap();
        assert!(after.nodes_for(EventType::Click).contains(&menu_item));
        // The live DOM is untouched.
        assert!(!analyzer
            .lnes(&tree, &vp)
            .nodes_for(EventType::Click)
            .contains(&menu_item));
    }

    #[test]
    fn lnes_after_scroll_reveals_below_the_fold_content() {
        let (tree, _, _, _, far_button) = sample_page();
        let mut tree = tree;
        tree.add_listener(
            tree.root(),
            EventType::Scroll,
            CallbackEffect::ScrollBy(1_900),
        )
        .unwrap();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: tree.root(),
                    event: EventType::Scroll,
                }],
            )
            .unwrap();
        assert!(after.nodes_for(EventType::Click).contains(&far_button));
    }

    #[test]
    fn incremental_analyzer_matches_full_scan_across_scrolls_and_toggles() {
        let (tree, _, menu_button, ..) = sample_page();
        let mut tree = std::sync::Arc::new(tree);
        let analyzer = DomAnalyzer::new();
        let mut inc = IncrementalAnalyzer::new();
        let mut vp = Viewport::phone();
        let toggle_effect = tree
            .node(menu_button)
            .unwrap()
            .listener(EventType::Click)
            .unwrap();
        let CallbackEffect::ToggleVisibility(menu) = toggle_effect else {
            panic!("menu button toggles");
        };
        // Interleave scrolls (self-healing deltas) and toggles (driven
        // through note_toggle) and check every step against the full scan.
        for (step, scroll) in [0, 500, 1_900, 1_900, 0, 700, 700, 3_000, 250, 0]
            .into_iter()
            .enumerate()
        {
            vp.scroll_to(scroll);
            if step % 3 == 2 {
                let pre = tree.stamp();
                let mut scratch_vp = vp;
                std::sync::Arc::make_mut(&mut tree)
                    .apply_effect(toggle_effect, &mut scratch_vp)
                    .unwrap();
                inc.note_toggle(pre, &tree, menu);
            }
            assert_eq!(
                inc.viewport_features(&analyzer, &tree, &vp),
                analyzer.viewport_features(&tree, &vp),
                "features diverged at step {step} (scroll {scroll})"
            );
            assert_eq!(
                inc.lnes_types(&analyzer, &tree, &vp),
                analyzer.lnes_types(&tree, &vp),
                "mask diverged at step {step} (scroll {scroll})"
            );
        }
        let stats = inc.stats();
        assert_eq!(
            stats.rebuilds, 1,
            "steady state must run on deltas: {stats:?}"
        );
        assert!(stats.scroll_deltas > 0);
        assert!(stats.scroll_resets > 0);
        assert!(stats.toggle_deltas > 0);
    }

    #[test]
    fn incremental_analyzer_rebuilds_on_untracked_mutation() {
        let (tree, ..) = sample_page();
        let mut tree = std::sync::Arc::new(tree);
        let analyzer = DomAnalyzer::new();
        let mut inc = IncrementalAnalyzer::new();
        let vp = Viewport::phone();
        let before = inc.lnes_types(&analyzer, &tree, &vp);
        assert!(!before.contains(EventType::Submit));
        // Mutate the tree *without* telling the analyzer: the stamp guard
        // must force a rebuild rather than serve stale aggregates.
        let submit = std::sync::Arc::make_mut(&mut tree)
            .create_node(NodeKind::SubmitButton, Rect::new(0, 60, 80, 40));
        {
            let t = std::sync::Arc::make_mut(&mut tree);
            t.append_child(t.root(), submit).unwrap();
            t.add_listener(submit, EventType::Submit, CallbackEffect::SubmitForm)
                .unwrap();
        }
        let after = inc.lnes_types(&analyzer, &tree, &vp);
        assert!(after.contains(EventType::Submit));
        assert_eq!(after, analyzer.lnes_types(&tree, &vp));
        assert_eq!(inc.stats().rebuilds, 2);
    }

    #[test]
    fn incremental_analyzer_honours_the_global_scroll_policy() {
        let (tree, ..) = sample_page();
        let tree = std::sync::Arc::new(tree);
        let vp = Viewport::phone();
        for analyzer in [DomAnalyzer::new(), DomAnalyzer::without_global_scroll()] {
            let mut inc = IncrementalAnalyzer::new();
            assert_eq!(
                inc.lnes_types(&analyzer, &tree, &vp),
                analyzer.lnes_types(&tree, &vp)
            );
        }
    }

    #[test]
    fn hypothetical_events_without_listeners_are_skipped() {
        let (tree, nav_link, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        // Submit has no listener anywhere; the projection should not fail.
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: nav_link,
                    event: EventType::Submit,
                }],
            )
            .unwrap();
        assert!(!after.is_empty());
    }
}
