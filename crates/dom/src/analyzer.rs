//! The DOM analyzer: Likely-Next-Event-Set (LNES) computation and the
//! application-inherent features of Table 1.
//!
//! The analyzer traverses the part of the DOM tree inside the current
//! viewport and accumulates the set of events registered on visible nodes —
//! the LNES that the event sequence learner predicts from (Sec. 5.2). It can
//! also *project* the LNES past a sequence of hypothetical (predicted)
//! events by statically applying their memoized effects through the
//! [`SemanticTree`], which is what lets PES predict several events ahead.


use crate::error::DomError;
use crate::events::{EventType, EventTypeSet};
use crate::geometry::Viewport;
use crate::semantic::SemanticTree;
use crate::tree::{DomTree, NodeId};

/// One candidate next event: an event type on a concrete (visible) node, or
/// a document-level event such as scrolling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PossibleEvent {
    /// The node the event would fire on (the document root for global
    /// events such as scrolling).
    pub node: NodeId,
    /// The event type.
    pub event: EventType,
}

/// The Likely-Next-Event-Set: all events that the application logic allows as
/// the immediate next event given the current (or projected) DOM state.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Lnes {
    events: Vec<PossibleEvent>,
}

impl Lnes {
    /// The candidate events, in document order.
    pub fn events(&self) -> &[PossibleEvent] {
        &self.events
    }

    /// Number of candidate events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no event is possible (an empty or fully hidden page).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Whether a given event *type* is possible on any node.
    pub fn allows(&self, event: EventType) -> bool {
        self.events.iter().any(|p| p.event == event)
    }

    /// The distinct event types present in the set, in class-index order.
    pub fn event_types(&self) -> Vec<EventType> {
        let mut types: Vec<EventType> = EventType::ALL
            .into_iter()
            .filter(|e| self.allows(*e))
            .collect();
        types.dedup();
        types
    }

    /// The candidate nodes for a given event type.
    pub fn nodes_for(&self, event: EventType) -> Vec<NodeId> {
        self.events
            .iter()
            .filter(|p| p.event == event)
            .map(|p| p.node)
            .collect()
    }
}

/// Application-inherent features of the current viewport (the first two rows
/// of Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ViewportFeatures {
    /// Fraction of the viewport area covered by clickable elements.
    pub clickable_region_fraction: f64,
    /// Fraction of the viewport area covered by visible links.
    pub visible_link_fraction: f64,
    /// Number of clickable elements currently visible.
    pub visible_clickable_count: usize,
    /// Number of link elements currently visible.
    pub visible_link_count: usize,
    /// Whether the document extends beyond the viewport (scrolling possible).
    pub scrollable: bool,
}

/// The DOM analyzer.
///
/// # Examples
///
/// ```
/// use pes_dom::{CallbackEffect, DomAnalyzer, DomTree, EventType, NodeKind, SemanticTree};
/// use pes_dom::geometry::{Rect, Viewport};
///
/// let mut tree = DomTree::new();
/// let root = tree.root();
/// let link = tree.create_node(NodeKind::Link, Rect::new(0, 0, 200, 40));
/// tree.append_child(root, link).unwrap();
/// tree.add_listener(link, EventType::Click, CallbackEffect::Navigate).unwrap();
///
/// let analyzer = DomAnalyzer::new();
/// let lnes = analyzer.lnes(&tree, &Viewport::phone());
/// assert!(lnes.allows(EventType::Click));
/// assert!(!lnes.allows(EventType::Submit));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DomAnalyzer {
    include_global_scroll: bool,
}

impl DomAnalyzer {
    /// Creates an analyzer with the default policy: document-level scrolling
    /// is part of the LNES whenever the page is taller than the viewport.
    pub fn new() -> Self {
        DomAnalyzer {
            include_global_scroll: true,
        }
    }

    /// Creates an analyzer that only reports events registered on concrete
    /// DOM nodes (no implicit document-level scroll). Used by ablations.
    pub fn without_global_scroll() -> Self {
        DomAnalyzer {
            include_global_scroll: false,
        }
    }

    /// Computes the LNES for the current DOM state: every event registered on
    /// an effectively-visible node, plus document-level scroll/move events
    /// when the page is scrollable.
    pub fn lnes(&self, tree: &DomTree, viewport: &Viewport) -> Lnes {
        let mut events = Vec::new();
        let mut navigation_possible = false;
        for (id, node) in tree.iter() {
            if !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            for (event, effect) in node.listeners() {
                events.push(PossibleEvent { node: id, event });
                if matches!(
                    effect,
                    crate::tree::CallbackEffect::Navigate | crate::tree::CallbackEffect::SubmitForm
                ) {
                    navigation_possible = true;
                }
            }
        }
        let root = tree.root();
        if self.include_global_scroll && tree.document_height() > viewport.height() + viewport.scroll_y()
        {
            for event in [EventType::Scroll, EventType::TouchMove] {
                if !events.iter().any(|p| p.node == root && p.event == event) {
                    events.push(PossibleEvent { node: root, event });
                }
            }
        }
        // A navigation (page replacement) is a possible next event whenever a
        // visible element's callback would navigate or submit: the load it
        // triggers is itself an event the application will have to serve.
        if navigation_possible {
            events.push(PossibleEvent {
                node: root,
                event: EventType::Navigate,
            });
        }
        events.sort();
        events.dedup();
        Lnes { events }
    }

    /// The distinct event *types* of the LNES, as a bitmask. Semantically
    /// identical to `self.lnes(tree, viewport).event_types()` but computed in
    /// one allocation-free pass — this is what the sequence learner consults
    /// on every step of every prediction round.
    pub fn lnes_types(&self, tree: &DomTree, viewport: &Viewport) -> EventTypeSet {
        let mut types = EventTypeSet::EMPTY;
        let mut navigation_possible = false;
        for (id, node) in tree.iter() {
            if !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            for (event, effect) in node.listeners() {
                types.insert(event);
                if matches!(
                    effect,
                    crate::tree::CallbackEffect::Navigate | crate::tree::CallbackEffect::SubmitForm
                ) {
                    navigation_possible = true;
                }
            }
        }
        if self.include_global_scroll
            && tree.document_height() > viewport.height() + viewport.scroll_y()
        {
            types.insert(EventType::Scroll);
            types.insert(EventType::TouchMove);
        }
        if navigation_possible {
            types.insert(EventType::Navigate);
        }
        types
    }

    /// Computes the viewport features of Table 1 for the current DOM state.
    /// One pass over the tree, no intermediate node lists: the learner
    /// extracts these features on every prediction step.
    pub fn viewport_features(&self, tree: &DomTree, viewport: &Viewport) -> ViewportFeatures {
        let viewport_area = viewport.area().max(1) as f64;
        let mut clickable_area: i64 = 0;
        let mut link_area: i64 = 0;
        let mut clickable_count = 0usize;
        let mut link_count = 0usize;
        for (id, node) in tree.iter() {
            let clickable = node.is_clickable();
            let link = node.kind().is_link();
            if !(clickable || link) || !tree.is_effectively_visible(id, viewport) {
                continue;
            }
            let area = viewport.visible_area(&node.rect());
            if clickable {
                clickable_area += area;
                clickable_count += 1;
            }
            if link {
                link_area += area;
                link_count += 1;
            }
        }
        ViewportFeatures {
            clickable_region_fraction: (clickable_area as f64 / viewport_area).clamp(0.0, 1.0),
            visible_link_fraction: (link_area as f64 / viewport_area).clamp(0.0, 1.0),
            visible_clickable_count: clickable_count,
            visible_link_count: link_count,
            scrollable: tree.document_height() > viewport.height() + viewport.scroll_y(),
        }
    }

    /// Computes the LNES *after* a sequence of hypothetical events, by
    /// statically applying their memoized effects to scratch copies of the
    /// DOM state (Sec. 5.2). The live `tree`/`viewport` are not modified.
    ///
    /// Predicted events with no memoized listener are skipped rather than
    /// rejected: the sequence learner may legitimately predict an event whose
    /// handler is a no-op as far as the DOM is concerned.
    ///
    /// # Errors
    ///
    /// Propagates [`DomError`] only for structural failures (stale node ids
    /// inside memoized effects), which indicate a bug in DOM construction.
    pub fn lnes_after(
        &self,
        tree: &DomTree,
        viewport: &Viewport,
        semantic: &SemanticTree,
        hypothetical: &[PossibleEvent],
    ) -> Result<Lnes, DomError> {
        let mut scratch_tree = tree.clone();
        let mut scratch_vp = *viewport;
        for ev in hypothetical {
            match semantic.apply_hypothetical(&mut scratch_tree, &mut scratch_vp, ev.node, ev.event)
            {
                Ok(_) => {}
                Err(DomError::NoListener(..)) => {}
                Err(other) => return Err(other),
            }
        }
        Ok(self.lnes(&scratch_tree, &scratch_vp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Rect;
    use crate::tree::{CallbackEffect, NodeKind};

    /// A page with a visible nav link, a disclosure button whose menu is
    /// hidden, a below-the-fold button, and enough content to scroll.
    fn sample_page() -> (DomTree, NodeId, NodeId, NodeId, NodeId) {
        let mut tree = DomTree::new();
        let root = tree.root();
        let nav_link = tree.create_node(NodeKind::Link, Rect::new(0, 0, 180, 40));
        let menu_button = tree.create_node(NodeKind::Button, Rect::new(200, 0, 80, 40));
        let menu = tree.create_node(NodeKind::Menu, Rect::new(200, 40, 160, 160));
        let menu_item = tree.create_node(NodeKind::MenuItem, Rect::new(200, 40, 160, 40));
        let far_button = tree.create_node(NodeKind::Button, Rect::new(0, 2_000, 100, 40));
        let filler = tree.create_node(NodeKind::Text, Rect::new(0, 100, 360, 2_500));
        for id in [nav_link, menu_button, menu, far_button, filler] {
            tree.append_child(root, id).unwrap();
        }
        tree.append_child(menu, menu_item).unwrap();
        tree.add_listener(nav_link, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(
            menu_button,
            EventType::Click,
            CallbackEffect::ToggleVisibility(menu),
        )
        .unwrap();
        tree.add_listener(menu_item, EventType::Click, CallbackEffect::Navigate)
            .unwrap();
        tree.add_listener(far_button, EventType::Click, CallbackEffect::None)
            .unwrap();
        tree.set_displayed(menu, false).unwrap();
        (tree, nav_link, menu_button, menu_item, far_button)
    }

    #[test]
    fn lnes_contains_only_visible_listeners() {
        let (tree, nav_link, menu_button, menu_item, far_button) = sample_page();
        let analyzer = DomAnalyzer::new();
        let lnes = analyzer.lnes(&tree, &Viewport::phone());
        let nodes: Vec<NodeId> = lnes.nodes_for(EventType::Click);
        assert!(nodes.contains(&nav_link));
        assert!(nodes.contains(&menu_button));
        assert!(!nodes.contains(&menu_item), "hidden menu item must be excluded");
        assert!(!nodes.contains(&far_button), "below-the-fold button must be excluded");
    }

    #[test]
    fn lnes_includes_global_scroll_when_page_is_long() {
        let (tree, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let lnes = analyzer.lnes(&tree, &Viewport::phone());
        assert!(lnes.allows(EventType::Scroll));
        assert!(lnes.allows(EventType::TouchMove));
        let no_scroll = DomAnalyzer::without_global_scroll().lnes(&tree, &Viewport::phone());
        assert!(!no_scroll.allows(EventType::Scroll));
    }

    #[test]
    fn lnes_types_mask_matches_the_full_lnes() {
        let (tree, ..) = sample_page();
        for analyzer in [DomAnalyzer::new(), DomAnalyzer::without_global_scroll()] {
            for scroll in [0, 500, 1_900, 3_000] {
                let mut vp = Viewport::phone();
                vp.scroll_to(scroll);
                let via_lnes: EventTypeSet =
                    analyzer.lnes(&tree, &vp).event_types().into_iter().collect();
                assert_eq!(
                    analyzer.lnes_types(&tree, &vp),
                    via_lnes,
                    "mask must agree with the Lnes at scroll {scroll}"
                );
            }
        }
    }

    #[test]
    fn viewport_features_counts_match_the_node_list_helpers() {
        // `viewport_features` inlines the visibility/clickable filters that
        // `DomTree::visible_clickable_nodes` / `visible_link_nodes` expose as
        // node lists; pin the two implementations together so they cannot
        // drift.
        let (tree, ..) = sample_page();
        for scroll in [0, 500, 1_900] {
            let mut vp = Viewport::phone();
            vp.scroll_to(scroll);
            let features = DomAnalyzer::new().viewport_features(&tree, &vp);
            assert_eq!(
                features.visible_clickable_count,
                tree.visible_clickable_nodes(&vp).len(),
                "clickable count at scroll {scroll}"
            );
            assert_eq!(
                features.visible_link_count,
                tree.visible_link_nodes(&vp).len(),
                "link count at scroll {scroll}"
            );
        }
    }

    #[test]
    fn lnes_event_types_are_deduplicated() {
        let (tree, ..) = sample_page();
        let lnes = DomAnalyzer::new().lnes(&tree, &Viewport::phone());
        let types = lnes.event_types();
        let mut dedup = types.clone();
        dedup.dedup();
        assert_eq!(types, dedup);
        assert!(types.contains(&EventType::Click));
    }

    #[test]
    fn scrolling_far_enough_reveals_the_far_button() {
        let (tree, _, _, _, far_button) = sample_page();
        let analyzer = DomAnalyzer::new();
        let mut vp = Viewport::phone();
        vp.scroll_to(1_900);
        let lnes = analyzer.lnes(&tree, &vp);
        assert!(lnes.nodes_for(EventType::Click).contains(&far_button));
    }

    #[test]
    fn viewport_features_reflect_clickable_and_link_area() {
        let (tree, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let features = analyzer.viewport_features(&tree, &Viewport::phone());
        assert!(features.clickable_region_fraction > 0.0);
        assert!(features.clickable_region_fraction < 1.0);
        assert!(features.visible_link_fraction > 0.0);
        assert!(features.visible_link_fraction <= features.clickable_region_fraction);
        assert_eq!(features.visible_link_count, 1);
        assert_eq!(features.visible_clickable_count, 2);
        assert!(features.scrollable);
    }

    #[test]
    fn empty_page_has_empty_lnes_and_zero_features() {
        let tree = DomTree::new();
        let analyzer = DomAnalyzer::new();
        let vp = Viewport::phone();
        let lnes = analyzer.lnes(&tree, &vp);
        assert!(lnes.is_empty());
        assert_eq!(lnes.len(), 0);
        let features = analyzer.viewport_features(&tree, &vp);
        assert_eq!(features.clickable_region_fraction, 0.0);
        assert_eq!(features.visible_link_count, 0);
        assert!(!features.scrollable);
    }

    #[test]
    fn lnes_after_menu_click_includes_menu_items() {
        let (tree, _, menu_button, menu_item, _) = sample_page();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        let before = analyzer.lnes(&tree, &vp);
        assert!(!before.nodes_for(EventType::Click).contains(&menu_item));
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: menu_button,
                    event: EventType::Click,
                }],
            )
            .unwrap();
        assert!(after.nodes_for(EventType::Click).contains(&menu_item));
        // The live DOM is untouched.
        assert!(!analyzer
            .lnes(&tree, &vp)
            .nodes_for(EventType::Click)
            .contains(&menu_item));
    }

    #[test]
    fn lnes_after_scroll_reveals_below_the_fold_content() {
        let (tree, _, _, _, far_button) = sample_page();
        let mut tree = tree;
        tree.add_listener(tree.root(), EventType::Scroll, CallbackEffect::ScrollBy(1_900))
            .unwrap();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: tree.root(),
                    event: EventType::Scroll,
                }],
            )
            .unwrap();
        assert!(after.nodes_for(EventType::Click).contains(&far_button));
    }

    #[test]
    fn hypothetical_events_without_listeners_are_skipped() {
        let (tree, nav_link, ..) = sample_page();
        let analyzer = DomAnalyzer::new();
        let semantic = SemanticTree::build(&tree);
        let vp = Viewport::phone();
        // Submit has no listener anywhere; the projection should not fail.
        let after = analyzer
            .lnes_after(
                &tree,
                &vp,
                &semantic,
                &[PossibleEvent {
                    node: nav_link,
                    event: EventType::Submit,
                }],
            )
            .unwrap();
        assert!(!after.is_empty());
    }
}
