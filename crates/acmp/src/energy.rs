//! Processor energy accounting.
//!
//! Stands in for the ODROID board's current-sense resistors plus the NI DAQ
//! unit of Sec. 3: the simulator reports every busy/idle interval to an
//! [`EnergyMeter`], which integrates power over time, split by cluster and by
//! activity kind so that the evaluation figures can report both totals and
//! breakdowns (e.g. the misprediction energy overhead of Sec. 6.3).

use std::sync::Arc;

use crate::config::{AcmpConfig, CoreKind};
use crate::dvfs::DvfsLadder;
use crate::platform::Platform;
use crate::units::{EnergyUj, PowerMw, TimeUs};

/// The kind of activity an energy sample is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActivityKind {
    /// Executing an event that was (or will be) committed to the display.
    UsefulWork,
    /// Executing speculative work that was later squashed (misprediction waste).
    SpeculativeWaste,
    /// The processor idling between events.
    Idle,
    /// DVFS / migration transition overhead.
    Transition,
}

impl ActivityKind {
    /// All activity kinds, in reporting order.
    pub const ALL: [ActivityKind; 4] = [
        ActivityKind::UsefulWork,
        ActivityKind::SpeculativeWaste,
        ActivityKind::Idle,
        ActivityKind::Transition,
    ];

    /// A dense index into [`ActivityKind::ALL`], for array-backed
    /// per-activity accounting.
    pub const fn index(self) -> usize {
        match self {
            ActivityKind::UsefulWork => 0,
            ActivityKind::SpeculativeWaste => 1,
            ActivityKind::Idle => 2,
            ActivityKind::Transition => 3,
        }
    }
}

/// An integrating energy meter, equivalent to the paper's 1 kHz DAQ sampling
/// of the big and little CPU rails (Sec. 3).
///
/// # Examples
///
/// ```
/// use pes_acmp::{Platform, energy::{ActivityKind, EnergyMeter}};
/// use pes_acmp::units::TimeUs;
///
/// let platform = Platform::exynos_5410();
/// let mut meter = EnergyMeter::new(&platform);
/// let cfg = platform.max_performance_config();
/// meter.record_busy(&cfg, TimeUs::from_millis(10), ActivityKind::UsefulWork);
/// assert!(meter.total().as_millijoules() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyMeter<'p> {
    platform: &'p Platform,
    /// The shared DVFS power plane, when the meter was built with one: the
    /// per-configuration `active`/`idle`/`background` powers frozen at
    /// ladder-build time. Samples at platform operating points read these
    /// instead of re-deriving every power term from the cluster tables per
    /// call (the re-derivation the ROADMAP flagged as the last per-event
    /// DVFS math on the replay hot path). Off-plane configurations — and
    /// meters built without a plane — fall back to the reference
    /// derivation, which is bit-identical by construction.
    plane: Option<Arc<DvfsLadder>>,
    total: EnergyUj,
    /// Per-activity accumulators, indexed by [`ActivityKind::index`].
    /// Flat arrays instead of the original `BTreeMap`s: the replay engine
    /// lands two to four samples per event here, and the map walks were
    /// the single largest slice of the engine floor. The addition order is
    /// unchanged, so every total stays bit-identical to the map-backed
    /// meter.
    by_activity: [EnergyUj; 4],
    /// Per-cluster accumulators, indexed by [`CoreKind::index`].
    by_cluster: [EnergyUj; 4],
    /// The *other* platform cluster charged for background idle draw,
    /// precomputed per core kind at construction (the map-backed meter
    /// re-searched the cluster table on every sample).
    background_cluster: [CoreKind; 4],
    /// One-entry memo of the last `(config, ladder rung)` pair: the engine
    /// meters long runs of samples at its current configuration, so the
    /// rung scan is paid once per configuration switch instead of once per
    /// sample.
    cached_rung: Option<(AcmpConfig, usize)>,
    busy_time: TimeUs,
    idle_time: TimeUs,
}

impl<'p> EnergyMeter<'p> {
    /// Creates a meter for a platform with all counters at zero.
    pub fn new(platform: &'p Platform) -> Self {
        let mut background_cluster = [CoreKind::BigA15; 4];
        for kind in CoreKind::ALL {
            background_cluster[kind.index()] = platform
                .clusters()
                .iter()
                .map(|c| c.core_kind())
                .find(|k| *k != kind)
                .unwrap_or(kind);
        }
        EnergyMeter {
            platform,
            plane: None,
            total: EnergyUj::ZERO,
            by_activity: [EnergyUj::ZERO; 4],
            by_cluster: [EnergyUj::ZERO; 4],
            background_cluster,
            cached_rung: None,
            busy_time: TimeUs::ZERO,
            idle_time: TimeUs::ZERO,
        }
    }

    /// Creates a meter that serves per-configuration powers from a shared
    /// DVFS power plane.
    ///
    /// # Panics
    ///
    /// Panics if the plane was built for a different platform.
    pub fn with_plane(platform: &'p Platform, plane: Arc<DvfsLadder>) -> Self {
        plane.assert_matches(platform);
        EnergyMeter {
            plane: Some(plane),
            ..EnergyMeter::new(platform)
        }
    }

    /// The plane rung holding `cfg`, through the one-entry memo. Caches
    /// only plane hits: off-plane configurations (and plane-less meters)
    /// take the reference fallback below, which never consults a rung.
    fn rung_of(&mut self, cfg: &AcmpConfig) -> Option<usize> {
        if let Some((cached, i)) = self.cached_rung {
            if cached == *cfg {
                return Some(i);
            }
        }
        let i = self.plane.as_ref()?.rung_index(cfg)?;
        self.cached_rung = Some((*cfg, i));
        Some(i)
    }

    /// `(active, background)` powers of `cfg`, from the frozen plane when
    /// available (rung memoised across consecutive samples).
    fn busy_powers(&mut self, cfg: &AcmpConfig) -> (PowerMw, PowerMw) {
        if let Some(i) = self.rung_of(cfg) {
            // `rung_of` only answers when a plane is present.
            if let Some(plane) = &self.plane {
                let rung = &plane.rungs()[i];
                return (rung.active_power, rung.background_power);
            }
        }
        self.busy_powers_uncached(cfg)
    }

    /// [`EnergyMeter::busy_powers`] without touching the rung memo; used by
    /// the non-mutating sample previews. Same plane probe, same fallback —
    /// the returned powers are the identical frozen values either way.
    fn busy_powers_uncached(&self, cfg: &AcmpConfig) -> (PowerMw, PowerMw) {
        if let Some(plane) = &self.plane {
            if let Some(i) = plane.rung_index(cfg) {
                let rung = &plane.rungs()[i];
                return (rung.active_power, rung.background_power);
            }
        }
        (
            self.platform.active_power(cfg),
            self.platform.background_idle_power(cfg),
        )
    }

    /// `(idle, background)` powers of `cfg`, from the frozen plane when
    /// available (rung memoised across consecutive samples).
    fn idle_powers(&mut self, cfg: &AcmpConfig) -> (PowerMw, PowerMw) {
        if let Some(i) = self.rung_of(cfg) {
            if let Some(plane) = &self.plane {
                let rung = &plane.rungs()[i];
                return (rung.idle_power, rung.background_power);
            }
        }
        self.idle_powers_uncached(cfg)
    }

    /// [`EnergyMeter::idle_powers`] without touching the rung memo.
    fn idle_powers_uncached(&self, cfg: &AcmpConfig) -> (PowerMw, PowerMw) {
        if let Some(plane) = &self.plane {
            if let Some(i) = plane.rung_index(cfg) {
                let rung = &plane.rungs()[i];
                return (rung.idle_power, rung.background_power);
            }
        }
        (
            self.platform.idle_power(cfg),
            self.platform.background_idle_power(cfg),
        )
    }

    /// The `(own, background)` energies one busy sample would record,
    /// without recording it. The per-frame ledger uses these previews to
    /// answer energy queries while samples are still deferred: the
    /// expressions are the ones [`EnergyMeter::record_busy`] evaluates, so
    /// folding previews over a meter snapshot is bit-identical to flushing
    /// the samples and reading the meter.
    pub fn peek_busy(&self, cfg: &AcmpConfig, duration: TimeUs) -> (EnergyUj, EnergyUj) {
        let (active, background_power) = self.busy_powers_uncached(cfg);
        (
            active.energy_over(duration),
            background_power.energy_over(duration),
        )
    }

    /// The `(own, background)` energies one idle sample would record,
    /// without recording it (see [`EnergyMeter::peek_busy`]).
    pub fn peek_idle(&self, cfg: &AcmpConfig, duration: TimeUs) -> (EnergyUj, EnergyUj) {
        let (idle, background_power) = self.idle_powers_uncached(cfg);
        (
            idle.energy_over(duration),
            background_power.energy_over(duration),
        )
    }

    /// The energy one transition sample would record, without recording it
    /// (see [`EnergyMeter::peek_busy`]).
    pub fn peek_transition(&self, to: &AcmpConfig, duration: TimeUs) -> EnergyUj {
        let (active, _) = self.busy_powers_uncached(to);
        active.energy_over(duration)
    }

    /// Records a busy interval at configuration `cfg` attributed to
    /// `activity`. The sample includes the idle floor of the other cluster.
    pub fn record_busy(&mut self, cfg: &AcmpConfig, duration: TimeUs, activity: ActivityKind) {
        if duration.is_zero() {
            return;
        }
        let (active, background_power) = self.busy_powers(cfg);
        let own = active.energy_over(duration);
        let background = background_power.energy_over(duration);
        self.busy_time += duration;
        self.add(cfg.core(), own, activity);
        self.add_background(cfg.core(), background, activity);
    }

    /// [`EnergyMeter::record_busy`] with every power term re-derived from
    /// the platform tables (the pre-plane implementation, retained so the
    /// energy-identity tests can replay the same samples against the
    /// original math).
    pub fn record_busy_reference(
        &mut self,
        cfg: &AcmpConfig,
        duration: TimeUs,
        activity: ActivityKind,
    ) {
        if duration.is_zero() {
            return;
        }
        let own = self.platform.active_power(cfg).energy_over(duration);
        let background = self
            .platform
            .background_idle_power(cfg)
            .energy_over(duration);
        self.busy_time += duration;
        self.add(cfg.core(), own, activity);
        self.add_background(cfg.core(), background, activity);
    }

    /// Records an idle interval while the hardware is parked at `cfg`.
    pub fn record_idle(&mut self, cfg: &AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        let (idle, background_power) = self.idle_powers(cfg);
        let own = idle.energy_over(duration);
        let background = background_power.energy_over(duration);
        self.idle_time += duration;
        self.add(cfg.core(), own, ActivityKind::Idle);
        self.add_background(cfg.core(), background, ActivityKind::Idle);
    }

    /// [`EnergyMeter::record_idle`] via the platform tables (pre-plane
    /// reference, retained for the energy-identity tests).
    pub fn record_idle_reference(&mut self, cfg: &AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        let own = self.platform.idle_power(cfg).energy_over(duration);
        let background = self
            .platform
            .background_idle_power(cfg)
            .energy_over(duration);
        self.idle_time += duration;
        self.add(cfg.core(), own, ActivityKind::Idle);
        self.add_background(cfg.core(), background, ActivityKind::Idle);
    }

    /// Records a configuration transition (DVFS switch / migration). The
    /// transition is charged at the destination configuration's active power.
    pub fn record_transition(&mut self, to: &AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        let (active, _) = self.busy_powers(to);
        let e = active.energy_over(duration);
        self.busy_time += duration;
        self.add(to.core(), e, ActivityKind::Transition);
    }

    /// [`EnergyMeter::record_transition`] via the platform tables (pre-plane
    /// reference, retained for the energy-identity tests).
    pub fn record_transition_reference(&mut self, to: &AcmpConfig, duration: TimeUs) {
        if duration.is_zero() {
            return;
        }
        let e = self.platform.active_power(to).energy_over(duration);
        self.busy_time += duration;
        self.add(to.core(), e, ActivityKind::Transition);
    }

    /// Records an explicitly computed energy amount (used by tests and by
    /// components that integrate power themselves).
    pub fn record_raw(&mut self, cluster: CoreKind, energy: EnergyUj, activity: ActivityKind) {
        self.add(cluster, energy, activity);
    }

    /// Moves `energy` from the useful-work bucket to the speculative-waste
    /// bucket (used when a speculatively produced frame is squashed: the work
    /// was already metered as useful when it executed). The total is
    /// unchanged; the re-attribution is clamped to the energy actually
    /// recorded as useful work.
    pub fn reattribute_waste(&mut self, cluster: CoreKind, energy: EnergyUj) {
        let useful = self.for_activity(ActivityKind::UsefulWork);
        let moved = EnergyUj::new(energy.as_microjoules().min(useful.as_microjoules()));
        if moved.as_microjoules() == 0.0 {
            return;
        }
        let useful_slot = &mut self.by_activity[ActivityKind::UsefulWork.index()];
        *useful_slot = *useful_slot - moved;
        self.by_activity[ActivityKind::SpeculativeWaste.index()] += moved;
        // Cluster attribution is unchanged; note the cluster only for callers
        // that later want a per-cluster waste breakdown.
        let _ = cluster;
    }

    fn add(&mut self, cluster: CoreKind, energy: EnergyUj, activity: ActivityKind) {
        self.total += energy;
        self.by_activity[activity.index()] += energy;
        self.by_cluster[cluster.index()] += energy;
    }

    fn add_background(
        &mut self,
        active_cluster: CoreKind,
        energy: EnergyUj,
        activity: ActivityKind,
    ) {
        // Attribute the background cluster's idle draw to the *other* cluster
        // so per-cluster breakdowns mirror the two DAQ channels of Sec. 3.
        let other = self.background_cluster[active_cluster.index()];
        self.total += energy;
        self.by_activity[activity.index()] += energy;
        self.by_cluster[other.index()] += energy;
    }

    /// Total energy integrated so far.
    pub fn total(&self) -> EnergyUj {
        self.total
    }

    /// Energy attributed to a specific activity kind.
    pub fn for_activity(&self, activity: ActivityKind) -> EnergyUj {
        self.by_activity[activity.index()]
    }

    /// Energy attributed to a specific cluster.
    pub fn for_cluster(&self, cluster: CoreKind) -> EnergyUj {
        self.by_cluster[cluster.index()]
    }

    /// Total busy (executing or transitioning) time observed.
    pub fn busy_time(&self) -> TimeUs {
        self.busy_time
    }

    /// Total idle time observed.
    pub fn idle_time(&self) -> TimeUs {
        self.idle_time
    }

    /// Average power over the whole observation window, if any time elapsed.
    pub fn average_power(&self) -> Option<PowerMw> {
        let elapsed = self.busy_time + self.idle_time;
        if elapsed.is_zero() {
            return None;
        }
        Some(PowerMw::new(
            self.total.as_microjoules() * 1_000.0 / elapsed.as_micros() as f64,
        ))
    }

    /// Fraction of the total energy spent on squashed speculative work — the
    /// quantity reported as "1.8 % / 2.2 % misprediction energy overhead" in
    /// Sec. 6.3.
    pub fn speculative_waste_fraction(&self) -> f64 {
        if self.total.as_microjoules() == 0.0 {
            return 0.0;
        }
        self.for_activity(ActivityKind::SpeculativeWaste) / self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreKind;
    use crate::units::FreqMhz;

    fn platform() -> Platform {
        Platform::exynos_5410()
    }

    #[test]
    fn fresh_meter_is_zero() {
        let p = platform();
        let m = EnergyMeter::new(&p);
        assert_eq!(m.total().as_microjoules(), 0.0);
        assert!(m.average_power().is_none());
        assert_eq!(m.speculative_waste_fraction(), 0.0);
    }

    #[test]
    fn busy_on_big_costs_more_than_busy_on_little() {
        let p = platform();
        let mut big = EnergyMeter::new(&p);
        let mut little = EnergyMeter::new(&p);
        big.record_busy(
            &p.max_performance_config(),
            TimeUs::from_millis(100),
            ActivityKind::UsefulWork,
        );
        little.record_busy(
            &AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600)),
            TimeUs::from_millis(100),
            ActivityKind::UsefulWork,
        );
        assert!(big.total().as_millijoules() > little.total().as_millijoules());
    }

    #[test]
    fn idle_costs_less_than_busy_at_same_config() {
        let p = platform();
        let cfg = p.max_performance_config();
        let mut busy = EnergyMeter::new(&p);
        let mut idle = EnergyMeter::new(&p);
        busy.record_busy(&cfg, TimeUs::from_millis(50), ActivityKind::UsefulWork);
        idle.record_idle(&cfg, TimeUs::from_millis(50));
        assert!(busy.total().as_millijoules() > idle.total().as_millijoules());
        assert_eq!(busy.busy_time(), TimeUs::from_millis(50));
        assert_eq!(idle.idle_time(), TimeUs::from_millis(50));
    }

    #[test]
    fn activity_breakdown_adds_up_to_total() {
        let p = platform();
        let cfg = p.max_performance_config();
        let mut m = EnergyMeter::new(&p);
        m.record_busy(&cfg, TimeUs::from_millis(10), ActivityKind::UsefulWork);
        m.record_busy(&cfg, TimeUs::from_millis(2), ActivityKind::SpeculativeWaste);
        m.record_idle(&cfg, TimeUs::from_millis(5));
        m.record_transition(&cfg, TimeUs::from_micros(100));
        let sum: f64 = ActivityKind::ALL
            .iter()
            .map(|a| m.for_activity(*a).as_microjoules())
            .sum();
        assert!((sum - m.total().as_microjoules()).abs() < 1e-6);
        assert!(m.speculative_waste_fraction() > 0.0);
        assert!(m.speculative_waste_fraction() < 0.5);
    }

    #[test]
    fn cluster_breakdown_includes_background_cluster() {
        let p = platform();
        let mut m = EnergyMeter::new(&p);
        // Run only on the big cluster; the little cluster should still pick
        // up its idle floor.
        m.record_busy(
            &p.max_performance_config(),
            TimeUs::from_millis(20),
            ActivityKind::UsefulWork,
        );
        assert!(m.for_cluster(CoreKind::BigA15).as_microjoules() > 0.0);
        assert!(m.for_cluster(CoreKind::LittleA7).as_microjoules() > 0.0);
        assert!(
            m.for_cluster(CoreKind::BigA15).as_microjoules()
                > m.for_cluster(CoreKind::LittleA7).as_microjoules()
        );
    }

    #[test]
    fn zero_duration_samples_are_ignored() {
        let p = platform();
        let cfg = p.min_power_config();
        let mut m = EnergyMeter::new(&p);
        m.record_busy(&cfg, TimeUs::ZERO, ActivityKind::UsefulWork);
        m.record_idle(&cfg, TimeUs::ZERO);
        m.record_transition(&cfg, TimeUs::ZERO);
        assert_eq!(m.total().as_microjoules(), 0.0);
    }

    #[test]
    fn plane_routed_meter_is_bit_identical_to_the_reference_path() {
        use std::sync::Arc;
        for p in [Platform::exynos_5410(), Platform::tx2_parker()] {
            let plane = Arc::new(crate::dvfs::DvfsLadder::for_platform(&p));
            let mut routed = EnergyMeter::with_plane(&p, Arc::clone(&plane));
            let mut reference = EnergyMeter::new(&p);
            for (i, cfg) in p.configs().iter().enumerate() {
                let busy = TimeUs::from_micros(1_000 + 137 * i as u64);
                let idle = TimeUs::from_micros(500 + 91 * i as u64);
                let transition = TimeUs::from_micros(40 + i as u64);
                routed.record_busy(cfg, busy, ActivityKind::UsefulWork);
                routed.record_busy(cfg, busy, ActivityKind::SpeculativeWaste);
                routed.record_idle(cfg, idle);
                routed.record_transition(cfg, transition);
                reference.record_busy_reference(cfg, busy, ActivityKind::UsefulWork);
                reference.record_busy_reference(cfg, busy, ActivityKind::SpeculativeWaste);
                reference.record_idle_reference(cfg, idle);
                reference.record_transition_reference(cfg, transition);
            }
            assert_eq!(
                routed.total().as_microjoules().to_bits(),
                reference.total().as_microjoules().to_bits(),
                "total drifted on {}",
                p.name()
            );
            for kind in ActivityKind::ALL {
                assert_eq!(
                    routed.for_activity(kind).as_microjoules().to_bits(),
                    reference.for_activity(kind).as_microjoules().to_bits(),
                    "activity {kind:?} drifted on {}",
                    p.name()
                );
            }
            for cluster in p.clusters() {
                let kind = cluster.core_kind();
                assert_eq!(
                    routed.for_cluster(kind).as_microjoules().to_bits(),
                    reference.for_cluster(kind).as_microjoules().to_bits(),
                    "cluster {kind:?} drifted on {}",
                    p.name()
                );
            }
            assert_eq!(routed.busy_time(), reference.busy_time());
            assert_eq!(routed.idle_time(), reference.idle_time());
        }
    }

    #[test]
    fn off_plane_configs_fall_back_to_the_platform_tables() {
        use std::sync::Arc;
        let p = platform();
        let plane = Arc::new(crate::dvfs::DvfsLadder::for_platform(&p));
        // 1234 MHz is not an Exynos operating point; the plane-routed meter
        // must still answer, with the reference derivation's exact value.
        let off = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1234));
        let mut routed = EnergyMeter::with_plane(&p, plane);
        let mut reference = EnergyMeter::new(&p);
        routed.record_busy(&off, TimeUs::from_millis(7), ActivityKind::UsefulWork);
        reference.record_busy_reference(&off, TimeUs::from_millis(7), ActivityKind::UsefulWork);
        assert_eq!(
            routed.total().as_microjoules().to_bits(),
            reference.total().as_microjoules().to_bits()
        );
    }

    #[test]
    fn average_power_is_between_idle_and_peak() {
        let p = platform();
        let cfg = p.max_performance_config();
        let mut m = EnergyMeter::new(&p);
        m.record_busy(&cfg, TimeUs::from_millis(10), ActivityKind::UsefulWork);
        m.record_idle(&cfg, TimeUs::from_millis(10));
        let avg = m.average_power().unwrap().as_milliwatts();
        let idle = p.idle_power(&cfg).as_milliwatts();
        let peak =
            p.active_power(&cfg).as_milliwatts() + p.background_idle_power(&cfg).as_milliwatts();
        assert!(avg > idle);
        assert!(avg < peak + 1.0);
    }
}
