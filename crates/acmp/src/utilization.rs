//! CPU utilisation tracking over a sliding sampling window.
//!
//! The Android `Interactive` and `Ondemand` governors (Sec. 6.1) are
//! QoS-agnostic: they periodically sample CPU utilisation and react to it.
//! [`UtilizationTracker`] provides that signal to the governor
//! implementations in the `pes-schedulers` crate.

use std::collections::VecDeque;

use crate::units::TimeUs;

/// A busy/idle interval reported to the tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sample {
    start: TimeUs,
    end: TimeUs,
    busy: bool,
}

/// Sliding-window CPU utilisation estimator.
///
/// # Examples
///
/// ```
/// use pes_acmp::utilization::UtilizationTracker;
/// use pes_acmp::units::TimeUs;
///
/// let mut tracker = UtilizationTracker::new(TimeUs::from_millis(100));
/// tracker.record(TimeUs::ZERO, TimeUs::from_millis(60), true);
/// tracker.record(TimeUs::from_millis(60), TimeUs::from_millis(100), false);
/// let util = tracker.utilization(TimeUs::from_millis(100));
/// assert!((util - 0.6).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    window: TimeUs,
    samples: VecDeque<Sample>,
}

impl UtilizationTracker {
    /// Creates a tracker with the given sliding-window length.
    ///
    /// # Panics
    ///
    /// Panics if the window is zero; a zero-length window would make every
    /// utilisation query undefined.
    pub fn new(window: TimeUs) -> Self {
        assert!(!window.is_zero(), "utilisation window must be non-zero");
        UtilizationTracker {
            window,
            samples: VecDeque::new(),
        }
    }

    /// The sliding-window length.
    pub fn window(&self) -> TimeUs {
        self.window
    }

    /// Records that the CPU was busy (or idle) over `[start, end)`.
    /// Zero-length or inverted intervals are ignored.
    pub fn record(&mut self, start: TimeUs, end: TimeUs, busy: bool) {
        if end <= start {
            return;
        }
        self.samples.push_back(Sample { start, end, busy });
        // Garbage-collect samples that can no longer intersect any window
        // ending at or after `end`.
        let horizon = end.saturating_sub(self.window + self.window);
        while let Some(front) = self.samples.front() {
            if front.end < horizon {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Fraction of time the CPU was busy within the window `[now - window, now)`.
    /// Time not covered by any recorded sample counts as idle. Returns a value
    /// in `[0, 1]`.
    pub fn utilization(&self, now: TimeUs) -> f64 {
        let window_start = now.saturating_sub(self.window);
        let window_len = (now - window_start).as_micros() as f64;
        if window_len == 0.0 {
            return 0.0;
        }
        let busy_us: u64 = self
            .samples
            .iter()
            .filter(|s| s.busy)
            .map(|s| {
                let start = s.start.max(window_start);
                let end = s.end.min(now);
                end.saturating_sub(start).as_micros()
            })
            .sum();
        (busy_us as f64 / window_len).clamp(0.0, 1.0)
    }

    /// Clears all recorded samples.
    pub fn reset(&mut self) {
        self.samples.clear();
    }

    /// Number of samples currently retained (diagnostic).
    pub fn sample_count(&self) -> usize {
        self.samples.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeUs {
        TimeUs::from_millis(v)
    }

    #[test]
    fn empty_tracker_reports_zero_utilization() {
        let t = UtilizationTracker::new(ms(20));
        assert_eq!(t.utilization(ms(100)), 0.0);
    }

    #[test]
    fn fully_busy_window_reports_one() {
        let mut t = UtilizationTracker::new(ms(20));
        t.record(ms(0), ms(100), true);
        assert!((t.utilization(ms(100)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn partial_busy_window() {
        let mut t = UtilizationTracker::new(ms(100));
        t.record(ms(0), ms(30), true);
        t.record(ms(30), ms(100), false);
        assert!((t.utilization(ms(100)) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn samples_outside_window_are_excluded() {
        let mut t = UtilizationTracker::new(ms(50));
        t.record(ms(0), ms(40), true); // entirely before the window [50, 100)
        t.record(ms(60), ms(80), true);
        let util = t.utilization(ms(100));
        assert!((util - 0.4).abs() < 1e-9, "got {util}");
    }

    #[test]
    fn inverted_and_empty_intervals_are_ignored() {
        let mut t = UtilizationTracker::new(ms(10));
        t.record(ms(5), ms(5), true);
        t.record(ms(9), ms(3), true);
        assert_eq!(t.sample_count(), 0);
        assert_eq!(t.utilization(ms(10)), 0.0);
    }

    #[test]
    fn old_samples_are_garbage_collected() {
        let mut t = UtilizationTracker::new(ms(10));
        for i in 0..1_000u64 {
            t.record(ms(i), ms(i + 1), i % 2 == 0);
        }
        assert!(t.sample_count() < 100, "retained {}", t.sample_count());
        // Recent history still answers correctly: alternating busy/idle ≈ 0.5.
        let util = t.utilization(ms(1_000));
        assert!((util - 0.5).abs() < 0.11, "got {util}");
    }

    #[test]
    fn reset_clears_history() {
        let mut t = UtilizationTracker::new(ms(10));
        t.record(ms(0), ms(10), true);
        t.reset();
        assert_eq!(t.utilization(ms(10)), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_window_panics() {
        let _ = UtilizationTracker::new(TimeUs::ZERO);
    }
}
