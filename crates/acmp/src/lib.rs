//! # pes-acmp — ACMP (big.LITTLE) mobile hardware platform model
//!
//! This crate is the hardware substrate of the PES reproduction (Feng & Zhu,
//! ISCA 2019). It models the Asymmetric Chip-Multiprocessor evaluated in the
//! paper — the Exynos 5410's 4×Cortex-A15 + 4×Cortex-A7 — as the set of
//! `<core, frequency>` operating points that every scheduler picks from,
//! together with:
//!
//! * the DVFS latency model of Eqn. 1, `T = Tmem + Ndep / f` ([`dvfs`]),
//! * a per-configuration power look-up table, analytically derived but frozen
//!   the same way the paper freezes its measured table ([`power`]),
//! * transition overheads for DVFS switches and core migrations
//!   ([`transition`]),
//! * an integrating energy meter replacing the DAQ measurements ([`energy`]),
//! * a utilisation tracker that feeds the Android governors ([`utilization`]).
//!
//! # Examples
//!
//! ```
//! use pes_acmp::{Platform, dvfs::{CpuDemand, DvfsModel}};
//! use pes_acmp::units::{CpuCycles, TimeUs};
//!
//! let platform = Platform::exynos_5410();
//! let model = DvfsModel::new(&platform);
//!
//! // An event needing 300M A7-equivalent cycles plus 20 ms of memory time:
//! let demand = CpuDemand::new(TimeUs::from_millis(20), CpuCycles::new(300_000_000));
//!
//! // The cheapest configuration that still meets a 300 ms tap deadline:
//! let cfg = model
//!     .cheapest_config_within(&demand, TimeUs::from_millis(300))
//!     .expect("the deadline is feasible");
//! assert!(model.execution_time(&demand, &cfg) <= TimeUs::from_millis(300));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Panic-freedom: the fault-injection chaos tier replays arbitrary fault
// schedules through this crate, so a stray `unwrap`/`expect` on the replay
// path is a fleet abort. Surviving sites carry a documented `#[allow]`
// restating the construction-time invariant they rely on.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod dvfs;
pub mod energy;
pub mod error;
pub mod platform;
pub mod power;
pub mod transition;
pub mod units;
pub mod utilization;

pub use config::{AcmpConfig, ConfigId, CoreKind};
pub use dvfs::{CpuDemand, DvfsLadder, DvfsModel, LadderCache, LadderPoint, LadderRow, LadderRung};
pub use energy::{ActivityKind, EnergyMeter};
pub use error::AcmpError;
pub use platform::{ClusterSpec, Platform};
pub use power::PowerTable;
pub use transition::TransitionModel;
pub use utilization::UtilizationTracker;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{CpuCycles, TimeUs};

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Platform>();
        assert_send_sync::<AcmpConfig>();
        assert_send_sync::<CpuDemand>();
        assert_send_sync::<TransitionModel>();
        assert_send_sync::<AcmpError>();
    }

    #[test]
    fn end_to_end_energy_for_a_tap_event_is_reasonable() {
        // Sanity-check the overall calibration: a tap-sized event (~100 ms of
        // work on the little core) should cost single-digit to low tens of
        // millijoules — the same order of magnitude as the per-event energy
        // numbers quoted in Sec. 6.3 of the paper.
        let platform = Platform::exynos_5410();
        let model = DvfsModel::new(&platform);
        let demand = CpuDemand::new(TimeUs::from_millis(10), CpuCycles::new(50_000_000));
        let cfg = model
            .cheapest_config_within(&demand, TimeUs::from_millis(300))
            .unwrap();
        let energy = model.execution_energy(&demand, &cfg);
        assert!(
            energy.as_millijoules() > 1.0 && energy.as_millijoules() < 200.0,
            "per-event energy {energy} is outside the plausible range"
        );
    }
}
