//! ACMP execution configurations: the `<core, frequency>` tuples that the
//! paper's schedulers pick from (Sec. 4.1).

use std::fmt;

use crate::units::FreqMhz;

/// The microarchitectural class of a CPU core cluster.
///
/// The Exynos 5410 evaluated in the paper pairs out-of-order Cortex-A15 "big"
/// cores with in-order Cortex-A7 "little" cores; the TX2 sensitivity study
/// uses Cortex-A57 cores.
///
/// # Examples
///
/// ```
/// use pes_acmp::CoreKind;
///
/// assert!(CoreKind::BigA15.is_big());
/// assert!(!CoreKind::LittleA7.is_big());
/// assert_eq!(CoreKind::BigA15.to_string(), "A15(big)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreKind {
    /// Out-of-order Cortex-A15 (the Exynos 5410 "big" cluster).
    BigA15,
    /// In-order Cortex-A7 (the Exynos 5410 "LITTLE" cluster).
    LittleA7,
    /// Cortex-A57 (the NVIDIA TX2 "other devices" study, Sec. 6.5).
    A57,
    /// Denver 2 (the other TX2 cluster; kept for completeness).
    Denver2,
}

impl CoreKind {
    /// All core kinds known to the model.
    pub const ALL: [CoreKind; 4] = [
        CoreKind::BigA15,
        CoreKind::LittleA7,
        CoreKind::A57,
        CoreKind::Denver2,
    ];

    /// A dense index into [`CoreKind::ALL`], for array-backed per-cluster
    /// accounting (the energy meter keeps one accumulator slot per kind).
    pub const fn index(self) -> usize {
        match self {
            CoreKind::BigA15 => 0,
            CoreKind::LittleA7 => 1,
            CoreKind::A57 => 2,
            CoreKind::Denver2 => 3,
        }
    }

    /// Whether this core kind belongs to a high-performance ("big") cluster.
    pub fn is_big(self) -> bool {
        matches!(self, CoreKind::BigA15 | CoreKind::A57 | CoreKind::Denver2)
    }

    /// Relative instructions-per-cycle of this core compared to the in-order
    /// Cortex-A7 baseline. Used to translate an event's cycle requirement
    /// between core kinds.
    pub fn ipc_relative_to_a7(self) -> f64 {
        match self {
            CoreKind::BigA15 => 1.75,
            CoreKind::LittleA7 => 1.0,
            CoreKind::A57 => 2.0,
            CoreKind::Denver2 => 2.2,
        }
    }

    /// Short human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            CoreKind::BigA15 => "A15(big)",
            CoreKind::LittleA7 => "A7(little)",
            CoreKind::A57 => "A57",
            CoreKind::Denver2 => "Denver2",
        }
    }
}

impl fmt::Display for CoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A single ACMP execution configuration: a `<core, frequency>` tuple
/// (Sec. 4.1 of the paper). Events are always executed on exactly one
/// configuration (Eqn. 2).
///
/// # Examples
///
/// ```
/// use pes_acmp::{AcmpConfig, CoreKind};
/// use pes_acmp::units::FreqMhz;
///
/// let cfg = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
/// assert_eq!(cfg.core(), CoreKind::BigA15);
/// assert_eq!(cfg.frequency().as_mhz(), 1800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AcmpConfig {
    core: CoreKind,
    frequency: FreqMhz,
}

impl AcmpConfig {
    /// Creates a configuration from a core kind and a frequency.
    pub const fn new(core: CoreKind, frequency: FreqMhz) -> Self {
        AcmpConfig { core, frequency }
    }

    /// The core kind of this configuration.
    pub const fn core(&self) -> CoreKind {
        self.core
    }

    /// The clock frequency of this configuration.
    pub const fn frequency(&self) -> FreqMhz {
        self.frequency
    }

    /// Effective throughput of the configuration in "A7-equivalent MHz":
    /// frequency scaled by the core's relative IPC. Higher means the same
    /// event finishes faster.
    pub fn effective_throughput_mhz(&self) -> f64 {
        self.frequency.as_mhz() as f64 * self.core.ipc_relative_to_a7()
    }
}

impl fmt::Display for AcmpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.core, self.frequency)
    }
}

/// A dense index into a [`crate::Platform`]'s configuration table.
///
/// Schedulers and the ILP formulation work with configuration indices
/// (`j` in Eqn. 2–5) rather than with the tuples themselves.
///
/// # Examples
///
/// ```
/// use pes_acmp::ConfigId;
///
/// let id = ConfigId::new(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConfigId(usize);

impl ConfigId {
    /// Creates a configuration index.
    pub const fn new(index: usize) -> Self {
        ConfigId(index)
    }

    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cfg#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn big_little_classification() {
        assert!(CoreKind::BigA15.is_big());
        assert!(CoreKind::A57.is_big());
        assert!(CoreKind::Denver2.is_big());
        assert!(!CoreKind::LittleA7.is_big());
    }

    #[test]
    fn ipc_ordering_matches_microarchitecture() {
        // Out-of-order cores retire more instructions per cycle than the
        // in-order A7 baseline.
        assert!(CoreKind::BigA15.ipc_relative_to_a7() > CoreKind::LittleA7.ipc_relative_to_a7());
        assert!(CoreKind::A57.ipc_relative_to_a7() >= CoreKind::BigA15.ipc_relative_to_a7());
        assert_eq!(CoreKind::LittleA7.ipc_relative_to_a7(), 1.0);
    }

    #[test]
    fn config_accessors_and_display() {
        let cfg = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert_eq!(cfg.core(), CoreKind::LittleA7);
        assert_eq!(cfg.frequency(), FreqMhz::new(600));
        assert_eq!(cfg.to_string(), "<A7(little), 600 MHz>");
    }

    #[test]
    fn effective_throughput_reflects_ipc_and_frequency() {
        let big = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1000));
        let little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(1000));
        assert!(big.effective_throughput_mhz() > little.effective_throughput_mhz());

        let slow_big = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(800));
        let fast_big = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
        assert!(fast_big.effective_throughput_mhz() > slow_big.effective_throughput_mhz());
    }

    #[test]
    fn config_id_round_trip() {
        for i in 0..17 {
            assert_eq!(ConfigId::new(i).index(), i);
        }
        assert_eq!(ConfigId::new(4).to_string(), "cfg#4");
    }

    #[test]
    fn config_is_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(800)));
        set.insert(AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(800)));
        set.insert(AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(350)));
        assert_eq!(set.len(), 2);
    }
}
