//! Power modelling for ACMP configurations.
//!
//! The paper builds its power model as a measured look-up table over the
//! discrete `<core, frequency>` configurations and persists it to a local
//! file that the runtime loads at application boot (Sec. 5.3). Without the
//! ODROID board and the DAQ unit we derive the table analytically from a
//! standard `P = P_static + C · V² · f` model with per-core-kind capacitance
//! and a voltage/frequency curve calibrated to published Cortex-A15/A7 power
//! envelopes, and then treat the resulting table exactly as the paper does: a
//! frozen per-configuration look-up.

use std::collections::BTreeMap;

use crate::config::{AcmpConfig, CoreKind};
use crate::units::{FreqMhz, PowerMw};

/// Analytical parameters from which a per-configuration power value is
/// derived. One set of parameters exists per [`CoreKind`].
///
/// # Examples
///
/// ```
/// use pes_acmp::power::CorePowerParams;
/// use pes_acmp::units::FreqMhz;
///
/// let p = CorePowerParams::cortex_a15();
/// let low = p.active_power(FreqMhz::new(800));
/// let high = p.active_power(FreqMhz::new(1800));
/// assert!(high.as_milliwatts() > low.as_milliwatts());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorePowerParams {
    /// Effective switching capacitance in mW / (MHz · V²).
    pub capacitance: f64,
    /// Static (leakage) power of the core while the cluster is powered, mW.
    pub static_mw: f64,
    /// Supply voltage at the lowest operating frequency, volts.
    pub v_min: f64,
    /// Supply voltage at the highest operating frequency, volts.
    pub v_max: f64,
    /// Lowest operating frequency, MHz (anchor for the voltage curve).
    pub f_min: FreqMhz,
    /// Highest operating frequency, MHz (anchor for the voltage curve).
    pub f_max: FreqMhz,
}

impl CorePowerParams {
    /// Parameters for the out-of-order Cortex-A15. Calibrated so that a
    /// single core draws roughly 0.4 W at 800 MHz and 1.7 W at 1.8 GHz,
    /// consistent with published Exynos 5410 characterisations.
    pub fn cortex_a15() -> Self {
        CorePowerParams {
            capacitance: 0.00055,
            static_mw: 60.0,
            v_min: 0.92,
            v_max: 1.25,
            f_min: FreqMhz::new(800),
            f_max: FreqMhz::new(1800),
        }
    }

    /// Parameters for the in-order Cortex-A7: roughly 50 mW at 350 MHz and
    /// 110 mW at 600 MHz. The resulting energy-per-work advantage over the
    /// A15 (about 2–3×) matches published big.LITTLE characterisations and is
    /// what gives the scheduler a meaningful trade-off space.
    pub fn cortex_a7() -> Self {
        CorePowerParams {
            capacitance: 0.00015,
            static_mw: 10.0,
            v_min: 0.90,
            v_max: 1.05,
            f_min: FreqMhz::new(350),
            f_max: FreqMhz::new(600),
        }
    }

    /// Parameters for the Cortex-A57 cluster of the TX2 Parker SoC used in
    /// the "other devices" study (Sec. 6.5).
    pub fn cortex_a57() -> Self {
        CorePowerParams {
            capacitance: 0.00048,
            static_mw: 55.0,
            v_min: 0.80,
            v_max: 1.10,
            f_min: FreqMhz::new(345),
            f_max: FreqMhz::new(2035),
        }
    }

    /// Parameters for the Denver 2 cluster of the TX2 Parker SoC.
    pub fn denver2() -> Self {
        CorePowerParams {
            capacitance: 0.00052,
            static_mw: 65.0,
            v_min: 0.82,
            v_max: 1.12,
            f_min: FreqMhz::new(345),
            f_max: FreqMhz::new(2035),
        }
    }

    /// Default parameters for a given core kind.
    pub fn for_core(kind: CoreKind) -> Self {
        match kind {
            CoreKind::BigA15 => Self::cortex_a15(),
            CoreKind::LittleA7 => Self::cortex_a7(),
            CoreKind::A57 => Self::cortex_a57(),
            CoreKind::Denver2 => Self::denver2(),
        }
    }

    /// Supply voltage at frequency `f`, linearly interpolated between the
    /// `(f_min, v_min)` and `(f_max, v_max)` anchors and clamped outside the
    /// range.
    pub fn voltage_at(&self, f: FreqMhz) -> f64 {
        let f_min = self.f_min.as_mhz() as f64;
        let f_max = self.f_max.as_mhz() as f64;
        if f_max <= f_min {
            return self.v_max;
        }
        let t = ((f.as_mhz() as f64 - f_min) / (f_max - f_min)).clamp(0.0, 1.0);
        self.v_min + t * (self.v_max - self.v_min)
    }

    /// Active (busy) power of one core running at frequency `f`:
    /// `P = P_static + C · V(f)² · f`.
    pub fn active_power(&self, f: FreqMhz) -> PowerMw {
        let v = self.voltage_at(f);
        PowerMw::new(self.static_mw + self.capacitance * v * v * f.as_mhz() as f64 * 1_000.0)
    }

    /// Idle power of one core clocked at frequency `f` but not executing
    /// work. The paper keeps cores on because inter-event slack is tiny
    /// (Sec. 4.1); in the WFI idle state only a fraction of the leakage plus
    /// a small clock-tree component remains.
    pub fn idle_power(&self, f: FreqMhz) -> PowerMw {
        let v = self.voltage_at(f);
        PowerMw::new(
            0.25 * self.static_mw + 0.02 * self.capacitance * v * v * f.as_mhz() as f64 * 1_000.0,
        )
    }
}

/// A frozen per-configuration power look-up table, mirroring the measured
/// table that the paper persists to local storage and loads at boot
/// (Sec. 5.3).
///
/// # Examples
///
/// ```
/// use pes_acmp::{Platform, power::PowerTable};
///
/// let platform = Platform::exynos_5410();
/// let table = PowerTable::from_platform(&platform);
/// let json = table.to_json().unwrap();
/// let restored = PowerTable::from_json(&json).unwrap();
/// assert_eq!(table, restored);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PowerTable {
    active_mw: BTreeMap<String, f64>,
    idle_mw: BTreeMap<String, f64>,
}

impl PowerTable {
    /// Builds the look-up table for every configuration of a platform.
    pub fn from_platform(platform: &crate::Platform) -> Self {
        let mut active_mw = BTreeMap::new();
        let mut idle_mw = BTreeMap::new();
        for cfg in platform.configs() {
            let key = Self::key(cfg);
            active_mw.insert(key.clone(), platform.active_power(cfg).as_milliwatts());
            idle_mw.insert(key, platform.idle_power(cfg).as_milliwatts());
        }
        PowerTable { active_mw, idle_mw }
    }

    fn key(cfg: &AcmpConfig) -> String {
        format!("{}@{}", cfg.core().label(), cfg.frequency().as_mhz())
    }

    /// Active power of a configuration, if present in the table.
    pub fn active(&self, cfg: &AcmpConfig) -> Option<PowerMw> {
        self.active_mw
            .get(&Self::key(cfg))
            .map(|&mw| PowerMw::new(mw))
    }

    /// Idle power of a configuration, if present in the table.
    pub fn idle(&self, cfg: &AcmpConfig) -> Option<PowerMw> {
        self.idle_mw
            .get(&Self::key(cfg))
            .map(|&mw| PowerMw::new(mw))
    }

    /// Number of configurations in the table.
    pub fn len(&self) -> usize {
        self.active_mw.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.active_mw.is_empty()
    }

    /// Serialises the table to JSON (the "local storage file" of Sec. 5.3).
    ///
    /// # Errors
    ///
    /// Returns an error if serialisation fails, which cannot happen for the
    /// plain-map representation used here but is surfaced for API honesty.
    pub fn to_json(&self) -> Result<String, crate::AcmpError> {
        serde_json_compat::to_string(self).map_err(|e| crate::AcmpError::PowerTable(e.to_string()))
    }

    /// Restores a table previously produced by [`PowerTable::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::AcmpError::PowerTable`] when the input is not a valid
    /// serialised table.
    pub fn from_json(json: &str) -> Result<Self, crate::AcmpError> {
        serde_json_compat::from_str(json).map_err(|e| crate::AcmpError::PowerTable(e.to_string()))
    }
}

/// Minimal JSON (de)serialisation shim so that the crate does not need a
/// `serde_json` dependency of its own: the table is flat, so the `serde`
/// derive plus a tiny hand-rolled writer/reader suffice.
mod serde_json_compat {
    use super::PowerTable;

    /// Serialises a [`PowerTable`] into a simple line-oriented text format
    /// (`kind@freq active idle` per line).
    pub fn to_string(table: &PowerTable) -> Result<String, String> {
        let mut out = String::new();
        for (key, active) in &table.active_mw {
            let idle = table.idle_mw.get(key).copied().unwrap_or(0.0);
            out.push_str(&format!("{key} {active} {idle}\n"));
        }
        Ok(out)
    }

    /// Parses the format produced by [`to_string`].
    pub fn from_str(s: &str) -> Result<PowerTable, String> {
        let mut table = PowerTable::default();
        for (line_no, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let key = parts
                .next()
                .ok_or_else(|| format!("line {}: missing key", line_no + 1))?;
            let active: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing active power", line_no + 1))?
                .parse()
                .map_err(|e| format!("line {}: {e}", line_no + 1))?;
            let idle: f64 = parts
                .next()
                .ok_or_else(|| format!("line {}: missing idle power", line_no + 1))?
                .parse()
                .map_err(|e| format!("line {}: {e}", line_no + 1))?;
            table.active_mw.insert(key.to_string(), active);
            table.idle_mw.insert(key.to_string(), idle);
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Platform;

    #[test]
    fn power_is_monotonic_in_frequency() {
        for params in [
            CorePowerParams::cortex_a15(),
            CorePowerParams::cortex_a7(),
            CorePowerParams::cortex_a57(),
        ] {
            let mut prev = 0.0;
            for mhz in (params.f_min.as_mhz()..=params.f_max.as_mhz()).step_by(50) {
                let p = params.active_power(FreqMhz::new(mhz)).as_milliwatts();
                assert!(p > prev, "power must strictly increase with frequency");
                prev = p;
            }
        }
    }

    #[test]
    fn big_core_draws_more_than_little_core() {
        let a15 = CorePowerParams::cortex_a15();
        let a7 = CorePowerParams::cortex_a7();
        // Compare at the respective maximum frequencies.
        assert!(
            a15.active_power(a15.f_max).as_milliwatts()
                > 4.0 * a7.active_power(a7.f_max).as_milliwatts(),
            "an A15 at peak should dwarf an A7 at peak"
        );
    }

    #[test]
    fn a15_calibration_is_in_published_ballpark() {
        let a15 = CorePowerParams::cortex_a15();
        let at_800 = a15.active_power(FreqMhz::new(800)).as_milliwatts();
        let at_1800 = a15.active_power(FreqMhz::new(1800)).as_milliwatts();
        assert!((300.0..650.0).contains(&at_800), "800MHz power {at_800}");
        assert!(
            (1_300.0..2_300.0).contains(&at_1800),
            "1.8GHz power {at_1800}"
        );
    }

    #[test]
    fn a7_calibration_is_in_published_ballpark() {
        let a7 = CorePowerParams::cortex_a7();
        let at_350 = a7.active_power(FreqMhz::new(350)).as_milliwatts();
        let at_600 = a7.active_power(FreqMhz::new(600)).as_milliwatts();
        assert!((40.0..130.0).contains(&at_350), "350MHz power {at_350}");
        assert!((90.0..250.0).contains(&at_600), "600MHz power {at_600}");
    }

    #[test]
    fn idle_power_is_below_active_power() {
        for kind in CoreKind::ALL {
            let params = CorePowerParams::for_core(kind);
            for mhz in [params.f_min.as_mhz(), params.f_max.as_mhz()] {
                let f = FreqMhz::new(mhz);
                assert!(
                    params.idle_power(f).as_milliwatts() < params.active_power(f).as_milliwatts()
                );
            }
        }
    }

    #[test]
    fn voltage_interpolation_clamps() {
        let a15 = CorePowerParams::cortex_a15();
        assert_eq!(a15.voltage_at(FreqMhz::new(100)), a15.v_min);
        assert_eq!(a15.voltage_at(FreqMhz::new(5000)), a15.v_max);
        let mid = a15.voltage_at(FreqMhz::new(1300));
        assert!(mid > a15.v_min && mid < a15.v_max);
    }

    #[test]
    fn power_table_round_trips_through_json() {
        let platform = Platform::exynos_5410();
        let table = PowerTable::from_platform(&platform);
        assert_eq!(table.len(), platform.configs().len());
        let json = table.to_json().expect("serialise");
        let restored = PowerTable::from_json(&json).expect("parse");
        assert_eq!(table, restored);
        for cfg in platform.configs() {
            let direct = platform.active_power(cfg).as_milliwatts();
            let via_table = restored.active(cfg).expect("present").as_milliwatts();
            assert!((direct - via_table).abs() < 1e-9);
        }
    }

    #[test]
    fn power_table_rejects_malformed_input() {
        assert!(PowerTable::from_json("A15(big)@800 not-a-number 3").is_err());
        assert!(PowerTable::from_json("A15(big)@800").is_err());
        let empty = PowerTable::from_json("").expect("empty ok");
        assert!(empty.is_empty());
    }
}
