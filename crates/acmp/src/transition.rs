//! Costs of changing the active ACMP configuration.
//!
//! Sec. 6.3 of the paper reports a CPU frequency switch overhead of about
//! 100 µs and a core (cluster) migration overhead of about 20 µs; both are
//! captured here so the simulator charges them in time *and* energy whenever
//! a scheduler re-configures the hardware between events.

use crate::config::AcmpConfig;
use crate::units::TimeUs;

/// Models the latency cost of switching between two ACMP configurations.
///
/// # Examples
///
/// ```
/// use pes_acmp::{AcmpConfig, CoreKind, transition::TransitionModel};
/// use pes_acmp::units::FreqMhz;
///
/// let model = TransitionModel::exynos_defaults();
/// let a = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(800));
/// let b = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
/// let c = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
/// assert_eq!(model.cost(&a, &a), pes_acmp::units::TimeUs::ZERO);
/// assert!(model.cost(&a, &c) > model.cost(&a, &b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionModel {
    dvfs_switch: TimeUs,
    core_migration: TimeUs,
}

impl TransitionModel {
    /// The overheads reported in Sec. 6.3: 100 µs per frequency switch and
    /// 20 µs per core migration.
    pub fn exynos_defaults() -> Self {
        TransitionModel {
            dvfs_switch: TimeUs::from_micros(100),
            core_migration: TimeUs::from_micros(20),
        }
    }

    /// A model with no transition overheads; useful for isolating the effect
    /// of the overheads in ablation experiments.
    pub fn free() -> Self {
        TransitionModel {
            dvfs_switch: TimeUs::ZERO,
            core_migration: TimeUs::ZERO,
        }
    }

    /// Creates a model with explicit overheads.
    pub fn new(dvfs_switch: TimeUs, core_migration: TimeUs) -> Self {
        TransitionModel {
            dvfs_switch,
            core_migration,
        }
    }

    /// The per-frequency-switch overhead.
    pub fn dvfs_switch(&self) -> TimeUs {
        self.dvfs_switch
    }

    /// The per-core-migration overhead.
    pub fn core_migration(&self) -> TimeUs {
        self.core_migration
    }

    /// Total cost of moving from configuration `from` to configuration `to`:
    /// zero when they are identical, the DVFS cost when only the frequency
    /// changes, and the DVFS cost plus the migration cost when the core kind
    /// changes as well.
    pub fn cost(&self, from: &AcmpConfig, to: &AcmpConfig) -> TimeUs {
        if from == to {
            return TimeUs::ZERO;
        }
        let mut cost = TimeUs::ZERO;
        if from.frequency() != to.frequency() {
            cost += self.dvfs_switch;
        }
        if from.core() != to.core() {
            cost += self.core_migration;
            // Migrating clusters also implies programming the destination
            // cluster's frequency.
            if from.frequency() == to.frequency() {
                cost += self.dvfs_switch;
            }
        }
        cost
    }
}

impl Default for TransitionModel {
    fn default() -> Self {
        TransitionModel::exynos_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreKind;
    use crate::units::FreqMhz;

    fn cfg(core: CoreKind, mhz: u32) -> AcmpConfig {
        AcmpConfig::new(core, FreqMhz::new(mhz))
    }

    #[test]
    fn same_config_is_free() {
        let m = TransitionModel::exynos_defaults();
        let c = cfg(CoreKind::BigA15, 1000);
        assert_eq!(m.cost(&c, &c), TimeUs::ZERO);
    }

    #[test]
    fn frequency_only_switch_costs_dvfs() {
        let m = TransitionModel::exynos_defaults();
        let a = cfg(CoreKind::BigA15, 1000);
        let b = cfg(CoreKind::BigA15, 1400);
        assert_eq!(m.cost(&a, &b), TimeUs::from_micros(100));
    }

    #[test]
    fn cluster_switch_costs_dvfs_plus_migration() {
        let m = TransitionModel::exynos_defaults();
        let a = cfg(CoreKind::BigA15, 1000);
        let b = cfg(CoreKind::LittleA7, 600);
        assert_eq!(m.cost(&a, &b), TimeUs::from_micros(120));
        // Same nominal frequency, different cluster: still pay for both.
        let c = cfg(CoreKind::BigA15, 800);
        let d = cfg(CoreKind::LittleA7, 800);
        assert_eq!(m.cost(&c, &d), TimeUs::from_micros(120));
    }

    #[test]
    fn free_model_charges_nothing() {
        let m = TransitionModel::free();
        let a = cfg(CoreKind::BigA15, 1000);
        let b = cfg(CoreKind::LittleA7, 350);
        assert_eq!(m.cost(&a, &b), TimeUs::ZERO);
    }

    #[test]
    fn default_is_exynos() {
        assert_eq!(
            TransitionModel::default(),
            TransitionModel::exynos_defaults()
        );
    }
}
