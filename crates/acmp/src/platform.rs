//! ACMP platform descriptions: clusters, frequency tables and the derived
//! per-configuration latency/power trade-off space (Sec. 3 and Sec. 4.1).

// Every `expect` in this module restates a construction-time invariant of
// the static device tables: `ClusterSpec::new` / `Platform::new` reject
// empty ladders and empty cluster sets, the Exynos 5410 / TX2 Parker specs
// are compile-time constants validated by tier-1 tests, and throughput /
// power are finite for the positive frequencies those tables contain.
// Converting them to `Result` would force infallible error plumbing onto
// every consumer of the static platforms.
#![allow(clippy::expect_used)]

use crate::config::{AcmpConfig, ConfigId, CoreKind};
use crate::error::AcmpError;
use crate::power::CorePowerParams;
use crate::units::{FreqMhz, PowerMw};

/// One core cluster of an ACMP SoC: a core kind, the number of cores, and the
/// discrete DVFS frequency ladder.
///
/// # Examples
///
/// ```
/// use pes_acmp::platform::ClusterSpec;
/// use pes_acmp::CoreKind;
///
/// let big = ClusterSpec::exynos_big();
/// assert_eq!(big.core_kind(), CoreKind::BigA15);
/// assert_eq!(big.frequencies().len(), 11); // 800..=1800 MHz in 100 MHz steps
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    core_kind: CoreKind,
    core_count: usize,
    frequencies: Vec<FreqMhz>,
    power: CorePowerParams,
}

impl ClusterSpec {
    /// Creates a cluster from an explicit frequency ladder.
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::InvalidCluster`] if the ladder is empty, contains
    /// duplicates, or is not strictly increasing, or if `core_count` is zero.
    pub fn new(
        core_kind: CoreKind,
        core_count: usize,
        frequencies: Vec<FreqMhz>,
        power: CorePowerParams,
    ) -> Result<Self, AcmpError> {
        if core_count == 0 {
            return Err(AcmpError::InvalidCluster(
                "core_count must be non-zero".into(),
            ));
        }
        if frequencies.is_empty() {
            return Err(AcmpError::InvalidCluster(
                "frequency ladder is empty".into(),
            ));
        }
        if frequencies.windows(2).any(|w| w[0] >= w[1]) {
            return Err(AcmpError::InvalidCluster(
                "frequency ladder must be strictly increasing".into(),
            ));
        }
        Ok(ClusterSpec {
            core_kind,
            core_count,
            frequencies,
            power,
        })
    }

    /// Builds a ladder from `min..=max` MHz with a fixed step.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClusterSpec::new`]; additionally `step` must be
    /// non-zero and `min <= max`.
    pub fn with_range(
        core_kind: CoreKind,
        core_count: usize,
        min_mhz: u32,
        max_mhz: u32,
        step_mhz: u32,
        power: CorePowerParams,
    ) -> Result<Self, AcmpError> {
        if step_mhz == 0 || min_mhz > max_mhz {
            return Err(AcmpError::InvalidCluster(format!(
                "invalid frequency range {min_mhz}..={max_mhz} step {step_mhz}"
            )));
        }
        let frequencies = (min_mhz..=max_mhz)
            .step_by(step_mhz as usize)
            .map(FreqMhz::new)
            .collect();
        ClusterSpec::new(core_kind, core_count, frequencies, power)
    }

    /// The Exynos 5410 big cluster: four Cortex-A15 cores, 800–1800 MHz in
    /// 100 MHz steps (Sec. 3).
    pub fn exynos_big() -> Self {
        ClusterSpec::with_range(
            CoreKind::BigA15,
            4,
            800,
            1800,
            100,
            CorePowerParams::cortex_a15(),
        )
        .expect("static spec is valid")
    }

    /// The Exynos 5410 LITTLE cluster: four Cortex-A7 cores, 350–600 MHz in
    /// 50 MHz steps (Sec. 3).
    pub fn exynos_little() -> Self {
        ClusterSpec::with_range(
            CoreKind::LittleA7,
            4,
            350,
            600,
            50,
            CorePowerParams::cortex_a7(),
        )
        .expect("static spec is valid")
    }

    /// The TX2 Parker Cortex-A57 cluster used by the Sec. 6.5 "other
    /// devices" study (345–2035 MHz, ~13 operating points).
    pub fn tx2_a57() -> Self {
        let freqs = [
            345, 499, 653, 806, 960, 1113, 1267, 1420, 1574, 1728, 1881, 2035,
        ]
        .into_iter()
        .map(FreqMhz::new)
        .collect();
        ClusterSpec::new(CoreKind::A57, 4, freqs, CorePowerParams::cortex_a57())
            .expect("static spec is valid")
    }

    /// The TX2 Parker Denver 2 cluster.
    pub fn tx2_denver() -> Self {
        let freqs = [345, 499, 806, 1113, 1420, 1728, 2035]
            .into_iter()
            .map(FreqMhz::new)
            .collect();
        ClusterSpec::new(CoreKind::Denver2, 2, freqs, CorePowerParams::denver2())
            .expect("static spec is valid")
    }

    /// The core kind of every core in this cluster.
    pub fn core_kind(&self) -> CoreKind {
        self.core_kind
    }

    /// Number of cores in the cluster.
    pub fn core_count(&self) -> usize {
        self.core_count
    }

    /// The DVFS frequency ladder, strictly increasing.
    pub fn frequencies(&self) -> &[FreqMhz] {
        &self.frequencies
    }

    /// The lowest operating frequency.
    pub fn min_frequency(&self) -> FreqMhz {
        self.frequencies[0]
    }

    /// The highest operating frequency.
    pub fn max_frequency(&self) -> FreqMhz {
        *self.frequencies.last().expect("ladder is non-empty")
    }

    /// The power parameters of this cluster's cores.
    pub fn power_params(&self) -> &CorePowerParams {
        &self.power
    }

    /// The ladder frequency closest to (and not below, when possible) the
    /// requested frequency. Used by the utilisation-driven governors.
    pub fn snap_up(&self, target: FreqMhz) -> FreqMhz {
        self.frequencies
            .iter()
            .copied()
            .find(|f| *f >= target)
            .unwrap_or_else(|| self.max_frequency())
    }

    /// The next frequency above `current` on the ladder, saturating at the top.
    pub fn step_up(&self, current: FreqMhz) -> FreqMhz {
        self.frequencies
            .iter()
            .copied()
            .find(|f| *f > current)
            .unwrap_or_else(|| self.max_frequency())
    }

    /// The next frequency below `current` on the ladder, saturating at the bottom.
    pub fn step_down(&self, current: FreqMhz) -> FreqMhz {
        self.frequencies
            .iter()
            .rev()
            .copied()
            .find(|f| *f < current)
            .unwrap_or_else(|| self.min_frequency())
    }
}

/// A full ACMP platform: one or more clusters plus the flattened table of
/// `<core, frequency>` configurations that schedulers pick from.
///
/// # Examples
///
/// ```
/// use pes_acmp::Platform;
///
/// let exynos = Platform::exynos_5410();
/// // 11 big-core operating points + 6 little-core operating points.
/// assert_eq!(exynos.configs().len(), 17);
/// let fastest = exynos.max_performance_config();
/// assert_eq!(fastest.frequency().as_mhz(), 1800);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    name: String,
    clusters: Vec<ClusterSpec>,
    configs: Vec<AcmpConfig>,
    soc_floor_mw: f64,
}

impl Platform {
    /// Creates a platform from a set of clusters.
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::InvalidCluster`] when no clusters are provided.
    pub fn new(name: impl Into<String>, clusters: Vec<ClusterSpec>) -> Result<Self, AcmpError> {
        if clusters.is_empty() {
            return Err(AcmpError::InvalidCluster(
                "platform needs at least one cluster".into(),
            ));
        }
        let mut configs = Vec::new();
        for cluster in &clusters {
            for &f in cluster.frequencies() {
                configs.push(AcmpConfig::new(cluster.core_kind(), f));
            }
        }
        // Order configurations by effective throughput so that "higher index
        // means higher performance" holds platform-wide; ties broken by power.
        configs.sort_by(|a, b| {
            a.effective_throughput_mhz()
                .partial_cmp(&b.effective_throughput_mhz())
                .expect("throughput is finite")
                .then(a.frequency().cmp(&b.frequency()))
        });
        Ok(Platform {
            name: name.into(),
            clusters,
            configs,
            soc_floor_mw: 140.0,
        })
    }

    /// Overrides the always-on SoC floor power (memory controller,
    /// interconnect, rail losses) that is drawn whether the CPUs are busy or
    /// idle. The 2013-era Exynos 5410 keeps both clusters powered (Sec. 4.1),
    /// so this floor is a significant fraction of the session energy — which
    /// is what keeps the end-to-end savings of QoS-aware schedulers in the
    /// 10–30 % range the paper reports rather than the per-event busy-energy
    /// ratio.
    pub fn with_soc_floor(mut self, milliwatts: f64) -> Self {
        self.soc_floor_mw = milliwatts.max(0.0);
        self
    }

    /// The always-on SoC floor power.
    pub fn soc_floor_power(&self) -> PowerMw {
        PowerMw::new(self.soc_floor_mw)
    }

    /// The ODROID XU+E / Exynos 5410 platform evaluated in the paper: a
    /// 4×A15 big cluster and a 4×A7 LITTLE cluster.
    pub fn exynos_5410() -> Self {
        Platform::new(
            "Exynos 5410 (ODROID XU+E)",
            vec![ClusterSpec::exynos_big(), ClusterSpec::exynos_little()],
        )
        .expect("static platform is valid")
    }

    /// The NVIDIA TX2 Parker platform used for the Sec. 6.5 "other devices"
    /// sensitivity study (Cortex-A57 DVFS; Denver cluster included).
    pub fn tx2_parker() -> Self {
        Platform::new(
            "NVIDIA TX2 (Parker)",
            vec![ClusterSpec::tx2_a57(), ClusterSpec::tx2_denver()],
        )
        .expect("static platform is valid")
    }

    /// Human-readable platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform's clusters.
    pub fn clusters(&self) -> &[ClusterSpec] {
        &self.clusters
    }

    /// The cluster hosting a given core kind, if present.
    pub fn cluster_for(&self, kind: CoreKind) -> Option<&ClusterSpec> {
        self.clusters.iter().find(|c| c.core_kind() == kind)
    }

    /// All `<core, frequency>` configurations, ordered by increasing
    /// effective throughput.
    pub fn configs(&self) -> &[AcmpConfig] {
        &self.configs
    }

    /// Looks up a configuration by dense index.
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::UnknownConfig`] if the index is out of range.
    pub fn config(&self, id: ConfigId) -> Result<&AcmpConfig, AcmpError> {
        self.configs
            .get(id.index())
            .ok_or(AcmpError::UnknownConfig(id.index()))
    }

    /// The dense index of a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`AcmpError::ConfigNotOnPlatform`] if the `<core, frequency>`
    /// tuple is not an operating point of this platform.
    pub fn config_id(&self, cfg: &AcmpConfig) -> Result<ConfigId, AcmpError> {
        self.configs
            .iter()
            .position(|c| c == cfg)
            .map(ConfigId::new)
            .ok_or(AcmpError::ConfigNotOnPlatform(*cfg))
    }

    /// The highest-performance configuration (big core at maximum frequency).
    pub fn max_performance_config(&self) -> AcmpConfig {
        *self.configs.last().expect("platform has configs")
    }

    /// The lowest-power configuration (little core at minimum frequency).
    pub fn min_power_config(&self) -> AcmpConfig {
        *self
            .configs
            .iter()
            .min_by(|a, b| {
                self.active_power(a)
                    .as_milliwatts()
                    .partial_cmp(&self.active_power(b).as_milliwatts())
                    .expect("power is finite")
            })
            .expect("platform has configs")
    }

    /// Active power of one core running at the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration's core kind is not hosted by this
    /// platform; use [`Platform::config_id`] to validate externally produced
    /// configurations first.
    pub fn active_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.cluster_for(cfg.core())
            .expect("configuration core kind exists on platform")
            .power_params()
            .active_power(cfg.frequency())
    }

    /// Idle power of one core parked at the given configuration.
    ///
    /// # Panics
    ///
    /// Panics under the same condition as [`Platform::active_power`].
    pub fn idle_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.cluster_for(cfg.core())
            .expect("configuration core kind exists on platform")
            .power_params()
            .idle_power(cfg.frequency())
    }

    /// Baseline idle power of the rest of the SoC while the runtime sits at
    /// configuration `cfg`: the other cluster idles at its lowest operating
    /// point (cores are never switched off, Sec. 4.1).
    pub fn background_idle_power(&self, cfg: &AcmpConfig) -> PowerMw {
        self.clusters
            .iter()
            .filter(|c| c.core_kind() != cfg.core())
            .map(|c| c.power_params().idle_power(c.min_frequency()))
            .fold(self.soc_floor_power(), |acc, p| acc + p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exynos_has_17_operating_points() {
        let p = Platform::exynos_5410();
        assert_eq!(p.configs().len(), 17);
        assert_eq!(
            p.cluster_for(CoreKind::BigA15).unwrap().frequencies().len(),
            11
        );
        assert_eq!(
            p.cluster_for(CoreKind::LittleA7)
                .unwrap()
                .frequencies()
                .len(),
            6
        );
    }

    #[test]
    fn exynos_frequency_bounds_match_the_paper() {
        let p = Platform::exynos_5410();
        let big = p.cluster_for(CoreKind::BigA15).unwrap();
        let little = p.cluster_for(CoreKind::LittleA7).unwrap();
        assert_eq!(big.min_frequency().as_mhz(), 800);
        assert_eq!(big.max_frequency().as_mhz(), 1800);
        assert_eq!(little.min_frequency().as_mhz(), 350);
        assert_eq!(little.max_frequency().as_mhz(), 600);
    }

    #[test]
    fn configs_are_sorted_by_effective_throughput() {
        let p = Platform::exynos_5410();
        let throughputs: Vec<f64> = p
            .configs()
            .iter()
            .map(|c| c.effective_throughput_mhz())
            .collect();
        assert!(throughputs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(p.max_performance_config().core(), CoreKind::BigA15);
        assert_eq!(p.max_performance_config().frequency().as_mhz(), 1800);
    }

    #[test]
    fn min_power_config_is_little_at_lowest_frequency() {
        let p = Platform::exynos_5410();
        let cfg = p.min_power_config();
        assert_eq!(cfg.core(), CoreKind::LittleA7);
        assert_eq!(cfg.frequency().as_mhz(), 350);
    }

    #[test]
    fn config_id_round_trips() {
        let p = Platform::exynos_5410();
        for (i, cfg) in p.configs().iter().enumerate() {
            let id = p.config_id(cfg).unwrap();
            assert_eq!(id.index(), i);
            assert_eq!(p.config(id).unwrap(), cfg);
        }
        assert!(p.config(ConfigId::new(99)).is_err());
        let foreign = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(123));
        assert!(p.config_id(&foreign).is_err());
    }

    #[test]
    fn cluster_validation_rejects_bad_ladders() {
        let pw = CorePowerParams::cortex_a7();
        assert!(ClusterSpec::new(CoreKind::LittleA7, 0, vec![FreqMhz::new(350)], pw).is_err());
        assert!(ClusterSpec::new(CoreKind::LittleA7, 4, vec![], pw).is_err());
        assert!(ClusterSpec::new(
            CoreKind::LittleA7,
            4,
            vec![FreqMhz::new(600), FreqMhz::new(350)],
            pw
        )
        .is_err());
        assert!(ClusterSpec::with_range(CoreKind::LittleA7, 4, 600, 350, 50, pw).is_err());
        assert!(ClusterSpec::with_range(CoreKind::LittleA7, 4, 350, 600, 0, pw).is_err());
        assert!(Platform::new("empty", vec![]).is_err());
    }

    #[test]
    fn ladder_navigation() {
        let little = ClusterSpec::exynos_little();
        assert_eq!(little.snap_up(FreqMhz::new(420)).as_mhz(), 450);
        assert_eq!(little.snap_up(FreqMhz::new(1000)).as_mhz(), 600);
        assert_eq!(little.step_up(FreqMhz::new(350)).as_mhz(), 400);
        assert_eq!(little.step_up(FreqMhz::new(600)).as_mhz(), 600);
        assert_eq!(little.step_down(FreqMhz::new(600)).as_mhz(), 550);
        assert_eq!(little.step_down(FreqMhz::new(350)).as_mhz(), 350);
    }

    #[test]
    fn tx2_platform_exposes_a57_dvfs() {
        let tx2 = Platform::tx2_parker();
        let a57 = tx2.cluster_for(CoreKind::A57).unwrap();
        assert!(a57.frequencies().len() >= 10);
        assert_eq!(a57.max_frequency().as_mhz(), 2035);
        assert!(tx2.configs().len() > 15);
    }

    #[test]
    fn background_idle_power_counts_the_other_cluster() {
        let p = Platform::exynos_5410();
        let on_big = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(1800));
        let on_little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        // While running on the big cluster, the background is the idle A7
        // cluster (cheap); while on the little cluster it is the idle A15
        // cluster (more leakage).
        assert!(
            p.background_idle_power(&on_little).as_milliwatts()
                > p.background_idle_power(&on_big).as_milliwatts()
        );
    }

    #[test]
    fn big_configs_dominate_little_configs_in_throughput() {
        let slowest_big = AcmpConfig::new(CoreKind::BigA15, FreqMhz::new(800));
        let fastest_little = AcmpConfig::new(CoreKind::LittleA7, FreqMhz::new(600));
        assert!(slowest_big.effective_throughput_mhz() > fastest_little.effective_throughput_mhz());
    }
}
